pub use vdb;
