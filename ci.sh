#!/usr/bin/env sh
# Offline CI gate for vectordb-rs.
#
# The workspace has zero external dependencies, so everything here must
# succeed with no network. CARGO_NET_OFFLINE makes any accidental
# dependency regression fail loudly instead of silently fetching.
set -eu
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "== lint: rustfmt =="
cargo fmt --all --check

echo "== lint: clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q --release

echo "== workspace: full test suite =="
cargo test -q --release --workspace

echo "== integration suite with 4 build threads =="
# BuildOptions::default() honors VDB_BUILD_THREADS; this pass proves the
# root integration tests (incl. tests/parallel_build.rs) hold when
# default-threaded builds actually run multi-threaded.
VDB_BUILD_THREADS=4 cargo test -q --release

echo "== crash-fault injection: durability sweep =="
# The failpoint harness crashes every durable step of
# insert/delete/merge/checkpoint and requires recovery to land on
# exactly the pre- or post-op state (DESIGN.md §9). Debug profile on
# purpose: Collection::len's debug_assert cross-checks the incremental
# shadowed-row counter against a full rescan on every call.
cargo test -q --test crash_recovery
cargo test -q -p vdb-storage --test wal_torn_tail

echo "== online maintenance: mutability + background-merge stress =="
# Mixed insert/delete/search stress: per-family tombstone correctness
# and post-repair recall, plus 20+ background rebuilds published
# atomically under continuously-asserting concurrent searchers with
# bounded-buffer (BUSY) backpressure on the writer (DESIGN.md §11).
# Release profile: the concurrency test needs real rebuild throughput.
cargo test -q --release --test online_maintenance

echo "== serving layer: loopback server integration, both connection cores =="
# Real sockets on 127.0.0.1: N concurrent clients get correct results,
# overload past max_queue is answered BUSY (not queued), the bulk lane
# sheds before interactive search, per-collection token buckets throttle,
# a killed shard socket degrades to a partial result within the deadline,
# and graceful shutdown drains every in-flight request (DESIGN.md §10,
# §13). The protocol suite additionally rejects torn/oversized/
# CRC-flipped frames at every byte offset against a live server and
# reaps a 200-connection slow-loris trickle without blocking other
# clients. Both passes run under the readiness-polling event loop
# (VDB_SERVER_EVENTLOOP=1, the default) and the legacy
# thread-per-connection readers (=0): results must be bit-identical.
VDB_SERVER_EVENTLOOP=1 cargo test -q --release --test serving
VDB_SERVER_EVENTLOOP=0 cargo test -q --release --test serving
VDB_SERVER_EVENTLOOP=1 cargo test -q --release -p vdb-server --test protocol_robustness
VDB_SERVER_EVENTLOOP=0 cargo test -q --release -p vdb-server --test protocol_robustness

echo "== replication: torn-stream sweep, bootstrap convergence, failover drill =="
# The replicated write path (DESIGN.md §14): the shipping codec survives
# truncation at every byte and reports every flipped byte; a replica
# bootstrapping WHILE the primary takes writes converges bit-identically
# (snapshot + WAL tail + catch-up); and the kill-primary drill promotes
# the replica via a manifest bump and proves zero lost acknowledged
# writes. The server-level suite runs under both connection cores; the
# retry-restriction regression test (MaybeApplied instead of silent
# double-apply) lives in the vdb-server lib tests covered above.
cargo test -q --release -p vdb-storage --test repl_stream_torn
VDB_SERVER_EVENTLOOP=1 cargo test -q --release --test replication
VDB_SERVER_EVENTLOOP=0 cargo test -q --release --test replication

echo "== kernel equivalence with SIMD force-disabled =="
# kernel_sets() ignores the escape hatch, so the SIMD-vs-scalar checks
# still run; this pass proves the *dispatched* entry points behave when
# pinned to the portable fallback.
VDB_FORCE_SCALAR=1 cargo test -q --release -p vdb-core --test kernel_equivalence

echo "== disk pipeline: equivalence under every lever combination =="
# The disk-serving pipeline (DESIGN.md §12) must be invisible to search
# results: the equivalence suite already flips prefetch and layout per
# index inside each test, and these passes additionally pin the whole
# suite with the process-wide defaults forced off and on, and with the
# batched rescoring kernels pinned to the scalar fallback.
cargo test -q --release --test disk_pipeline
VDB_DISK_PREFETCH=0 cargo test -q --release --test disk_pipeline
VDB_DISK_PREFETCH=1 cargo test -q --release --test disk_pipeline
VDB_FORCE_SCALAR=1 cargo test -q --release --test disk_pipeline

echo "== hybrid text + vector: fusion correctness, scalar kernels, merge modes =="
# The hybrid subsystem (DESIGN.md §15) must rank identically no matter
# which kernels or merge machinery sit underneath: the acceptance suite
# (BM25 vs naive reference, block-max skipping equivalence, predicate-
# respecting deterministic fusion, background-merge freshness,
# distributed fusion parity) runs plain and with SIMD pinned to the
# scalar fallback; the torn-snapshot sweep of the inverted index rides
# in crash_recovery above. VDB_BUILD_THREADS=4 re-proves fusion
# determinism when index builds are parallel.
cargo test -q --release --test hybrid_text
VDB_FORCE_SCALAR=1 cargo test -q --release --test hybrid_text
VDB_BUILD_THREADS=4 cargo test -q --release --test hybrid_text

echo "ci.sh: all green"
