#!/usr/bin/env sh
# Offline CI gate for vectordb-rs.
#
# The workspace has zero external dependencies, so everything here must
# succeed with no network. CARGO_NET_OFFLINE makes any accidental
# dependency regression fail loudly instead of silently fetching.
set -eu
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q --release

echo "== workspace: full test suite =="
cargo test -q --release --workspace

echo "ci.sh: all green"
