//! End-to-end serving acceptance: concurrent clients over loopback TCP,
//! admission control under overload, coalesced batching, graceful
//! drain-then-stop shutdown, and socket-backed distributed shards
//! degrading to partial results when a shard dies.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vdb::{CollectionSchema, IndexSpec, SystemProfile, Vdbms, VqlOutput};
use vdb_core::{dataset, FlatIndex, Metric, Rng, SearchParams, VectorIndex, Vectors};
use vdb_distributed::{
    serve_index, DistributedConfig, DistributedIndex, RemoteShard, RemoteShardConfig, ShardHandle,
};
use vdb_server::{serve, Client, ErrorCode, RateLimit, Request, Response, ServerConfig};

fn fixture_db(n: usize, dim: usize) -> Vdbms {
    let mut db = Vdbms::new(SystemProfile::MostlyVector);
    db.create_collection(
        CollectionSchema::new("docs", dim, Metric::Euclidean),
        IndexSpec::Flat,
    )
    .unwrap();
    for i in 0..n as u64 {
        let mut v = vec![0.0; dim];
        v[0] = i as f32;
        db.collection_mut("docs")
            .unwrap()
            .insert(i, &v, &[])
            .unwrap();
    }
    db
}

#[test]
fn concurrent_clients_get_correct_results() {
    let handle = serve(fixture_db(256, 4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Arc::new(Client::connect(handle.addr()).unwrap());
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let client = client.clone();
            s.spawn(move || {
                for i in 0..25u64 {
                    let target = (t * 31 + i * 7) % 256;
                    let hits = client
                        .search(
                            "docs",
                            &[target as f32 + 0.3, 0.0, 0.0, 0.0],
                            3,
                            &SearchParams::default(),
                        )
                        .unwrap();
                    assert_eq!(hits[0].key, target, "client {t} query {i}");
                    assert_eq!(hits[1].key, target + 1);
                }
            });
        }
    });
    let stats = handle.stats();
    assert!(stats.served >= 200, "all requests must be counted");
    handle.shutdown();
}

/// Overload the server while its single worker is parked in the batch
/// window: `max_queue` requests are admitted, the overflow is answered
/// BUSY immediately (no hang), and every admitted search is coalesced
/// into one batched call.
#[test]
fn overload_sheds_busy_and_admitted_requests_coalesce() {
    let cfg = ServerConfig {
        workers: 1,
        max_queue: 4,
        batching: true,
        batch_max: 64,
        batch_window: Duration::from_millis(800),
        ..ServerConfig::default()
    };
    let handle = serve(fixture_db(64, 4), "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    let search = |target: u64| Request::Search {
        collection: "docs".into(),
        k: 1,
        params: SearchParams::default(),
        query: vec![target as f32 + 0.1, 0.0, 0.0, 0.0],
    };
    let call_raw = move |req: Request| -> Response {
        use std::net::TcpStream;
        use vdb_distributed::wire;
        let mut conn = TcpStream::connect_timeout(&addr, Duration::from_secs(1)).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        wire::write_frame(&mut conn, &req.encode()).unwrap();
        let payload = wire::read_frame(&mut conn, wire::MAX_FRAME)
            .unwrap()
            .unwrap();
        Response::decode(&payload).unwrap()
    };
    // Head request: the worker pops it, finds nothing to coalesce, and
    // parks in the batch window — the queue is now drained by nobody.
    let head = std::thread::spawn(move || call_raw(search(0)));
    std::thread::sleep(Duration::from_millis(150));
    // Flood: 4 fill the queue, the rest must be shed with BUSY *now*,
    // not after the worker frees up.
    let flood_start = Instant::now();
    let mut floods = Vec::new();
    for i in 1..=9u64 {
        floods.push(std::thread::spawn(move || call_raw(search(i))));
    }
    let mut hits = 0;
    let mut busy = 0;
    for f in floods {
        match f.join().unwrap() {
            Response::Hits(h) => {
                assert_eq!(h.len(), 1);
                hits += 1;
            }
            Response::Busy => busy += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(matches!(head.join().unwrap(), Response::Hits(_)));
    assert_eq!(busy, 5, "overflow past max_queue must be shed");
    assert_eq!(hits, 4, "admitted requests must still be answered");
    assert!(
        flood_start.elapsed() < Duration::from_secs(5),
        "BUSY must be immediate, not queued"
    );
    let stats = handle.stats();
    assert_eq!(stats.busy, 5);
    assert!(stats.batches >= 1, "queued searches must coalesce");
    assert!(
        stats.coalesced >= 4,
        "the 4 queued searches must ride the head's batch, got {}",
        stats.coalesced
    );
    handle.shutdown();
}

/// Graceful shutdown: requests admitted before the stop must all be
/// answered (drained by the executors), never dropped.
#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let cfg = ServerConfig {
        workers: 1,
        max_queue: 16,
        batching: true,
        batch_window: Duration::from_millis(600),
        ..ServerConfig::default()
    };
    let handle = serve(fixture_db(32, 4), "127.0.0.1:0", cfg).unwrap();
    let client = Arc::new(Client::connect(handle.addr()).unwrap());
    let mut inflight = Vec::new();
    // Head search parks the worker in its batch window; the rest queue
    // up behind it.
    for i in 0..5u64 {
        let client = client.clone();
        inflight.push(std::thread::spawn(move || {
            client.search(
                "docs",
                &[i as f32 + 0.2, 0.0, 0.0, 0.0],
                1,
                &SearchParams::default(),
            )
        }));
        if i == 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    std::thread::sleep(Duration::from_millis(150));
    // All 5 are in flight (1 executing, 4 queued). Shut down now.
    let db = handle.shutdown();
    for (i, t) in inflight.into_iter().enumerate() {
        let hits = t
            .join()
            .unwrap()
            .unwrap_or_else(|e| panic!("in-flight request {i} dropped during shutdown: {e}"));
        assert_eq!(hits[0].key, i as u64);
    }
    assert_eq!(db.collection("docs").unwrap().len(), 32);
}

#[test]
fn vql_roundtrips_over_the_wire() {
    let handle = serve(fixture_db(0, 3), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for i in 0..6 {
        let stmt = format!("INSERT INTO docs KEY {i} VALUES [{i}, 0, 0]");
        assert!(matches!(client.vql(&stmt).unwrap(), VqlOutput::Done));
    }
    match client.vql("COUNT docs").unwrap() {
        VqlOutput::Count(n) => assert_eq!(n, 6),
        other => panic!("expected count, got {other:?}"),
    }
    match client.vql("SEARCH docs K 2 NEAR [3.1, 0, 0]").unwrap() {
        VqlOutput::Hits(hits) => {
            assert_eq!(hits[0].key, 3);
            assert_eq!(hits[1].key, 4);
        }
        other => panic!("expected hits, got {other:?}"),
    }
    handle.shutdown();
}

/// One blocking round trip on a fresh socket, so admission-control
/// responses (BUSY) surface as values instead of being retried away by
/// the pooled [`Client`].
fn call_raw(addr: std::net::SocketAddr, req: Request) -> Response {
    use std::net::TcpStream;
    use vdb_distributed::wire;
    let mut conn = TcpStream::connect_timeout(&addr, Duration::from_secs(1)).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::write_frame(&mut conn, &req.encode()).unwrap();
    let payload = wire::read_frame(&mut conn, wire::MAX_FRAME)
        .unwrap()
        .unwrap();
    Response::decode(&payload).unwrap()
}

/// The readiness-polling event loop and the legacy thread-per-connection
/// readers must be pure transport swaps: the same fixture and the same
/// queries produce bit-identical hits under both cores.
#[test]
fn event_loop_and_legacy_serve_bit_identical_results() {
    let mut per_core: Vec<Vec<Vec<(u64, u32)>>> = Vec::new();
    for mode in [Some(true), Some(false)] {
        let cfg = ServerConfig {
            event_loop: mode,
            ..ServerConfig::default()
        };
        let handle = serve(fixture_db(128, 4), "127.0.0.1:0", cfg).unwrap();
        assert_eq!(
            handle.stats().event_loop,
            cfg!(unix) && mode == Some(true),
            "snapshot must report which connection core is running"
        );
        let client = Client::connect(handle.addr()).unwrap();
        let mut results = Vec::new();
        for q in 0..32u64 {
            let hits = client
                .search(
                    "docs",
                    &[(q * 3 % 128) as f32 + 0.4, 0.25, 0.0, 0.0],
                    5,
                    &SearchParams::default(),
                )
                .unwrap();
            results.push(
                hits.iter()
                    .map(|h| (h.key, h.dist.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        per_core.push(results);
        handle.shutdown();
    }
    assert_eq!(
        per_core[0], per_core[1],
        "event loop and legacy readers must return bit-identical hits"
    );
}

/// The bulk lane has its own, smaller bound: with the single worker
/// parked, overflowing inserts are shed BUSY while interactive searches
/// are still admitted into the remaining `max_queue` headroom.
#[test]
fn bulk_lane_sheds_before_interactive_searches() {
    let cfg = ServerConfig {
        workers: 1,
        max_queue: 8,
        bulk_queue: 2,
        batching: true,
        batch_max: 64,
        batch_window: Duration::from_millis(800),
        ..ServerConfig::default()
    };
    let handle = serve(fixture_db(64, 4), "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    // Head search: the worker pops it and parks in the batch window,
    // so nothing drains the lanes while we flood them.
    let head = std::thread::spawn(move || {
        call_raw(
            addr,
            Request::Search {
                collection: "docs".into(),
                k: 1,
                params: SearchParams::default(),
                query: vec![0.1, 0.0, 0.0, 0.0],
            },
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    let mut inserts = Vec::new();
    for i in 0..5u64 {
        inserts.push(std::thread::spawn(move || {
            call_raw(
                addr,
                Request::Insert {
                    collection: "docs".into(),
                    key: 1000 + i,
                    vector: vec![500.0 + i as f32, 0.0, 0.0, 0.0],
                    attrs: Vec::new(),
                },
            )
        }));
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut searches = Vec::new();
    for i in 1..=3u64 {
        searches.push(std::thread::spawn(move || {
            call_raw(
                addr,
                Request::Search {
                    collection: "docs".into(),
                    k: 1,
                    params: SearchParams::default(),
                    query: vec![i as f32 + 0.1, 0.0, 0.0, 0.0],
                },
            )
        }));
    }
    let (mut done, mut busy) = (0, 0);
    for t in inserts {
        match t.join().unwrap() {
            Response::Done => done += 1,
            Response::Busy => busy += 1,
            other => panic!("unexpected insert response {other:?}"),
        }
    }
    assert_eq!(busy, 3, "inserts past bulk_queue must be shed");
    assert_eq!(done, 2, "admitted inserts must still execute");
    for t in searches {
        assert!(
            matches!(t.join().unwrap(), Response::Hits(_)),
            "interactive searches must be admitted while bulk sheds"
        );
    }
    assert!(matches!(head.join().unwrap(), Response::Hits(_)));
    let stats = handle.stats();
    assert_eq!(stats.busy, 3);
    assert_eq!(stats.rate_limited, 0);
    handle.shutdown();
}

/// Per-collection token buckets: a limited collection sheds with the
/// dedicated RATE_LIMITED error code once its burst is spent (counted in
/// `rate_limited` AND `busy` — the plain Busy opcode stays reserved for
/// queue overload), while an unlimited collection on the same server is
/// untouched.
#[test]
fn per_collection_rate_limit_sheds_and_counts() {
    let mut db = fixture_db(32, 4);
    db.create_collection(
        CollectionSchema::new("free", 4, Metric::Euclidean),
        IndexSpec::Flat,
    )
    .unwrap();
    for i in 0..32u64 {
        db.collection_mut("free")
            .unwrap()
            .insert(i, &[i as f32, 0.0, 0.0, 0.0], &[])
            .unwrap();
    }
    let cfg = ServerConfig {
        rate_limits: vec![(
            "docs".into(),
            RateLimit {
                per_sec: 0.1,
                burst: 2.0,
            },
        )],
        ..ServerConfig::default()
    };
    let handle = serve(db, "127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    let search = |collection: &str, target: u64| Request::Search {
        collection: collection.into(),
        k: 1,
        params: SearchParams::default(),
        query: vec![target as f32 + 0.1, 0.0, 0.0, 0.0],
    };
    let (mut hits, mut limited) = (0, 0);
    for i in 0..5u64 {
        match call_raw(addr, search("docs", i)) {
            Response::Hits(_) => hits += 1,
            Response::Error {
                code: ErrorCode::RateLimited,
                ..
            } => limited += 1,
            Response::Busy => panic!(
                "rate-limit sheds must use the RATE_LIMITED code, \
                 not the queue-overload Busy opcode"
            ),
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(hits, 2, "the burst allowance must be served");
    assert_eq!(limited, 3, "past the burst the bucket must shed");
    for i in 0..5u64 {
        assert!(
            matches!(call_raw(addr, search("free", i)), Response::Hits(_)),
            "an unlimited collection must not be throttled"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.rate_limited, 3);
    assert_eq!(stats.busy, 3, "rate-limit sheds are also counted busy");
    handle.shutdown();
}

/// The metrics plane over the wire: after a burst of traffic the
/// `server-stats` snapshot carries live latency percentiles, QPS, and
/// connection gauges.
#[test]
fn metrics_snapshot_reports_latency_qps_and_gauges() {
    let handle = serve(fixture_db(64, 4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    for i in 0..40u64 {
        let hits = client
            .search(
                "docs",
                &[(i % 64) as f32 + 0.2, 0.0, 0.0, 0.0],
                1,
                &SearchParams::default(),
            )
            .unwrap();
        assert_eq!(hits[0].key, i % 64);
    }
    let s = client.server_stats().unwrap();
    assert!(s.served >= 40, "served={}", s.served);
    assert!(s.p50_us > 0, "median latency must be recorded");
    assert!(s.p99_us >= s.p50_us, "p99 must dominate p50");
    assert!(s.qps > 0, "recent completions must show up as QPS");
    assert_eq!(s.interactive_depth, 0, "lanes must be drained at rest");
    assert_eq!(s.bulk_depth, 0);
    assert!(s.open_connections >= 1, "our own connection is open");
    assert_eq!(
        s.connections,
        s.open_connections + s.reaped,
        "accepted = open + closed on an idle server (no client hangups)"
    );
    assert_eq!(s.event_loop, handle.stats().event_loop);
    assert_eq!(s.busy, 0);
    assert_eq!(s.deadline_expired, 0);
    handle.shutdown();
}

/// Socket-backed scatter-gather: killing one shard's server yields a
/// partial result within the query deadline instead of an error or a
/// hang.
#[test]
fn killed_remote_shard_degrades_to_partial_within_deadline() {
    let mut rng = Rng::seed_from_u64(991);
    let data = dataset::gaussian(600, 8, &mut rng);
    let handles: Arc<vdb_core::sync::Mutex<Vec<ShardHandle>>> =
        Arc::new(vdb_core::sync::Mutex::new(Vec::new()));
    let handles_in_builder = handles.clone();
    let builder = move |v: Vectors, m: Metric| -> vdb_core::Result<Box<dyn VectorIndex>> {
        let local: Arc<dyn VectorIndex> = Arc::new(FlatIndex::build(v, m)?);
        let server = serve_index(local, "127.0.0.1:0")?;
        let remote = RemoteShard::connect(server.addr(), RemoteShardConfig::default())?;
        handles_in_builder.lock().push(server);
        Ok(Box::new(remote))
    };
    let dist = DistributedIndex::build(
        &data,
        Metric::Euclidean,
        DistributedConfig::uniform(3),
        &builder,
    )
    .unwrap();
    let params = SearchParams::default().with_timeout(Duration::from_millis(700));
    let q = vec![0.0; 8];

    let full = dist.search_outcome(&q, 10, &params).unwrap();
    assert!(!full.partial, "all shards up: result must be complete");
    assert_eq!(full.hits.len(), 10);

    // Kill one shard's server socket, then search again under deadline.
    let killed = handles.lock().remove(0);
    killed.shutdown();
    let start = Instant::now();
    let degraded = dist.search_outcome(&q, 10, &params).unwrap();
    let elapsed = start.elapsed();
    assert!(
        degraded.partial,
        "a dead shard must mark the result partial"
    );
    assert_eq!(degraded.failed_shards.len(), 1);
    assert!(
        !degraded.hits.is_empty(),
        "surviving shards must still contribute"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "partial result must arrive near the deadline, took {elapsed:?}"
    );
    for h in handles.lock().drain(..) {
        h.shutdown();
    }
}

/// Satellite regression: a malformed MATCH/FUSE clause sent over the
/// wire comes back as a TYPED parse error carrying the byte position of
/// the offending token — not a stringly Invalid — and a well-formed
/// hybrid statement on the same connection returns fused hits.
#[test]
fn malformed_match_clause_returns_typed_parse_error_with_position() {
    use vdb_core::attr::{AttrType, AttrValue};
    use vdb_core::Error;

    let mut db = Vdbms::new(SystemProfile::MostlyMixed);
    db.create_collection(
        CollectionSchema::new("docs", 4, Metric::Euclidean)
            .column("body", AttrType::Str)
            .text_index("body"),
        IndexSpec::Flat,
    )
    .unwrap();
    for (i, body) in [
        "vector search engine",
        "text ranking notes",
        "fusion of rankings",
    ]
    .iter()
    .enumerate()
    {
        db.collection_mut("docs")
            .unwrap()
            .insert(
                i as u64,
                &[i as f32, 0.0, 0.0, 1.0],
                &[("body", AttrValue::Str((*body).to_string()))],
            )
            .unwrap();
    }
    let handle = serve(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();

    // FUSE without MATCH: blamed at the FUSE keyword, position intact
    // across the encode/decode round trip.
    let bad = "SEARCH docs K 3 NEAR [1, 0, 0, 1] FUSE rrf 60";
    match client.vql(bad) {
        Err(Error::ParseAt { msg, pos }) => {
            assert_eq!(pos, bad.find("FUSE").unwrap(), "{msg}");
            assert!(msg.contains("MATCH"), "{msg}");
        }
        other => panic!("expected ParseAt over the wire, got {other:?}"),
    }
    // Unquoted MATCH argument: blamed at the argument.
    let bad = "SEARCH docs K 3 NEAR [1, 0, 0, 1] MATCH unquoted";
    match client.vql(bad) {
        Err(Error::ParseAt { pos, .. }) => {
            assert_eq!(pos, bad.find("unquoted").unwrap())
        }
        other => panic!("expected ParseAt over the wire, got {other:?}"),
    }
    // Malformed fusion parameter: convex alpha out of range.
    let bad = "SEARCH docs K 3 NEAR [1, 0, 0, 1] MATCH 'text' FUSE convex 1.5";
    match client.vql(bad) {
        Err(Error::ParseAt { pos, .. }) => assert_eq!(pos, bad.find("1.5").unwrap()),
        other => panic!("expected ParseAt over the wire, got {other:?}"),
    }

    // The same connection still serves a well-formed hybrid statement.
    let out = client
        .vql("SEARCH docs K 2 NEAR [1, 0, 0, 1] MATCH 'ranking text' FUSE rrf 60 HYBRID fused")
        .unwrap();
    match out {
        VqlOutput::FusedHits(result) => {
            assert_eq!(result.hits.len(), 2);
            assert!(result.hits.iter().any(|h| h.key == 1), "{result:?}");
        }
        other => panic!("expected FusedHits, got {other:?}"),
    }
    handle.shutdown();
}
