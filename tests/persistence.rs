//! Persistence integration: disk-resident indexes survive reopen, WAL
//! recovery reproduces live state, and torn logs degrade gracefully.

use vdb::{Collection, CollectionConfig, CollectionSchema, IndexSpec};
use vdb_core::{dataset, Metric, Rng, SearchParams, VectorIndex};
use vdb_index_graph::{DiskAnnConfig, DiskAnnIndex, VamanaConfig, VamanaIndex};
use vdb_index_table::{SpannConfig, SpannIndex};
use vdb_query::PlannerMode;
use vdb_storage::TempDir;

#[test]
fn diskann_reopen_equals_built_and_counts_io() {
    let mut rng = Rng::seed_from_u64(3000);
    let data = dataset::clustered(1200, 16, 8, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 10, 0.05, &mut rng);
    let vam = VamanaIndex::build(data, Metric::Euclidean, VamanaConfig::default()).unwrap();
    let dir = TempDir::new("it-diskann").unwrap();
    let path = dir.file("g.idx");
    let params = SearchParams::default().with_beam_width(48);

    let built = DiskAnnIndex::build(&path, &vam, &DiskAnnConfig::default()).unwrap();
    let before: Vec<_> = queries
        .iter()
        .map(|q| built.search(q, 10, &params).unwrap())
        .collect();
    drop(built);

    let reopened = DiskAnnIndex::open(&path, Metric::Euclidean, 0).unwrap();
    reopened.cache().reset_stats();
    let after: Vec<_> = queries
        .iter()
        .map(|q| reopened.search(q, 10, &params).unwrap())
        .collect();
    assert_eq!(before, after, "reopen must not change results");
    let io = reopened.cache().stats();
    assert!(io.misses > 0, "uncached search must read pages");
    let per_query = io.misses as f64 / queries.len() as f64;
    assert!(
        per_query <= 150.0,
        "I/O per query bounded by the beam: {per_query}"
    );
}

#[test]
fn spann_reopen_under_different_cache_budgets() {
    let mut rng = Rng::seed_from_u64(3001);
    let data = dataset::clustered(1500, 16, 12, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 10, 0.05, &mut rng);
    let dir = TempDir::new("it-spann").unwrap();
    let path = dir.file("s.idx");
    let built = SpannIndex::build(&path, &data, Metric::Euclidean, &SpannConfig::new(12)).unwrap();
    let params = SearchParams::default().with_nprobe(4);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| built.search(q, 10, &params).unwrap())
        .collect();
    drop(built);
    for budget in [0usize, 8, 1024] {
        let idx = SpannIndex::open(&path, Metric::Euclidean, budget).unwrap();
        let got: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        assert_eq!(expected, got, "cache budget {budget} changed results");
    }
}

#[test]
fn wal_recovery_equals_live_collection() {
    let dir = TempDir::new("it-wal").unwrap();
    let schema = CollectionSchema::new("r", 8, Metric::Euclidean);
    let cfg = CollectionConfig {
        index: IndexSpec::parse("hnsw").unwrap(),
        merge_threshold: 64,
        planner: PlannerMode::CostBased,
        wal_dir: Some(dir.path().to_path_buf()),
        ..Default::default()
    };
    let mut rng = Rng::seed_from_u64(3002);
    let data = dataset::gaussian(300, 8, &mut rng);
    let params = SearchParams::default().with_beam_width(64);

    let live_hits;
    let live_len;
    {
        let mut c = Collection::create(schema.clone(), cfg.clone()).unwrap();
        for (i, row) in data.iter().enumerate() {
            c.insert(i as u64, row, &[]).unwrap();
        }
        for key in (0..300u64).step_by(7) {
            c.delete(key).unwrap();
        }
        c.insert(5, data.get(200), &[]).unwrap(); // resurrect + move key 5
        live_len = c.len();
        live_hits = c.search(data.get(100), 10, &params).unwrap();
    } // drop simulates the crash (WAL already synced per operation)

    let recovered = Collection::recover(schema, cfg).unwrap();
    assert_eq!(recovered.len(), live_len);
    let hits = recovered.search(data.get(100), 10, &params).unwrap();
    assert_eq!(
        live_hits.iter().map(|h| h.key).collect::<Vec<_>>(),
        hits.iter().map(|h| h.key).collect::<Vec<_>>()
    );
    assert_eq!(recovered.get(5).unwrap(), data.get(200));
}

#[test]
fn torn_wal_tail_loses_only_the_torn_record() {
    let dir = TempDir::new("it-torn").unwrap();
    let schema = CollectionSchema::new("t", 4, Metric::Euclidean);
    let cfg = CollectionConfig {
        index: IndexSpec::Flat,
        merge_threshold: 1024,
        planner: PlannerMode::CostBased,
        wal_dir: Some(dir.path().to_path_buf()),
        ..Default::default()
    };
    {
        let mut c = Collection::create(schema.clone(), cfg.clone()).unwrap();
        for i in 0..10u64 {
            c.insert(i, &[i as f32, 0.0, 0.0, 0.0], &[]).unwrap();
        }
    }
    // Tear the last few bytes off the log.
    let wal_path = dir.path().join("t.wal");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
    let recovered = Collection::recover(schema, cfg).unwrap();
    assert_eq!(recovered.len(), 9, "only the torn final insert is lost");
    assert!(recovered.get(8).is_some());
    assert!(recovered.get(9).is_none());
}
