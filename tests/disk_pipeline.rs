//! Disk-serving pipeline equivalence suite (DESIGN.md §12).
//!
//! The pipeline's contract is that none of its levers can change what a
//! query returns: asynchronous prefetch only warms the cache, the
//! BFS-packed layout only permutes record placement, and kernel-batched
//! rescoring computes the same distances as scalar loops. These tests
//! pin that contract across every dimension 1..=67 (covering each SIMD
//! remainder lane), with filters, with deliberately reused contexts, and
//! under concurrent searchers hammering one shared cache.

use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_core::{dataset, Metric, Rng, SearchParams, VectorIndex};
use vdb_index_graph::{DiskAnnConfig, DiskAnnIndex, VamanaConfig, VamanaIndex};
use vdb_index_table::{SpannConfig, SpannIndex};
use vdb_storage::{PageId, PagedFile, TempDir};

const K: usize = 5;

fn workload(dim: usize) -> (Vectors, Vectors) {
    let mut rng = Rng::seed_from_u64(0xD15C + dim as u64);
    let data = dataset::clustered(160, dim, 4, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 4, 0.05, &mut rng);
    (data, queries)
}

fn diskann_cfg(packed: bool) -> DiskAnnConfig {
    DiskAnnConfig {
        // pq_m = 1 divides every dimension in 1..=67.
        pq_m: 1,
        nav_nlist: 8,
        cache_pages: 32,
        packed_layout: packed,
        ..DiskAnnConfig::default()
    }
}

fn spann_cfg() -> SpannConfig {
    let mut cfg = SpannConfig::new(8);
    cfg.cache_pages = 32;
    cfg
}

fn search_all(
    idx: &dyn VectorIndex,
    queries: &Vectors,
    params: &SearchParams,
    ctx: &mut SearchContext,
) -> Vec<Vec<Neighbor>> {
    queries
        .iter()
        .map(|q| idx.search_with(ctx, q, K, params).unwrap())
        .collect()
}

/// Prefetch on/off and packed/identity layouts are bit-identical for
/// DiskANN, and prefetch on/off for SPANN, at every dim 1..=67.
#[test]
fn pipeline_levers_are_bit_identical_across_dims() {
    let dir = TempDir::new("pipeline-dims").unwrap();
    let dparams = SearchParams::default().with_beam_width(24);
    let sparams = SearchParams::default().with_nprobe(4);
    // One deliberately never-reset context across all dims and indexes:
    // reuse must be invisible too.
    let mut ctx = SearchContext::new();
    for dim in 1..=67usize {
        let (data, queries) = workload(dim);
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let packed =
            DiskAnnIndex::build(dir.file(&format!("d{dim}-p.idx")), &vam, &diskann_cfg(true))
                .unwrap();
        let identity = DiskAnnIndex::build(
            dir.file(&format!("d{dim}-i.idx")),
            &vam,
            &diskann_cfg(false),
        )
        .unwrap();
        packed.set_prefetch(false);
        let baseline = search_all(&packed, &queries, &dparams, &mut ctx);
        packed.set_prefetch(true);
        assert_eq!(
            baseline,
            search_all(&packed, &queries, &dparams, &mut ctx),
            "dim {dim}: diskann prefetch changed results"
        );
        for prefetch in [false, true] {
            identity.set_prefetch(prefetch);
            assert_eq!(
                baseline,
                search_all(&identity, &queries, &dparams, &mut ctx),
                "dim {dim}: layout (prefetch={prefetch}) changed results"
            );
        }

        let spann = SpannIndex::build(
            dir.file(&format!("d{dim}-s.idx")),
            &data,
            Metric::Euclidean,
            &spann_cfg(),
        )
        .unwrap();
        spann.set_prefetch(false);
        let baseline = search_all(&spann, &queries, &sparams, &mut ctx);
        spann.set_prefetch(true);
        assert_eq!(
            baseline,
            search_all(&spann, &queries, &sparams, &mut ctx),
            "dim {dim}: spann prefetch changed results"
        );
    }
}

/// Filtered search is equally invariant under every pipeline lever.
#[test]
fn filtered_search_is_bit_identical() {
    let dir = TempDir::new("pipeline-filter").unwrap();
    let (data, queries) = workload(19);
    let filter = |id: usize| !id.is_multiple_of(3);
    let dparams = SearchParams::default().with_beam_width(24);
    let sparams = SearchParams::default().with_nprobe(4);

    let vam = VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
    let packed = DiskAnnIndex::build(dir.file("p.idx"), &vam, &diskann_cfg(true)).unwrap();
    let identity = DiskAnnIndex::build(dir.file("i.idx"), &vam, &diskann_cfg(false)).unwrap();
    packed.set_prefetch(false);
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| packed.search_filtered(q, K, &dparams, &filter).unwrap())
        .collect();
    assert!(baseline.iter().flatten().all(|n| !n.id.is_multiple_of(3)));
    packed.set_prefetch(true);
    identity.set_prefetch(true);
    for idx in [&packed, &identity] {
        let got: Vec<_> = queries
            .iter()
            .map(|q| idx.search_filtered(q, K, &dparams, &filter).unwrap())
            .collect();
        assert_eq!(baseline, got);
    }

    let spann =
        SpannIndex::build(dir.file("s.idx"), &data, Metric::Euclidean, &spann_cfg()).unwrap();
    spann.set_prefetch(false);
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| spann.search_filtered(q, K, &sparams, &filter).unwrap())
        .collect();
    spann.set_prefetch(true);
    let got: Vec<_> = queries
        .iter()
        .map(|q| spann.search_filtered(q, K, &sparams, &filter).unwrap())
        .collect();
    assert_eq!(baseline, got);
}

/// Concurrent searchers over one shared cache: every thread gets exactly
/// the serial results while the cache serves hits, misses, prefetches,
/// and in-flight waits from all of them at once.
#[test]
fn concurrent_searchers_share_the_cache() {
    let dir = TempDir::new("pipeline-stress").unwrap();
    let (data, queries) = workload(32);
    let dparams = SearchParams::default().with_beam_width(24);
    let vam = VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
    // Tiny budget so eviction, admission, and prefetch churn constantly.
    let mut cfg = diskann_cfg(true);
    cfg.cache_pages = 4;
    let idx = Arc::new(DiskAnnIndex::build(dir.file("c.idx"), &vam, &cfg).unwrap());
    idx.set_prefetch(true);
    let expected = Arc::new(search_all(
        idx.as_ref(),
        &queries,
        &dparams,
        &mut SearchContext::new(),
    ));
    let queries = Arc::new(queries);
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let (idx, queries, expected) = (idx.clone(), queries.clone(), expected.clone());
            let dparams = dparams.clone();
            std::thread::spawn(move || {
                let mut ctx = SearchContext::new();
                for _ in 0..8 {
                    let got = search_all(idx.as_ref(), &queries, &dparams, &mut ctx);
                    assert_eq!(*expected, got);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = idx.cache().stats();
    assert!(stats.accesses() > 0);
    assert_eq!(stats.pinned_pages as usize, idx.cache().pinned_pages());
}

/// Identity-layout images are byte-compatible with the pre-pipeline
/// format: the layout-version header word is zero (exactly what old
/// zeroed headers contain), and reopening serves identical results.
#[test]
fn legacy_images_remain_loadable() {
    let dir = TempDir::new("pipeline-legacy").unwrap();
    let (data, queries) = workload(16);
    let dparams = SearchParams::default().with_beam_width(24);
    let vam = VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
    let path = dir.file("legacy.idx");
    let built = DiskAnnIndex::build(&path, &vam, &diskann_cfg(false)).unwrap();
    assert_eq!(built.layout_version(), 0);
    let expected = search_all(&built, &queries, &dparams, &mut SearchContext::new());
    drop(built);
    // The v0 header's layout word is zero — indistinguishable from a
    // file written before layout versioning existed.
    let file = PagedFile::open(&path).unwrap();
    assert_eq!(file.read_page(PageId(0)).unwrap().read_u32(32), 0);
    drop(file);
    let reopened = DiskAnnIndex::open(&path, Metric::Euclidean, 32).unwrap();
    assert_eq!(reopened.layout_version(), 0);
    assert_eq!(
        expected,
        search_all(&reopened, &queries, &dparams, &mut SearchContext::new())
    );

    // SPANN's format is unchanged by this PR; reopen round-trips too.
    let spath = dir.file("legacy-spann.idx");
    let built = SpannIndex::build(&spath, &data, Metric::Euclidean, &spann_cfg()).unwrap();
    let sparams = SearchParams::default().with_nprobe(4);
    let expected = search_all(&built, &queries, &sparams, &mut SearchContext::new());
    drop(built);
    let reopened = SpannIndex::open(&spath, Metric::Euclidean, 32).unwrap();
    assert_eq!(
        expected,
        search_all(&reopened, &queries, &sparams, &mut SearchContext::new())
    );
}
