//! Cross-crate hybrid-query correctness: every strategy on every
//! hybrid-capable index family, validated against the brute-force oracle
//! across predicate selectivities.

use vdb_core::{dataset, AttrType, Metric, Rng, SearchParams, VectorIndex, Vectors};
use vdb_index_graph::{HnswConfig, HnswIndex, VamanaConfig, VamanaIndex};
use vdb_index_table::{IvfConfig, IvfFlatIndex};
use vdb_query::{execute, Predicate, QueryContext, Strategy, VectorQuery};
use vdb_storage::{AttributeStore, Column};

struct Fixture {
    data: Vectors,
    attrs: AttributeStore,
    queries: Vectors,
}

fn fixture() -> Fixture {
    let mut rng = Rng::seed_from_u64(2000);
    let data = dataset::clustered(3000, 16, 12, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 15, 0.05, &mut rng);
    let mut attrs = AttributeStore::new();
    attrs
        .add_column(
            Column::from_values(
                "v",
                AttrType::Int,
                dataset::int_column(3000, 0, 1000, &mut rng),
            )
            .unwrap(),
        )
        .unwrap();
    Fixture {
        data,
        attrs,
        queries,
    }
}

fn indexes(data: &Vectors) -> Vec<Box<dyn VectorIndex>> {
    vec![
        Box::new(
            IvfFlatIndex::build(data.clone(), Metric::Euclidean, &IvfConfig::new(24)).unwrap(),
        ),
        Box::new(HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap()),
        Box::new(
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap(),
        ),
    ]
}

#[test]
fn strategies_never_violate_predicates_and_recall_holds_mid_selectivity() {
    let f = fixture();
    let params = SearchParams::default().with_beam_width(128).with_nprobe(24);
    // Mid selectivity (~30%): every strategy should work well here.
    let pred = Predicate::lt("v", 300);
    for index in indexes(&f.data) {
        let ctx = QueryContext::new(&f.data, &f.attrs, index.as_ref()).unwrap();
        for qv in f.queries.iter() {
            let q = VectorQuery::knn(qv.to_vec(), 10)
                .filtered(pred.clone())
                .with_params(params.clone());
            let oracle = execute(&ctx, &q, Strategy::BruteForce).unwrap();
            let oset: std::collections::HashSet<usize> = oracle.iter().map(|n| n.id).collect();
            for strategy in Strategy::ALL {
                let out = execute(&ctx, &q, strategy).unwrap();
                assert!(
                    out.iter().all(|n| pred.eval(&f.attrs, n.id)),
                    "{}/{}: predicate violated",
                    index.name(),
                    strategy.name()
                );
                let hits = out.iter().filter(|n| oset.contains(&n.id)).count();
                assert!(
                    hits as f64 / oset.len() as f64 >= 0.6,
                    "{}/{}: recall {hits}/{}",
                    index.name(),
                    strategy.name(),
                    oset.len()
                );
            }
        }
    }
}

#[test]
fn extreme_selectivities_are_safe() {
    let f = fixture();
    let params = SearchParams::default().with_beam_width(128).with_nprobe(24);
    for index in indexes(&f.data) {
        let ctx = QueryContext::new(&f.data, &f.attrs, index.as_ref()).unwrap();
        // ~0.5% selectivity: results may be scarce but never wrong, and
        // exact strategies must find whatever exists.
        let narrow = Predicate::lt("v", 5);
        let q = VectorQuery::knn(f.queries.get(0).to_vec(), 10)
            .filtered(narrow.clone())
            .with_params(params.clone());
        let oracle = execute(&ctx, &q, Strategy::BruteForce).unwrap();
        for strategy in Strategy::ALL {
            let out = execute(&ctx, &q, strategy).unwrap();
            assert!(out.iter().all(|n| narrow.eval(&f.attrs, n.id)));
            assert!(out.len() <= oracle.len());
        }
        // Predicate matching nothing.
        let none = Predicate::lt("v", -1);
        let q = VectorQuery::knn(f.queries.get(0).to_vec(), 5).filtered(none);
        for strategy in Strategy::ALL {
            assert!(
                execute(&ctx, &q, strategy).unwrap().is_empty(),
                "{}",
                strategy.name()
            );
        }
        // Predicate matching everything equals the unpredicated search for
        // the exact strategies.
        let all = Predicate::lt("v", 10_000);
        let q_all = VectorQuery::knn(f.queries.get(1).to_vec(), 10)
            .filtered(all)
            .with_params(params.clone());
        let q_plain = VectorQuery::knn(f.queries.get(1).to_vec(), 10).with_params(params.clone());
        let a = execute(&ctx, &q_all, Strategy::BruteForce).unwrap();
        let b = execute(&ctx, &q_plain, Strategy::BruteForce).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn planner_choices_execute_correctly_across_the_sweep() {
    let f = fixture();
    let params = SearchParams::default().with_beam_width(96).with_nprobe(16);
    let index = HnswIndex::build(f.data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
    let ctx = QueryContext::new(&f.data, &f.attrs, &index).unwrap();
    for mode in [
        vdb_query::PlannerMode::RuleBased,
        vdb_query::PlannerMode::CostBased,
        vdb_query::PlannerMode::Fixed(Strategy::PostFilter),
    ] {
        let planner = vdb_query::Planner::new(mode);
        for cut in [5i64, 50, 300, 900] {
            let pred = Predicate::lt("v", cut);
            let q = VectorQuery::knn(f.queries.get(2).to_vec(), 10)
                .filtered(pred.clone())
                .with_params(params.clone());
            let (plan, out) = planner.run(&ctx, &q).unwrap();
            assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
            assert!(out.iter().all(|n| pred.eval(&f.attrs, n.id)));
        }
    }
}
