//! The replicated write path, end to end: WAL shipping with idempotent
//! LSN apply, torn-stream prefix semantics at the collection level,
//! snapshot + tail bootstrap under concurrent writes (bit-identical
//! convergence), and the headline crash drill — kill the primary under
//! load, promote a replica via the cluster manifest, and prove that no
//! acknowledged write was lost and routing recovers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vdb::{CollectionSchema, IndexSpec, SystemProfile, Vdbms};
use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::sync::Mutex;
use vdb_core::Metric;
use vdb_distributed::ClusterManifest;
use vdb_server::{
    attach_primary, serve, Client, ClusterClient, ReplicationConfig, Request, Response,
    ServerConfig,
};
use vdb_storage::decode_shipped;

fn schema(name: &str) -> CollectionSchema {
    CollectionSchema::new(name, 4, Metric::Euclidean).column("tag", AttrType::Int)
}

fn fresh_db(collection: &str) -> Vdbms {
    let mut db = Vdbms::new(SystemProfile::MostlyVector);
    db.create_collection(schema(collection), IndexSpec::Flat)
        .unwrap();
    db
}

fn vector_of(key: u64) -> Vec<f32> {
    vec![
        key as f32,
        (key % 7) as f32 * 0.5,
        -(key as f32) * 0.25,
        1.0,
    ]
}

/// Every mutation a primary acknowledges flows through its sink as one
/// shipped frame. Capture the stream, then cut it at EVERY byte offset
/// and apply to a fresh replica: the replica must hold exactly the
/// state of the record prefix that survived — never an error, never a
/// partial record, never a panic. This is `wal_torn_tail.rs` lifted to
/// the replication layer.
#[test]
fn torn_replication_stream_applies_exact_prefix_at_every_offset() {
    let mut primary = fresh_db("docs");
    let stream = Arc::new(Mutex::new(Vec::<u8>::new()));
    {
        let sink_stream = Arc::clone(&stream);
        primary
            .collection("docs")
            .unwrap()
            .set_replication_sink(Some(Arc::new(move |_lsn, frame: &[u8]| {
                sink_stream.lock().extend_from_slice(frame);
                Ok(())
            })));
    }
    let c = primary.collection_mut("docs").unwrap();
    for key in 0..8u64 {
        c.insert(key, &vector_of(key), &[("tag", AttrValue::Int(key as i64))])
            .unwrap();
    }
    c.delete(3).unwrap();
    c.delete(6).unwrap();
    c.insert(3, &vector_of(103), &[]).unwrap();
    let full = stream.lock().clone();
    assert_eq!(c.replication_lsn(), 11, "8 inserts + 2 deletes + 1 insert");

    // Model the expected state per record prefix from the decoded
    // stream itself (the codec's own sweep lives in vdb-storage; here
    // we trust decode on the FULL stream and check collection state).
    let records = decode_shipped(&full).unwrap();
    assert_eq!(records.len(), 11);
    let mut frame_ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= full.len() {
        let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        frame_ends.push(off);
    }
    assert_eq!(frame_ends.len(), 11);

    for cut in 0..=full.len() {
        let n_records = frame_ends.iter().filter(|&&e| e <= cut).count();
        let mut replica = fresh_db("docs");
        let rc = replica.collection_mut("docs").unwrap();
        let lsn = rc
            .apply_replication_stream(&full[..cut])
            .unwrap_or_else(|e| panic!("apply failed at cut {cut}: {e}"));
        assert_eq!(lsn, n_records as u64, "cut {cut}: wrong LSN");
        let mut model: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
        for shipped in &records[..n_records] {
            match &shipped.record {
                vdb_storage::WalRecord::Insert { key, vector, .. } => {
                    model.insert(*key, vector.clone());
                }
                vdb_storage::WalRecord::Delete { key } => {
                    model.remove(key);
                }
            }
        }
        let mut keys = rc.keys();
        keys.sort_unstable();
        assert_eq!(
            keys,
            model.keys().copied().collect::<Vec<_>>(),
            "cut {cut}: live key set diverged"
        );
        for (key, vector) in &model {
            assert_eq!(
                rc.get(*key).as_deref(),
                Some(vector.as_slice()),
                "cut {cut}: vector bytes diverged for key {key}"
            );
        }
        // Idempotence: re-applying the same prefix is a no-op.
        assert_eq!(rc.apply_replication_stream(&full[..cut]).unwrap(), lsn);
    }
}

/// Duplicate and gap detection at the record level: at-or-below LSNs
/// are skipped, jumps ahead are refused (the replica must re-bootstrap,
/// not silently hold a hole).
#[test]
fn lsn_rules_skip_duplicates_and_refuse_gaps() {
    let mut db = fresh_db("docs");
    let stream = Arc::new(Mutex::new(Vec::<u8>::new()));
    {
        let sink_stream = Arc::clone(&stream);
        db.collection("docs")
            .unwrap()
            .set_replication_sink(Some(Arc::new(move |_l, f: &[u8]| {
                sink_stream.lock().extend_from_slice(f);
                Ok(())
            })));
    }
    let c = db.collection_mut("docs").unwrap();
    for key in 0..4u64 {
        c.insert(key, &vector_of(key), &[]).unwrap();
    }
    let full = stream.lock().clone();
    let records = decode_shipped(&full).unwrap();

    let mut replica = fresh_db("docs");
    let rc = replica.collection_mut("docs").unwrap();
    assert!(rc.apply_replicated(1, &records[0].record).unwrap());
    assert!(
        !rc.apply_replicated(1, &records[0].record).unwrap(),
        "duplicate LSN must be skipped, not re-applied"
    );
    assert!(
        rc.apply_replicated(3, &records[2].record).is_err(),
        "a gap (replica at 1, record 3) must be refused"
    );
    assert!(rc.apply_replicated(2, &records[1].record).unwrap());
    assert_eq!(rc.replication_lsn(), 2);
}

/// Bootstrap under fire: a replica attaches WHILE the primary is taking
/// writes. The snapshot/tail export and the sink installation happen
/// under one lock, so every write lands either in the bootstrap payload
/// or in the shipped stream — afterwards the two nodes must hold
/// bit-identical collection state (same keys, same f32 bits, same
/// attributes, same LSN).
fn bootstrap_during_writes(event_loop: Option<bool>) {
    let cfg = ServerConfig {
        event_loop,
        ..ServerConfig::default()
    };
    let primary = serve(fresh_db("docs"), "127.0.0.1:0", cfg.clone()).unwrap();
    let replica = serve(Vdbms::new(SystemProfile::MostlyVector), "127.0.0.1:0", cfg).unwrap();
    let primary_client = Client::connect(primary.addr()).unwrap();

    // Seed some pre-attach history.
    for key in 0..64u64 {
        primary_client
            .insert(
                "docs",
                key,
                &vector_of(key),
                &[("tag", AttrValue::Int(key as i64))],
            )
            .unwrap();
    }

    // Writer hammers the primary while the replica bootstraps.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let client = Client::connect(primary.addr()).unwrap();
        std::thread::spawn(move || {
            let mut key = 1000u64;
            while !stop.load(Ordering::SeqCst) {
                // During the bootstrap window (sink installed, link not
                // yet attached) an insert applies locally but fails its
                // replication ack — tolerated here; convergence is
                // checked against the primary's actual final state.
                let _ = client.insert("docs", key, &vector_of(key), &[]);
                if key.is_multiple_of(5) {
                    let _ = client.delete("docs", key - 3);
                }
                key += 1;
            }
            key
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(30));
    let replica_addr = replica.addr().to_string();
    let replicator = attach_primary(
        &primary,
        "docs",
        &[replica_addr],
        ReplicationConfig::default(),
    )
    .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();

    let states = replicator.replica_states();
    assert_eq!(states.len(), 1);
    assert!(states[0].2, "replica must be live after bootstrap");

    // Pull-path cross-check: both nodes report the same LSN over the
    // wire, and the replica can serve a bootstrap payload itself.
    let replica_client = Client::connect(replica.addr()).unwrap();
    let p_lsn = primary_client.repl_status("docs").unwrap();
    let r_lsn = replica_client.repl_status("docs").unwrap();
    assert_eq!(p_lsn, r_lsn, "replica must be caught up once writes stop");
    let payload = replica_client.repl_snapshot("docs").unwrap();
    assert_eq!(payload.lsn, r_lsn);
    assert_eq!(payload.dim, 4);

    // Bit-identical convergence, checked in-process after shutdown.
    let p_db = primary.shutdown();
    let r_db = replica.shutdown();
    let p = p_db.collection("docs").unwrap();
    let r = r_db.collection("docs").unwrap();
    let mut p_keys = p.keys();
    let mut r_keys = r.keys();
    p_keys.sort_unstable();
    r_keys.sort_unstable();
    assert_eq!(p_keys, r_keys, "live key sets diverged");
    assert!(p_keys.len() > 64, "writer traffic must have landed");
    for key in p_keys {
        let pv = p.get(key).unwrap();
        let rv = r.get(key).unwrap();
        assert_eq!(
            pv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            rv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "vector bits diverged for key {key}"
        );
        assert_eq!(p.get_attrs(key), r.get_attrs(key), "attrs diverged: {key}");
    }
    assert_eq!(p.replication_lsn(), r.replication_lsn());
}

#[test]
fn replica_bootstrap_during_writes_is_bit_identical_event_loop() {
    bootstrap_during_writes(Some(true));
}

#[test]
fn replica_bootstrap_during_writes_is_bit_identical_legacy_core() {
    bootstrap_during_writes(Some(false));
}

/// A write sent to a non-primary node answers `Redirect` with the
/// shard primary's address instead of applying locally.
#[test]
fn non_primary_node_redirects_writes() {
    let a = serve(fresh_db("docs"), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let b = serve(fresh_db("docs"), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let manifest = {
        let mut m = ClusterManifest::new("docs", 1, std::slice::from_ref(&a_addr)).unwrap();
        m.shards[0].replicas.push(b_addr.clone());
        m
    };
    a.set_cluster(a_addr.clone(), manifest.clone());
    b.set_cluster(b_addr, manifest);
    let direct = Client::connect(b.addr()).unwrap();
    let resp = direct
        .call(&Request::Insert {
            collection: "docs".into(),
            key: 7,
            vector: vector_of(7),
            attrs: vec![],
        })
        .unwrap();
    match resp {
        Response::Redirect { addr } => assert_eq!(addr, a_addr),
        other => panic!("expected Redirect to the primary, got {other:?}"),
    }
    a.shutdown();
    b.shutdown();
}

/// The headline drill: writes flow through a `ClusterClient` while the
/// primary is killed mid-stream; a coordinator promotes the replica via
/// the manifest; the client refreshes routing and keeps writing. Every
/// write acknowledged BEFORE, DURING, or AFTER the failover must be on
/// the surviving node with exact bytes — zero lost acked writes.
#[test]
fn kill_primary_under_load_loses_no_acked_write() {
    let primary = serve(fresh_db("docs"), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let replica = serve(
        Vdbms::new(SystemProfile::MostlyVector),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let (p_addr, r_addr) = (primary.addr().to_string(), replica.addr().to_string());
    let manifest = {
        let mut m = ClusterManifest::new("docs", 1, std::slice::from_ref(&p_addr)).unwrap();
        m.shards[0].replicas.push(r_addr.clone());
        m
    };
    primary.set_cluster(p_addr.clone(), manifest.clone());
    replica.set_cluster(r_addr.clone(), manifest.clone());
    // Synchronous replication: an acked write is on the replica.
    attach_primary(
        &primary,
        "docs",
        std::slice::from_ref(&r_addr),
        ReplicationConfig {
            min_acks: 1,
            ..ReplicationConfig::default()
        },
    )
    .unwrap();

    let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let seed = p_addr.clone();
    let writer = {
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = ClusterClient::connect(&seed, "docs").unwrap();
            let mut key = 0u64;
            while !stop.load(Ordering::SeqCst) {
                if client
                    .insert(key, &vector_of(key), &[("tag", AttrValue::Int(key as i64))])
                    .is_ok()
                {
                    acked.lock().push(key);
                }
                key += 1;
            }
        })
    };

    // Let load build, then kill the primary and promote the replica.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let killed_at = acked.lock().len();
    assert!(killed_at > 0, "some writes must be acked before the kill");
    primary.shutdown();
    let mut promoted = manifest.clone();
    let new_primary = promoted.promote(0).unwrap();
    assert_eq!(new_primary, r_addr);
    Client::connect(replica.addr())
        .unwrap()
        .manifest_put(&promoted)
        .unwrap();

    // Writes must start succeeding again (failover recovery).
    let resumed_from = acked.lock().len();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while acked.lock().len() < resumed_from + 20 {
        assert!(
            std::time::Instant::now() < deadline,
            "writes never recovered after failover"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();

    // THE invariant: every acknowledged write is on the survivor,
    // bit-exact. (Un-acked writes may or may not be present — keyed
    // retries make that safe — but acked ones have no excuse.)
    let survivor = replica.shutdown();
    let c = survivor.collection("docs").unwrap();
    let acked = acked.lock();
    for &key in acked.iter() {
        let got = c
            .get(key)
            .unwrap_or_else(|| panic!("ACKED write {key} lost in failover"));
        assert_eq!(
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            vector_of(key)
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "acked write {key} corrupted in failover"
        );
        assert_eq!(
            c.get_attrs(key).unwrap().as_slice(),
            &[("tag".to_string(), AttrValue::Int(key as i64))],
            "acked attrs {key} lost in failover"
        );
    }
    assert!(
        acked.len() > killed_at,
        "no write was ever acked after the kill: failover did not recover"
    );
}
