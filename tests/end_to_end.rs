//! End-to-end integration: every index in the registry serving the same
//! collection, searched through the full facade.

use vdb::{Collection, CollectionConfig, CollectionSchema, IndexSpec};
use vdb_core::recall::GroundTruth;
use vdb_core::{dataset, AttrType, Metric, Rng, SearchParams};
use vdb_query::PlannerMode;

fn dataset_and_queries() -> (vdb_core::Vectors, vdb_core::Vectors, GroundTruth) {
    let mut rng = Rng::seed_from_u64(1000);
    let data = dataset::clustered(2000, 16, 12, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
    let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
    (data, queries, gt)
}

/// Generous per-index search parameters for the recall check.
fn params() -> SearchParams {
    SearchParams::default()
        .with_beam_width(128)
        .with_nprobe(16)
        .with_max_leaf_points(800)
        .with_rerank(128)
}

#[test]
fn every_registry_index_reaches_reasonable_recall_through_the_facade() {
    let (data, queries, gt) = dataset_and_queries();
    for spec in IndexSpec::all_defaults() {
        let name = spec.name();
        let mut c = Collection::create(
            CollectionSchema::new("zoo", 16, Metric::Euclidean),
            CollectionConfig {
                index: spec,
                merge_threshold: 100_000, // merge manually below
                planner: PlannerMode::CostBased,
                wal_dir: None,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, row) in data.iter().enumerate() {
            c.insert(i as u64, row, &[]).unwrap();
        }
        c.merge().unwrap();
        assert_eq!(c.stats().index_name, name);
        let results: Vec<Vec<vdb_core::Neighbor>> = queries
            .iter()
            .map(|q| {
                c.search(q, 10, &params())
                    .unwrap()
                    .into_iter()
                    .map(|h| vdb_core::Neighbor::new(h.key as usize, h.dist))
                    .collect()
            })
            .collect();
        let recall = gt.recall_batch(&results);
        // LSH and raw KNNGs are the weakest structures here; everything
        // must still clear a meaningful floor at these settings.
        let floor = match name {
            "lsh" | "knng" => 0.5,
            _ => 0.8,
        };
        assert!(recall >= floor, "{name}: recall {recall} < {floor}");
    }
}

#[test]
fn collection_lifecycle_with_attributes_and_updates() {
    let (data, queries, _) = dataset_and_queries();
    let mut c = Collection::create(
        CollectionSchema::new("life", 16, Metric::Euclidean).column("bucket", AttrType::Int),
        CollectionConfig {
            index: IndexSpec::parse("hnsw").unwrap(),
            merge_threshold: 500,
            planner: PlannerMode::CostBased,
            wal_dir: None,
            ..Default::default()
        },
    )
    .unwrap();
    for (i, row) in data.iter().enumerate() {
        c.insert(i as u64, row, &[("bucket", ((i % 10) as i64).into())])
            .unwrap();
    }
    assert_eq!(c.len(), 2000);

    // Hybrid query.
    let pred = vdb_query::Predicate::eq("bucket", 3i64);
    let hits = c
        .search_hybrid(queries.get(0), 5, &pred, &params(), None)
        .unwrap();
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|h| h.key % 10 == 3));

    // Delete a whole bucket; it must vanish from results.
    for key in (0..2000u64).filter(|k| k % 10 == 3) {
        c.delete(key).unwrap();
    }
    assert_eq!(c.len(), 1800);
    let hits = c
        .search_hybrid(queries.get(0), 5, &pred, &params(), None)
        .unwrap();
    assert!(hits.is_empty(), "deleted bucket still visible: {hits:?}");

    // Merge compacts and the collection still answers.
    c.merge().unwrap();
    assert_eq!(c.len(), 1800);
    let hits = c.search(queries.get(1), 10, &params()).unwrap();
    assert_eq!(hits.len(), 10);
    assert!(hits.iter().all(|h| h.key % 10 != 3));
}

#[test]
fn metrics_other_than_l2_flow_through() {
    let mut rng = Rng::seed_from_u64(1001);
    let mut data = dataset::gaussian(500, 16, &mut rng);
    data.normalize();
    for metric in [Metric::Cosine, Metric::InnerProduct, Metric::Manhattan] {
        let mut c = Collection::create(
            CollectionSchema::new("m", 16, metric.clone()),
            CollectionConfig {
                index: IndexSpec::Flat,
                merge_threshold: 200,
                planner: PlannerMode::RuleBased,
                wal_dir: None,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, row) in data.iter().enumerate() {
            c.insert(i as u64, row, &[]).unwrap();
        }
        let hits = c.search(data.get(42), 1, &SearchParams::default()).unwrap();
        assert_eq!(
            hits[0].key,
            42,
            "{} must retrieve the query point",
            metric.name()
        );
    }
}
