//! Property-based tests over core invariants (proptest).

use proptest::prelude::*;
use vdb_core::bitset::BitSet;
use vdb_core::kernel;
use vdb_core::metric::Metric;
use vdb_core::topk::{top_k_by_sort, Neighbor, TopK};
use vdb_core::vector::Vectors;
use vdb_quant::{ProductQuantizer, PqConfig, ScalarQuantizer, SqBits};
use vdb_storage::{LsmConfig, LsmStore};

/// Strategy: a small finite f32 vector of the given length.
fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn true_metrics_satisfy_axioms(a in vec_of(8), b in vec_of(8), c in vec_of(8)) {
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            let dab = metric.distance(&a, &b);
            let dba = metric.distance(&b, &a);
            let daa = metric.distance(&a, &a);
            let dac = metric.distance(&a, &c);
            let dcb = metric.distance(&c, &b);
            // Symmetry, identity, non-negativity, triangle inequality
            // (with float slack).
            prop_assert!((dab - dba).abs() <= 1e-3 * dab.abs().max(1.0));
            prop_assert!(daa.abs() < 1e-3);
            prop_assert!(dab >= 0.0);
            prop_assert!(dab <= dac + dcb + 1e-2 * (dac + dcb).max(1.0),
                "{}: d(a,b)={dab} > d(a,c)+d(c,b)={}", metric.name(), dac + dcb);
        }
    }

    #[test]
    fn blocked_kernels_match_scalar(a in vec_of(37), b in vec_of(37)) {
        let scale = kernel::l2_sq_scalar(&a, &b).max(1.0);
        prop_assert!((kernel::l2_sq(&a, &b) - kernel::l2_sq_scalar(&a, &b)).abs() <= 1e-3 * scale);
        let dscale = kernel::dot_scalar(&a, &b).abs().max(1.0);
        prop_assert!((kernel::dot(&a, &b) - kernel::dot_scalar(&a, &b)).abs() <= 1e-3 * dscale);
        let lscale = kernel::l1_scalar(&a, &b).max(1.0);
        prop_assert!((kernel::l1(&a, &b) - kernel::l1_scalar(&a, &b)).abs() <= 1e-3 * lscale);
    }

    #[test]
    fn topk_equals_sort_oracle(dists in prop::collection::vec(0.0f32..1000.0, 1..200), k in 1usize..50) {
        let cands: Vec<Neighbor> =
            dists.iter().enumerate().map(|(i, &d)| Neighbor::new(i, d)).collect();
        let mut top = TopK::new(k);
        for &c in &cands {
            top.push(c);
        }
        prop_assert_eq!(top.into_sorted(), top_k_by_sort(cands, k));
    }

    #[test]
    fn sq8_roundtrip_error_bounded(rows in prop::collection::vec(vec_of(6), 2..40)) {
        let mut data = Vectors::new(6);
        for r in &rows {
            data.push(r).unwrap();
        }
        let sq = ScalarQuantizer::train(&data, SqBits::B8).unwrap();
        let bound = sq.max_component_error() + 1e-4;
        for r in &rows {
            let dec = sq.decode(&sq.encode(r).unwrap());
            for (x, y) in r.iter().zip(&dec) {
                prop_assert!((x - y).abs() <= bound, "{x} vs {y} (bound {bound})");
            }
        }
    }

    #[test]
    fn pq_adc_consistent_with_decode(rows in prop::collection::vec(vec_of(8), 20..60), q in vec_of(8)) {
        let mut data = Vectors::new(8);
        for r in &rows {
            data.push(r).unwrap();
        }
        let pq = ProductQuantizer::train(&data, &PqConfig { m: 2, nbits: 4, train_iters: 4, seed: 1 }).unwrap();
        let table = pq.adc_table(&q).unwrap();
        for r in rows.iter().take(10) {
            let code = pq.encode(r).unwrap();
            let adc = table.distance(&code);
            let direct = kernel::l2_sq(&q, &pq.decode(&code));
            prop_assert!((adc - direct).abs() <= 1e-2 * direct.max(1.0));
        }
    }

    #[test]
    fn bitset_behaves_like_hashset(ops in prop::collection::vec((0usize..200, prop::bool::ANY), 1..150)) {
        let mut bits = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (id, insert) in ops {
            if insert {
                bits.insert(id);
                model.insert(id);
            } else {
                bits.remove(id);
                model.remove(&id);
            }
        }
        prop_assert_eq!(bits.count(), model.len());
        let mut from_bits: Vec<usize> = bits.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_bits.sort_unstable();
        from_model.sort_unstable();
        prop_assert_eq!(from_bits, from_model);
    }

    #[test]
    fn lsm_read_your_writes(ops in prop::collection::vec((0u64..20, prop::bool::ANY, -10.0f32..10.0), 1..80)) {
        let mut lsm = LsmStore::new(2, Metric::Euclidean, LsmConfig { memtable_capacity: 7, max_segments: 2 });
        let mut model: std::collections::HashMap<u64, [f32; 2]> = std::collections::HashMap::new();
        for (key, is_insert, x) in ops {
            if is_insert {
                lsm.insert(key, &[x, -x]).unwrap();
                model.insert(key, [x, -x]);
            } else {
                lsm.delete(key);
                model.remove(&key);
            }
        }
        prop_assert_eq!(lsm.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(lsm.get(*k), Some(&v[..]), "key {}", k);
        }
        // Search returns exactly the live keys.
        let hits = lsm.search(&[0.0, 0.0], 100).unwrap();
        let hit_keys: std::collections::HashSet<u64> = hits.iter().map(|h| h.key).collect();
        prop_assert_eq!(hit_keys, model.keys().copied().collect());
    }

    #[test]
    fn vql_numbers_roundtrip(xs in prop::collection::vec(-1000.0f32..1000.0, 1..12), k in 1usize..50) {
        let literal: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
        let stmt = format!("SEARCH c K {k} NEAR [{}]", literal.join(", "));
        match vdb::parse_vql(&stmt).unwrap() {
            vdb::VqlStatement::Search { vector, k: pk, .. } => {
                prop_assert_eq!(pk, k);
                prop_assert_eq!(vector.len(), xs.len());
                for (a, b) in vector.iter().zip(&xs) {
                    prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0));
                }
            }
            _ => prop_assert!(false, "wrong statement kind"),
        }
    }

    #[test]
    fn flat_search_sorted_unique_and_bounded(rows in prop::collection::vec(vec_of(3), 1..60), q in vec_of(3), k in 1usize..20) {
        let mut data = Vectors::new(3);
        for r in &rows {
            data.push(r).unwrap();
        }
        let n = data.len();
        let idx = vdb_core::FlatIndex::build(data, Metric::Euclidean).unwrap();
        let hits = vdb_core::VectorIndex::search(&idx, &q, k, &vdb_core::SearchParams::default()).unwrap();
        prop_assert_eq!(hits.len(), k.min(n));
        prop_assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        let ids: std::collections::HashSet<usize> = hits.iter().map(|h| h.id).collect();
        prop_assert_eq!(ids.len(), hits.len());
    }
}
