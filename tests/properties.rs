//! Property-based tests over core invariants.
//!
//! These were originally written against an external property-testing
//! crate; to keep the workspace dependency-free they now run as seeded
//! deterministic sweeps over the vendored [`vdb_core::rng::Rng`]. Each
//! test draws many random cases from a fixed seed, so failures reproduce
//! exactly and the suite builds with no network access.

use vdb_core::bitset::BitSet;
use vdb_core::kernel;
use vdb_core::metric::Metric;
use vdb_core::rng::Rng;
use vdb_core::topk::{top_k_by_sort, Neighbor, TopK};
use vdb_core::vector::Vectors;
use vdb_quant::{PqConfig, ProductQuantizer, ScalarQuantizer, SqBits};
use vdb_storage::{LsmConfig, LsmStore};

const CASES: usize = 64;

/// A finite f32 vector with components in `[-100, 100)`.
fn vec_of(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.f32() * 200.0 - 100.0).collect()
}

#[test]
fn true_metrics_satisfy_axioms() {
    let mut rng = Rng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let a = vec_of(&mut rng, 8);
        let b = vec_of(&mut rng, 8);
        let c = vec_of(&mut rng, 8);
        for metric in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
        ] {
            let dab = metric.distance(&a, &b);
            let dba = metric.distance(&b, &a);
            let daa = metric.distance(&a, &a);
            let dac = metric.distance(&a, &c);
            let dcb = metric.distance(&c, &b);
            // Symmetry, identity, non-negativity, triangle inequality
            // (with float slack).
            assert!((dab - dba).abs() <= 1e-3 * dab.abs().max(1.0));
            assert!(daa.abs() < 1e-3);
            assert!(dab >= 0.0);
            assert!(
                dab <= dac + dcb + 1e-2 * (dac + dcb).max(1.0),
                "{}: d(a,b)={dab} > d(a,c)+d(c,b)={}",
                metric.name(),
                dac + dcb
            );
        }
    }
}

#[test]
fn blocked_kernels_match_scalar() {
    let mut rng = Rng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let a = vec_of(&mut rng, 37);
        let b = vec_of(&mut rng, 37);
        let scale = kernel::l2_sq_scalar(&a, &b).max(1.0);
        assert!((kernel::l2_sq(&a, &b) - kernel::l2_sq_scalar(&a, &b)).abs() <= 1e-3 * scale);
        let dscale = kernel::dot_scalar(&a, &b).abs().max(1.0);
        assert!((kernel::dot(&a, &b) - kernel::dot_scalar(&a, &b)).abs() <= 1e-3 * dscale);
        let lscale = kernel::l1_scalar(&a, &b).max(1.0);
        assert!((kernel::l1(&a, &b) - kernel::l1_scalar(&a, &b)).abs() <= 1e-3 * lscale);
    }
}

#[test]
fn topk_equals_sort_oracle() {
    let mut rng = Rng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let n = 1 + rng.below(199);
        let k = 1 + rng.below(49);
        let cands: Vec<Neighbor> = (0..n)
            .map(|i| Neighbor::new(i, rng.f32() * 1000.0))
            .collect();
        let mut top = TopK::new(k);
        for &c in &cands {
            top.push(c);
        }
        assert_eq!(top.into_sorted(), top_k_by_sort(cands, k));
    }
}

#[test]
fn sq8_roundtrip_error_bounded() {
    let mut rng = Rng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let rows: Vec<Vec<f32>> = (0..2 + rng.below(38))
            .map(|_| vec_of(&mut rng, 6))
            .collect();
        let mut data = Vectors::new(6);
        for r in &rows {
            data.push(r).unwrap();
        }
        let sq = ScalarQuantizer::train(&data, SqBits::B8).unwrap();
        let bound = sq.max_component_error() + 1e-4;
        for r in &rows {
            let dec = sq.decode(&sq.encode(r).unwrap());
            for (x, y) in r.iter().zip(&dec) {
                assert!((x - y).abs() <= bound, "{x} vs {y} (bound {bound})");
            }
        }
    }
}

#[test]
fn pq_adc_consistent_with_decode() {
    let mut rng = Rng::seed_from_u64(0xA5);
    for _ in 0..16 {
        let rows: Vec<Vec<f32>> = (0..20 + rng.below(40))
            .map(|_| vec_of(&mut rng, 8))
            .collect();
        let q = vec_of(&mut rng, 8);
        let mut data = Vectors::new(8);
        for r in &rows {
            data.push(r).unwrap();
        }
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                m: 2,
                nbits: 4,
                train_iters: 4,
                seed: 1,
            },
        )
        .unwrap();
        let table = pq.adc_table(&q).unwrap();
        // The reusable-table path must agree with the allocating one.
        let mut reused = vdb_quant::AdcTable::default();
        pq.adc_table_into(&q, &mut reused).unwrap();
        for r in rows.iter().take(10) {
            let code = pq.encode(r).unwrap();
            let adc = table.distance(&code);
            let direct = kernel::l2_sq(&q, &pq.decode(&code));
            assert!((adc - direct).abs() <= 1e-2 * direct.max(1.0));
            assert_eq!(adc, reused.distance(&code));
        }
    }
}

#[test]
fn bitset_behaves_like_hashset() {
    let mut rng = Rng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let mut bits = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for _ in 0..1 + rng.below(149) {
            let id = rng.below(200);
            if rng.below(2) == 0 {
                bits.insert(id);
                model.insert(id);
            } else {
                bits.remove(id);
                model.remove(&id);
            }
        }
        assert_eq!(bits.count(), model.len());
        let mut from_bits: Vec<usize> = bits.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_bits.sort_unstable();
        from_model.sort_unstable();
        assert_eq!(from_bits, from_model);
    }
}

#[test]
fn lsm_read_your_writes() {
    let mut rng = Rng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let mut lsm = LsmStore::new(
            2,
            Metric::Euclidean,
            LsmConfig {
                memtable_capacity: 7,
                max_segments: 2,
            },
        );
        let mut model: std::collections::HashMap<u64, [f32; 2]> = std::collections::HashMap::new();
        for _ in 0..1 + rng.below(79) {
            let key = rng.below(20) as u64;
            let x = rng.f32() * 20.0 - 10.0;
            if rng.below(2) == 0 {
                lsm.insert(key, &[x, -x]).unwrap();
                model.insert(key, [x, -x]);
            } else {
                lsm.delete(key);
                model.remove(&key);
            }
        }
        assert_eq!(lsm.len(), model.len());
        for (k, v) in &model {
            assert_eq!(lsm.get(*k), Some(&v[..]), "key {k}");
        }
        // Search returns exactly the live keys.
        let hits = lsm.search(&[0.0, 0.0], 100).unwrap();
        let hit_keys: std::collections::HashSet<u64> = hits.iter().map(|h| h.key).collect();
        assert_eq!(hit_keys, model.keys().copied().collect());
    }
}

#[test]
fn vql_numbers_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xA8);
    for _ in 0..CASES {
        let xs: Vec<f32> = (0..1 + rng.below(11))
            .map(|_| rng.f32() * 2000.0 - 1000.0)
            .collect();
        let k = 1 + rng.below(49);
        let literal: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
        let stmt = format!("SEARCH c K {k} NEAR [{}]", literal.join(", "));
        match vdb::parse_vql(&stmt).unwrap() {
            vdb::VqlStatement::Search { vector, k: pk, .. } => {
                assert_eq!(pk, k);
                assert_eq!(vector.len(), xs.len());
                for (a, b) in vector.iter().zip(&xs) {
                    assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0));
                }
            }
            _ => panic!("wrong statement kind"),
        }
    }
}

#[test]
fn flat_search_sorted_unique_and_bounded() {
    let mut rng = Rng::seed_from_u64(0xA9);
    for _ in 0..CASES {
        let rows: Vec<Vec<f32>> = (0..1 + rng.below(59))
            .map(|_| vec_of(&mut rng, 3))
            .collect();
        let q = vec_of(&mut rng, 3);
        let k = 1 + rng.below(19);
        let mut data = Vectors::new(3);
        for r in &rows {
            data.push(r).unwrap();
        }
        let n = data.len();
        let idx = vdb_core::FlatIndex::build(data, Metric::Euclidean).unwrap();
        let hits =
            vdb_core::VectorIndex::search(&idx, &q, k, &vdb_core::SearchParams::default()).unwrap();
        assert_eq!(hits.len(), k.min(n));
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        let ids: std::collections::HashSet<usize> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids.len(), hits.len());
    }
}
