//! Distributed-vs-single-node consistency: scatter-gather over exact
//! shards must equal a single exact index, regardless of shard count or
//! partitioning policy.

use vdb_core::{dataset, FlatIndex, Metric, Rng, SearchParams, VectorIndex, Vectors};
use vdb_distributed::{DistributedConfig, DistributedIndex, PartitionPolicy};

fn flat_builder(v: Vectors, m: Metric) -> vdb_core::Result<Box<dyn VectorIndex>> {
    Ok(Box::new(FlatIndex::build(v, m)?))
}

#[test]
fn full_fanout_equals_single_node_for_all_configs() {
    let mut rng = Rng::seed_from_u64(4000);
    let data = dataset::clustered(1500, 12, 8, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 10, 0.05, &mut rng);
    let single = FlatIndex::build(data.clone(), Metric::Euclidean).unwrap();
    let params = SearchParams::default();

    for policy in [PartitionPolicy::Uniform, PartitionPolicy::IndexGuided] {
        for shards in [1usize, 3, 8] {
            let cfg = DistributedConfig {
                n_shards: shards,
                replicas: 1,
                policy,
                probe_shards: None,
                seed: 42,
                hedge_delay: None,
            };
            let d = DistributedIndex::build(&data, Metric::Euclidean, cfg, &flat_builder).unwrap();
            for q in queries.iter() {
                let got = d.search(q, 10, &params).unwrap();
                let expect = single.search(q, 10, &params).unwrap();
                assert_eq!(
                    got.iter().map(|n| n.id).collect::<Vec<_>>(),
                    expect.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "policy {policy:?} shards {shards}"
                );
            }
        }
    }
}

#[test]
fn replication_does_not_change_results() {
    let mut rng = Rng::seed_from_u64(4001);
    let data = dataset::gaussian(800, 8, &mut rng);
    let queries = dataset::split_queries(&data, 8, 0.05, &mut rng);
    let mut cfg = DistributedConfig::uniform(4);
    cfg.replicas = 3;
    let d = DistributedIndex::build(&data, Metric::Euclidean, cfg, &flat_builder).unwrap();
    let params = SearchParams::default();
    // Repeated searches rotate replicas; results must be identical.
    for q in queries.iter() {
        let first = d.search(q, 5, &params).unwrap();
        for _ in 0..5 {
            assert_eq!(d.search(q, 5, &params).unwrap(), first);
        }
    }
}

#[test]
fn routed_probing_recall_grows_with_probes() {
    let mut rng = Rng::seed_from_u64(4002);
    let c = dataset::clustered(2000, 12, 16, 0.4, &mut rng);
    let queries = dataset::split_queries(&c.vectors, 20, 0.05, &mut rng);
    let gt = vdb_core::recall::GroundTruth::compute(&c.vectors, &queries, Metric::Euclidean, 10)
        .unwrap();
    let params = SearchParams::default();
    let mut last = 0.0;
    for probe in [1usize, 2, 4, 8] {
        let d = DistributedIndex::build(
            &c.vectors,
            Metric::Euclidean,
            DistributedConfig::index_guided(8, probe),
            &flat_builder,
        )
        .unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|q| d.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(
            r >= last - 0.02,
            "probe={probe}: recall {r} dropped from {last}"
        );
        last = r;
    }
    assert!((last - 1.0).abs() < 1e-9, "probing all shards is exact");
}
