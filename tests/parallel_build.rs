//! Parallel-construction guarantees (DESIGN.md §7): deterministic builds
//! are bit-identical to the historical serial path, parallel builds are
//! recall-equivalent, and the bit-stable families stay bit-stable at any
//! thread count.

use vdb::{Collection, CollectionConfig, CollectionSchema, IndexSpec};
use vdb_core::recall::GroundTruth;
use vdb_core::{dataset, BuildOptions, Metric, Neighbor, Rng, SearchParams, VectorIndex, Vectors};
use vdb_distributed::{DistributedConfig, DistributedIndex};

fn dataset_and_queries() -> (Vectors, Vectors, GroundTruth) {
    let mut rng = Rng::seed_from_u64(7100);
    let data = dataset::clustered(2000, 16, 12, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
    let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
    (data, queries, gt)
}

fn params() -> SearchParams {
    SearchParams::default()
        .with_beam_width(128)
        .with_nprobe(16)
        .with_max_leaf_points(800)
        .with_rerank(128)
}

fn results_of(index: &dyn VectorIndex, queries: &Vectors) -> Vec<Vec<Neighbor>> {
    queries
        .iter()
        .map(|q| index.search(q, 10, &params()).unwrap())
        .collect()
}

/// Bitwise comparison of two result sets (ids and distance bits).
fn assert_bit_identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: query count");
    for (qi, (ra, rb)) in a.iter().zip(b).enumerate() {
        let ka: Vec<(usize, u32)> = ra.iter().map(|n| (n.id, n.dist.to_bits())).collect();
        let kb: Vec<(usize, u32)> = rb.iter().map(|n| (n.id, n.dist.to_bits())).collect();
        assert_eq!(ka, kb, "{what}: query {qi} diverged");
    }
}

/// `deterministic: true` must force the historical serial path for every
/// family in the registry, regardless of the configured thread count.
#[test]
fn deterministic_flag_reproduces_serial_build_for_every_family() {
    let (data, queries, _) = dataset_and_queries();
    let det = BuildOptions {
        threads: 8,
        deterministic: true,
    };
    for spec in IndexSpec::all_defaults() {
        let serial = spec.build(data.clone(), Metric::Euclidean).unwrap();
        let forced = spec
            .build_with(data.clone(), Metric::Euclidean, &det)
            .unwrap();
        assert_bit_identical(
            &results_of(&*serial, &queries),
            &results_of(&*forced, &queries),
            spec.name(),
        );
    }
}

/// Forests pre-fork one RNG per tree in tree order, so they are
/// bit-identical to the serial build at ANY thread count.
#[test]
fn forest_parallel_builds_are_bit_identical() {
    let (data, queries, _) = dataset_and_queries();
    for name in ["rp_forest", "annoy", "flann"] {
        let spec = IndexSpec::parse(name).unwrap();
        let serial = spec.build(data.clone(), Metric::Euclidean).unwrap();
        for threads in [2, 4, 8] {
            let par = spec
                .build_with(
                    data.clone(),
                    Metric::Euclidean,
                    &BuildOptions::with_threads(threads),
                )
                .unwrap();
            assert_bit_identical(
                &results_of(&*serial, &queries),
                &results_of(&*par, &queries),
                &format!("{name}@{threads}"),
            );
        }
    }
}

/// Parallel builds of every family must be recall-equivalent to serial:
/// the graph insert order and k-means reduction order may differ, but
/// search quality must not.
#[test]
fn parallel_builds_are_recall_equivalent() {
    let (data, queries, gt) = dataset_and_queries();
    for name in [
        "ivf_flat", "ivf_sq", "ivf_pq", "knng", "nsw", "hnsw", "nsg", "vamana",
    ] {
        let spec = IndexSpec::parse(name).unwrap();
        let serial = spec.build(data.clone(), Metric::Euclidean).unwrap();
        let par = spec
            .build_with(
                data.clone(),
                Metric::Euclidean,
                &BuildOptions::with_threads(4),
            )
            .unwrap();
        let rs = gt.recall_batch(&results_of(&*serial, &queries));
        let rp = gt.recall_batch(&results_of(&*par, &queries));
        // Asymmetric: the parallel build may converge *better* (NN-descent
        // sees fresher neighbors across chunks), it just must not be worse.
        assert!(
            rp >= rs - 0.03,
            "{name}: serial recall {rs} vs parallel recall {rp}"
        );
        assert_eq!(par.len(), data.len(), "{name}: parallel build lost rows");
    }
}

/// Repeated 8-thread HNSW builds: no deadlocks, no lost nodes, stable
/// quality across runs (exercises the per-node locking under contention).
#[test]
fn repeated_parallel_hnsw_stress() {
    let (data, queries, gt) = dataset_and_queries();
    let spec = IndexSpec::parse("hnsw").unwrap();
    for round in 0..3 {
        let idx = spec
            .build_with(
                data.clone(),
                Metric::Euclidean,
                &BuildOptions::with_threads(8),
            )
            .unwrap();
        assert_eq!(idx.len(), data.len(), "round {round}: lost rows");
        let r = gt.recall_batch(&results_of(&*idx, &queries));
        assert!(r > 0.85, "round {round}: recall {r}");
    }
}

/// Distributed per-shard builds fan out across threads; with a
/// deterministic per-shard builder the deployment is bit-identical to
/// the serial scatter order.
#[test]
fn distributed_parallel_shard_builds_match_serial() {
    let (data, queries, _) = dataset_and_queries();
    let builder = |v: Vectors, m: Metric| {
        Ok(Box::new(vdb_core::FlatIndex::build(v, m)?) as Box<dyn VectorIndex>)
    };
    let mut cfg = DistributedConfig::uniform(4);
    cfg.replicas = 2;
    let serial = DistributedIndex::build(&data, Metric::Euclidean, cfg.clone(), &builder).unwrap();
    let par = DistributedIndex::build_with(
        &data,
        Metric::Euclidean,
        cfg,
        &builder,
        &BuildOptions::with_threads(8),
    )
    .unwrap();
    assert_eq!(serial.shard_sizes(), par.shard_sizes());
    let p = SearchParams::default();
    for q in queries.iter() {
        let a = serial.search(q, 10, &p).unwrap();
        let b = par.search(q, 10, &p).unwrap();
        assert_bit_identical(&[a], &[b], "distributed");
    }
}

/// The facade opt-in: a collection configured with parallel build
/// options rebuilds its main index on merge and keeps serving correctly.
#[test]
fn collection_merge_with_parallel_build_options() {
    let (data, queries, gt) = dataset_and_queries();
    let mut c = Collection::create(
        CollectionSchema::new("par", 16, Metric::Euclidean),
        CollectionConfig {
            index: IndexSpec::parse("hnsw").unwrap(),
            merge_threshold: 100_000, // merge manually below
            build: BuildOptions::with_threads(4),
            ..Default::default()
        },
    )
    .unwrap();
    for (i, row) in data.iter().enumerate() {
        c.insert(i as u64, row, &[]).unwrap();
    }
    c.merge().unwrap();
    assert_eq!(c.stats().index_name, "hnsw");
    let results: Vec<Vec<Neighbor>> = queries
        .iter()
        .map(|q| {
            c.search(q, 10, &params())
                .unwrap()
                .into_iter()
                .map(|h| Neighbor::new(h.key as usize, h.dist))
                .collect()
        })
        .collect();
    let r = gt.recall_batch(&results);
    assert!(r > 0.85, "recall through facade {r}");
}
