//! Acceptance suite for the hybrid text + vector subsystem (DESIGN.md
//! §15): BM25 scans against a naive reference, block-max skipping
//! equivalence, predicate-respecting deterministic fusion, freshness
//! through background merges, and distributed fusion parity.

use vdb::{
    CollectionSchema, Fusion, HybridResult, HybridStrategy, IndexSpec, SystemProfile, Vdbms,
};
use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::{Metric, Rng, SearchParams};
use vdb_distributed::ClusterManifest;
use vdb_query::{bm25_score, Predicate, TextHit, TextIndex};
use vdb_server::{serve, ClusterClient, ServerConfig};

/// Small vocabulary with skewed frequencies: early words are common
/// (stopword-like load), late words are rare (high idf).
const VOCAB: [&str; 20] = [
    "system", "index", "vector", "query", "data", "search", "graph", "disk", "cache", "merge",
    "quantize", "recall", "filter", "shard", "replica", "wand", "bm25", "fusion", "saffron",
    "glacier",
];

/// Zipf-ish document: common words drawn often, rare words rarely.
fn synth_text(rng: &mut Rng, len: usize) -> String {
    let words: Vec<&str> = (0..len)
        .map(|_| {
            // Square the draw so low indices (common words) dominate.
            let u = rng.f64();
            let i = ((u * u) * VOCAB.len() as f64) as usize;
            VOCAB[i.min(VOCAB.len() - 1)]
        })
        .collect();
    words.join(" ")
}

fn corpus(rng: &mut Rng, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let len = 4 + rng.below(12);
            synth_text(rng, len)
        })
        .collect()
}

const QUERIES: [&str; 6] = [
    "vector index",
    "glacier",
    "bm25 fusion recall",
    "the of and", // all stopwords
    "saffron glacier wand quantize",
    "data data data system", // duplicate terms
];

/// Naive BM25 reference: score every document via the public
/// [`bm25_score`] building blocks, sort by (score desc, doc asc) — the
/// index's own tie order — and truncate.
fn naive_topk(ix: &TextIndex, query: &str, k: usize) -> Vec<TextHit> {
    let terms = ix.query_terms(query);
    if terms.is_empty() {
        return Vec::new();
    }
    let stats = ix.corpus_stats(&terms);
    let mut hits: Vec<TextHit> = (0..ix.n_docs() as u32)
        .map(|doc| TextHit {
            doc,
            score: bm25_score(&terms, &ix.tf_vector(doc, &terms), ix.doc_len(doc), &stats),
        })
        .filter(|h| h.score > 0.0)
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(k);
    hits
}

#[test]
fn bm25_topk_matches_naive_reference() {
    let mut rng = Rng::seed_from_u64(71);
    let mut ix = TextIndex::new();
    for d in corpus(&mut rng, 500) {
        ix.push_doc(&d);
    }
    for query in QUERIES {
        for k in [1, 3, 10, 50] {
            let got = ix.search(query, k);
            let want = naive_topk(&ix, query, k);
            assert_eq!(got, want, "query {query:?} k={k}");
        }
    }
}

#[test]
fn block_max_skipping_is_bit_identical_to_exhaustive() {
    let mut rng = Rng::seed_from_u64(72);
    // Big enough that every common term spans many posting blocks.
    let mut ix = TextIndex::new();
    for d in corpus(&mut rng, 3000) {
        ix.push_doc(&d);
    }
    for query in QUERIES {
        let terms = ix.query_terms(query);
        for k in [1, 5, 10, 100] {
            assert_eq!(
                ix.search_terms(&terms, k, true),
                ix.search_terms(&terms, k, false),
                "query {query:?} k={k}: skipping changed the result"
            );
        }
    }
}

/// Text-indexed collection fixture: `n` docs, synthetic text, a `tag`
/// attribute alternating even/odd for predicate tests.
fn text_db(n: usize, seed: u64) -> Vdbms {
    let mut db = Vdbms::new(SystemProfile::MostlyMixed);
    db.create_collection(
        CollectionSchema::new("docs", 4, Metric::Euclidean)
            .column("tag", AttrType::Str)
            .column("body", AttrType::Str)
            .text_index("body"),
        IndexSpec::Flat,
    )
    .unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    let col = db.collection_mut("docs").unwrap();
    for i in 0..n as u64 {
        let tag = if i % 2 == 0 { "even" } else { "odd" };
        let len = 4 + rng.below(12);
        let body = synth_text(&mut rng, len);
        let v = [i as f32, (i % 7) as f32, 0.0, 1.0];
        col.insert(
            i,
            &v,
            &[("tag", tag.into()), ("body", AttrValue::Str(body))],
        )
        .unwrap();
    }
    db
}

#[test]
fn fusion_respects_predicates_and_is_deterministic_across_threads() {
    let db = text_db(300, 73);
    let col = db.collection("docs").unwrap();
    let params = SearchParams::default();
    let pred = Predicate::eq("tag", "even");
    for fusion in [Fusion::Rrf { k0: 60 }, Fusion::Convex { alpha: 0.7 }] {
        for strategy in [
            Some(HybridStrategy::TextFirst),
            Some(HybridStrategy::VectorFirst),
            Some(HybridStrategy::Fused),
            None,
        ] {
            let run = || {
                col.hybrid_text_search(
                    &[40.0, 3.0, 0.0, 1.0],
                    "vector index recall",
                    10,
                    &pred,
                    fusion,
                    strategy,
                    &params,
                )
                .unwrap()
            };
            let baseline = run();
            assert!(!baseline.hits.is_empty(), "{fusion:?}/{strategy:?}");
            for h in &baseline.hits {
                assert_eq!(h.key % 2, 0, "{fusion:?}/{strategy:?}: predicate violated");
            }
            // Fused scores must be monotone non-increasing in rank.
            for w in baseline.hits.windows(2) {
                assert!(w[0].fused >= w[1].fused, "{fusion:?}/{strategy:?}");
            }
            // Determinism: eight concurrent threads, bit-identical results.
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let baseline = &baseline;
                    let run = &run;
                    s.spawn(move || assert_eq!(&run(), baseline));
                }
            });
        }
    }
}

/// The inverted index stays queryable and exact while the LSM buffer
/// drains through background merges: after every row is merged, hybrid
/// results equal those of a collection that never buffered at all.
#[test]
fn inverted_index_stays_queryable_through_background_merge() {
    use vdb::{Collection, CollectionConfig, MergeMode};
    let schema = || {
        CollectionSchema::new("docs", 4, Metric::Euclidean)
            .column("body", AttrType::Str)
            .text_index("body")
    };
    let mut rng = Rng::seed_from_u64(74);
    let rows: Vec<(u64, [f32; 4], String)> = (0..200)
        .map(|i| {
            (i, [i as f32, (i % 5) as f32, 0.0, 1.0], {
                let len = 4 + rng.below(12);
                synth_text(&mut rng, len)
            })
        })
        .collect();
    let rows_len = rows.len();

    let mut bg = Collection::create(
        schema(),
        CollectionConfig {
            index: IndexSpec::Flat,
            merge_threshold: 16,
            merge_mode: MergeMode::Background,
            ..Default::default()
        },
    )
    .unwrap();
    let mut reference = Collection::create(
        schema(),
        CollectionConfig {
            index: IndexSpec::Flat,
            ..Default::default()
        },
    )
    .unwrap();

    let params = SearchParams::default();
    // k = row count: both retrievers pool the full corpus, so the fused
    // ranking is exactly comparable across merge histories. (With a
    // truncated pool, ties at the pool boundary may resolve by row
    // order, which differs between chunked and bulk merges.)
    let query = |c: &Collection| {
        c.hybrid_text_search(
            &[60.0, 2.0, 0.0, 1.0],
            "vector recall bm25",
            rows_len,
            &Predicate::True,
            Fusion::Rrf { k0: 60 },
            Some(HybridStrategy::Fused),
            &params,
        )
        .unwrap()
    };
    for (key, v, body) in &rows {
        loop {
            match bg.insert(*key, v, &[("body", AttrValue::Str(body.clone()))]) {
                Ok(()) => break,
                Err(vdb_core::Error::Busy) => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                Err(e) => panic!("insert: {e}"),
            }
        }
        reference
            .insert(*key, v, &[("body", AttrValue::Str(body.clone()))])
            .unwrap();
        // Interleave queries with merges in flight; results must never
        // error and every hit must be a live key (read-your-writes view
        // may lag text stats, never the candidate set).
        if key % 17 == 0 {
            let r = query(&bg);
            assert!(r.hits.iter().all(|h| h.key <= *key));
            for w in r.hits.windows(2) {
                assert!(w[0].fused >= w[1].fused, "mid-merge ranking not monotone");
            }
        }
    }
    bg.merge().unwrap(); // drain the tail; waits out the worker
    reference.merge().unwrap();
    assert_eq!(bg.stats().buffered, 0);
    assert!(bg.stats().merges > 0, "background worker never merged");
    assert_eq!(query(&bg), query(&reference));
}

/// Distributed fused search equals a single node holding the whole
/// corpus: disjoint shards ship integer text evidence, the coordinator
/// re-scores under summed global stats, and — with candidate pools deep
/// enough to cover the corpus — the fused ranking is bit-identical.
#[test]
fn distributed_fused_search_equals_single_node_fusion() {
    let n = 24;
    let single = text_db(n, 75);

    // Same rows split across two shards by key parity (manifest routing).
    let mut shard_dbs = [
        Vdbms::new(SystemProfile::MostlyMixed),
        Vdbms::new(SystemProfile::MostlyMixed),
    ];
    let mut rng = Rng::seed_from_u64(75);
    for db in &mut shard_dbs {
        db.create_collection(
            CollectionSchema::new("docs", 4, Metric::Euclidean)
                .column("tag", AttrType::Str)
                .column("body", AttrType::Str)
                .text_index("body"),
            IndexSpec::Flat,
        )
        .unwrap();
    }
    for i in 0..n as u64 {
        let tag = if i % 2 == 0 { "even" } else { "odd" };
        let len = 4 + rng.below(12);
        let body = synth_text(&mut rng, len);
        let v = [i as f32, (i % 7) as f32, 0.0, 1.0];
        shard_dbs[(i % 2) as usize]
            .collection_mut("docs")
            .unwrap()
            .insert(
                i,
                &v,
                &[("tag", tag.into()), ("body", AttrValue::Str(body))],
            )
            .unwrap();
    }
    let [db_a, db_b] = shard_dbs;
    let a = serve(db_a, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let b = serve(db_b, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let manifest = ClusterManifest::new("docs", 2, &[a_addr.clone(), b_addr.clone()]).unwrap();
    a.set_cluster(a_addr.clone(), manifest.clone());
    b.set_cluster(b_addr, manifest);
    let cluster = ClusterClient::connect(&a_addr, "docs").unwrap();

    let params = SearchParams::default();
    let qv = [11.0, 4.0, 0.0, 1.0];
    // k = n: every shard ships its full corpus, so the coordinator's
    // candidate pool equals the single node's and equality is exact,
    // not merely top-k-overlapping.
    for fusion in [Fusion::Rrf { k0: 60 }, Fusion::Convex { alpha: 0.6 }] {
        for query in ["vector index recall", "glacier saffron", "data system"] {
            let want: HybridResult = single
                .collection("docs")
                .unwrap()
                .hybrid_text_search(
                    &qv,
                    query,
                    n,
                    &Predicate::True,
                    fusion,
                    Some(HybridStrategy::Fused),
                    &params,
                )
                .unwrap();
            let got = cluster
                .hybrid_search(&qv, query, n, fusion, Some(HybridStrategy::Fused), &params)
                .unwrap();
            assert_eq!(got.stats, want.stats, "{fusion:?} {query:?}: global stats");
            assert_eq!(got.hits, want.hits, "{fusion:?} {query:?}: fused ranking");
            assert_eq!(got.strategy, want.strategy, "{fusion:?} {query:?}");
        }
    }
    a.shutdown();
    b.shutdown();
}
