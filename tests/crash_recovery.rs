//! Crash-fault-injection harness: for EVERY injectable durable step in
//! insert / delete / merge / checkpoint, simulate a process crash at
//! that step, recover from disk, and assert the collection's logical
//! state (keys, vectors, AND attributes) equals exactly the pre-op or
//! post-op state — never a torn intermediate.
//!
//! The crash model is a process kill: bytes already handed to the OS
//! survive, the step that fires leaves a torn half-write, and every
//! later durable step in the same "process" fails until `disarm()`
//! (the dead process never runs again). `failpoint::count_crash_points`
//! first counts how many injectable steps an operation performs; the
//! sweep then re-runs the operation once per step with that step armed.

use vdb::{Collection, CollectionConfig, CollectionSchema, IndexSpec, MergeMode};
use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::error::Result;
use vdb_core::parallel::BuildOptions;
use vdb_core::{Metric, SearchParams};
use vdb_query::{PlannerMode, Predicate};
use vdb_storage::{failpoint, TempDir};

/// Logical collection state: sorted (key, vector, attributes) rows.
type State = Vec<(u64, Vec<f32>, Vec<(String, AttrValue)>)>;

fn dump(c: &Collection) -> State {
    c.keys()
        .into_iter()
        .map(|k| {
            (
                k,
                c.get(k).expect("live key has a vector"),
                c.get_attrs(k).expect("live key has attributes"),
            )
        })
        .collect()
}

fn schema() -> CollectionSchema {
    CollectionSchema::new("crash", 4, Metric::Euclidean)
        .column("tag", AttrType::Str)
        .column("score", AttrType::Int)
}

fn cfg(dir: &TempDir, merge_threshold: usize) -> CollectionConfig {
    cfg_mode(dir, merge_threshold, MergeMode::Blocking)
}

fn cfg_mode(dir: &TempDir, merge_threshold: usize, merge_mode: MergeMode) -> CollectionConfig {
    CollectionConfig {
        index: IndexSpec::Flat,
        merge_threshold,
        merge_mode,
        planner: PlannerMode::CostBased,
        wal_dir: Some(dir.path().to_path_buf()),
        build: BuildOptions::serial(),
        ..Default::default()
    }
}

fn vec_at(x: f32) -> Vec<f32> {
    vec![x, x * 0.5, 0.0, 1.0]
}

fn insert_n(c: &mut Collection, n: u64) {
    for i in 0..n {
        let tag = if i % 2 == 0 { "even" } else { "odd" };
        c.insert(
            i,
            &vec_at(i as f32),
            &[("tag", tag.into()), ("score", (i as i64).into())],
        )
        .unwrap();
    }
}

/// Exhaustive sweep: build the pre-op reference state and the post-op
/// reference state on scratch directories, count the operation's
/// injectable steps, then for each step N crash at N, recover, and
/// require the recovered state to be exactly `pre` or exactly `post`.
fn sweep(
    name: &str,
    threshold: usize,
    setup: impl Fn(&mut Collection),
    op: impl Fn(&mut Collection) -> Result<()>,
) {
    sweep_mode(name, threshold, MergeMode::Blocking, setup, op)
}

/// Same sweep under a chosen merge mode. Background/Incremental sweeps
/// keep the threshold above the row count so the maintenance worker is
/// never nudged: `merge()` then runs inline on the test thread, where
/// the thread-local failpoints are armed, making every crash point
/// deterministic.
fn sweep_mode(
    name: &str,
    threshold: usize,
    mode: MergeMode,
    setup: impl Fn(&mut Collection),
    op: impl Fn(&mut Collection) -> Result<()>,
) {
    // Reference run (failpoints off): pre- and post-op states.
    let refdir = TempDir::new("crash-ref").unwrap();
    let mut c = Collection::create(schema(), cfg_mode(&refdir, threshold, mode)).unwrap();
    setup(&mut c);
    let pre = dump(&c);
    op(&mut c).expect("reference op must succeed");
    let post = dump(&c);

    // Count injectable steps (Counting mode: hits increment, never fire).
    let countdir = TempDir::new("crash-count").unwrap();
    let mut c = Collection::create(schema(), cfg_mode(&countdir, threshold, mode)).unwrap();
    setup(&mut c);
    let (res, points) = failpoint::count_crash_points(|| op(&mut c));
    res.expect("counting run must succeed");
    assert!(points > 0, "{name}: op performed no durable steps");
    drop(c);

    for n in 1..=points {
        let dir = TempDir::new("crash-sweep").unwrap();
        let conf = cfg_mode(&dir, threshold, mode);
        let mut c = Collection::create(schema(), conf.clone()).unwrap();
        setup(&mut c);
        failpoint::arm(n);
        let err = op(&mut c);
        failpoint::disarm();
        let err = err.expect_err("armed op must report the crash");
        assert!(
            failpoint::is_crash(&err),
            "{name}[{n}/{points}]: unexpected error kind: {err}"
        );
        drop(c); // the dead process: nothing else reaches disk

        let r = Collection::recover(schema(), conf)
            .unwrap_or_else(|e| panic!("{name}[{n}/{points}]: recovery failed: {e}"));
        let got = dump(&r);
        assert!(
            got == pre || got == post,
            "{name}[{n}/{points}]: recovered state is neither pre- nor \
             post-op\n  pre:  {pre:?}\n  post: {post:?}\n  got:  {got:?}"
        );
    }
}

#[test]
fn crash_sweep_insert_fresh_key() {
    sweep(
        "insert-fresh",
        100,
        |c| insert_n(c, 5),
        |c| {
            c.insert(
                42,
                &vec_at(42.0),
                &[("tag", "new".into()), ("score", 42i64.into())],
            )
        },
    );
}

#[test]
fn crash_sweep_insert_overwrites_buffered_key() {
    sweep(
        "insert-overwrite-buffered",
        100,
        |c| insert_n(c, 5),
        |c| c.insert(2, &vec_at(99.0), &[("tag", "updated".into())]),
    );
}

#[test]
fn crash_sweep_insert_overwrites_merged_key() {
    // Setup crosses the merge threshold, so key 3 lives in the merged
    // main part; the op shadows it through the buffer.
    sweep(
        "insert-overwrite-main",
        8,
        |c| insert_n(c, 8),
        |c| c.insert(3, &vec_at(77.0), &[("score", 77i64.into())]),
    );
}

#[test]
fn crash_sweep_delete_buffered_key() {
    sweep("delete-buffered", 100, |c| insert_n(c, 5), |c| c.delete(1));
}

#[test]
fn crash_sweep_delete_merged_key() {
    sweep("delete-main", 8, |c| insert_n(c, 8), |c| c.delete(3));
}

#[test]
fn crash_sweep_insert_that_triggers_merge() {
    // The 8th insert crosses the threshold: WAL append + sync, then the
    // full checkpoint (snapshot sections, sync, rename, directory sync,
    // WAL truncate, WAL sync) all run inside one op.
    sweep(
        "insert-triggers-merge",
        8,
        |c| insert_n(c, 7),
        |c| {
            c.insert(
                7,
                &vec_at(7.0),
                &[("tag", "odd".into()), ("score", 7i64.into())],
            )
        },
    );
}

#[test]
fn crash_sweep_explicit_merge() {
    // Merge is logically a no-op (pre == post), so this sweep checks
    // that no checkpoint step can corrupt or lose state.
    sweep(
        "merge",
        1000,
        |c| {
            insert_n(c, 10);
            c.delete(4).unwrap();
        },
        |c| c.merge(),
    );
}

#[test]
fn crash_sweep_insert_with_background_merge_enabled() {
    // Background mode must not change insert durability: the WAL append
    // is the only durable step, and a crash there loses exactly the one
    // unacknowledged row.
    sweep_mode(
        "insert-background",
        1000,
        MergeMode::Background,
        |c| insert_n(c, 5),
        |c| {
            c.insert(
                42,
                &vec_at(42.0),
                &[("tag", "new".into()), ("score", 42i64.into())],
            )
        },
    );
}

#[test]
fn crash_sweep_explicit_merge_with_background_merge_enabled() {
    // The same rebuild cycle the maintenance worker runs, driven inline
    // so every checkpoint step can be crashed deterministically.
    sweep_mode(
        "merge-background",
        1000,
        MergeMode::Background,
        |c| {
            insert_n(c, 10);
            c.delete(4).unwrap();
        },
        |c| c.merge(),
    );
}

#[test]
fn crash_sweep_delete_with_background_merge_enabled() {
    sweep_mode(
        "delete-background",
        1000,
        MergeMode::Background,
        |c| insert_n(c, 6),
        |c| c.delete(3),
    );
}

#[test]
fn crash_sweep_incremental_merge_over_existing_index() {
    // Incremental mode patches the published index in place, then makes
    // the result durable (snapshot + WAL reset). A crash between
    // publication and checkpoint must recover from the OLD snapshot plus
    // the full WAL — same logical state, different physical path.
    sweep_mode(
        "merge-incremental",
        1000,
        MergeMode::Incremental,
        |c| {
            insert_n(c, 10);
            c.merge().unwrap(); // first merge: full build seeds the index
            c.insert(20, &vec_at(20.0), &[("tag", "late".into())])
                .unwrap();
            c.insert(3, &vec_at(33.0), &[("tag", "shadow".into())])
                .unwrap();
            c.delete(7).unwrap();
        },
        |c| c.merge(),
    );
}

#[test]
fn crash_sweep_checkpoint_over_existing_snapshot() {
    // A second checkpoint replaces an existing snapshot file: the
    // rename must atomically swap old for new at every crash point.
    sweep(
        "checkpoint-replace",
        1000,
        |c| {
            insert_n(c, 6);
            c.checkpoint().unwrap();
            c.insert(50, &vec_at(50.0), &[("tag", "post-ckpt".into())])
                .unwrap();
            c.delete(0).unwrap();
        },
        |c| c.checkpoint(),
    );
}

#[test]
fn hybrid_query_after_crash_replays_attributes() {
    // Satellite regression: crash mid-insert after a batch of hybrid
    // inserts, recover, and run a predicate query — the WAL must have
    // carried the attributes (a vector-only log would return rows the
    // predicate should exclude, or none at all).
    let dir = TempDir::new("crash-hybrid").unwrap();
    let conf = cfg(&dir, 100);
    let mut c = Collection::create(schema(), conf.clone()).unwrap();
    insert_n(&mut c, 10);
    failpoint::arm(1); // torn WAL append on the next insert
    let err = c.insert(99, &vec_at(99.0), &[("tag", "lost".into())]);
    failpoint::disarm();
    assert!(failpoint::is_crash(&err.unwrap_err()));
    drop(c);

    let r = Collection::recover(schema(), conf).unwrap();
    assert_eq!(r.len(), 10, "torn final insert must not survive");
    let pred = Predicate::eq("tag", "even");
    let hits = r
        .search_hybrid(&vec_at(4.0), 5, &pred, &SearchParams::default(), None)
        .unwrap();
    assert_eq!(hits.len(), 5);
    assert!(
        hits.iter().all(|h| h.key % 2 == 0),
        "predicate must see recovered attributes: {hits:?}"
    );
    for h in &hits {
        let attrs = r.get_attrs(h.key).unwrap();
        assert_eq!(attrs[0].1, AttrValue::Str("even".into()));
        assert_eq!(attrs[1].1, AttrValue::Int(h.key as i64));
    }
}

#[test]
fn wal_replays_only_post_checkpoint_tail() {
    // Acceptance criterion: after a merge the WAL is truncated, so
    // recovery = snapshot + tail, not a full-history replay.
    let dir = TempDir::new("crash-tail").unwrap();
    let conf = cfg(&dir, 8);
    let mut c = Collection::create(schema(), conf.clone()).unwrap();
    insert_n(&mut c, 8); // crosses the threshold: merge + checkpoint
    let wal = c.wal_path().unwrap();
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        0,
        "checkpoint must truncate the WAL"
    );
    assert!(c.snapshot_path().unwrap().exists());

    c.insert(100, &vec_at(100.0), &[("tag", "tail".into())])
        .unwrap();
    c.delete(2).unwrap();
    let tail_len = std::fs::metadata(&wal).unwrap().len();
    assert!(tail_len > 0, "tail records live in the WAL");
    let expected = dump(&c);
    drop(c);

    let r = Collection::recover(schema(), conf).unwrap();
    assert_eq!(dump(&r), expected);
    // The tail holds exactly the two post-checkpoint records: far
    // smaller than the eight-insert history it replaced.
    let two_record_cap = 2 * (64 + 4 * 4 + 32); // generous per-frame bound
    assert!(
        tail_len < two_record_cap,
        "tail should be two records, got {tail_len} bytes"
    );
}

/// Torn-snapshot recovery of the inverted index: sweep every crash
/// point of a checkpoint whose snapshot carries a text section, recover,
/// and require the recovered collection to answer the SAME hybrid
/// text+vector query as the reference — whichever of the pre- or
/// post-op snapshot survived, the inverted index rebuilt from it must
/// be complete (the fixture's logical rows are identical either way).
#[test]
fn crash_sweep_checkpoint_preserves_inverted_index() {
    use vdb::{Fusion, HybridResult, HybridStrategy};

    let tschema = || {
        CollectionSchema::new("crashtext", 4, Metric::Euclidean)
            .column("body", AttrType::Str)
            .text_index("body")
    };
    let tcfg = |dir: &TempDir, threshold: usize| CollectionConfig {
        index: IndexSpec::Flat,
        merge_threshold: threshold,
        merge_mode: MergeMode::Blocking,
        planner: PlannerMode::CostBased,
        wal_dir: Some(dir.path().to_path_buf()),
        build: BuildOptions::serial(),
        ..Default::default()
    };
    let texts = [
        "grape harvest ledger",
        "volcanic soil survey",
        "ledger of glacier cores",
        "survey notes on grape rot",
        "core drilling ledger appendix",
        "harvest appendix tables",
    ];
    let seed = |c: &mut Collection| {
        for (i, t) in texts.iter().enumerate() {
            c.insert(i as u64, &vec_at(i as f32), &[("body", (*t).into())])
                .unwrap();
        }
    };
    let hybrid = |c: &Collection| -> HybridResult {
        c.hybrid_text_search(
            &vec_at(2.0),
            "ledger survey",
            texts.len(),
            &Predicate::True,
            Fusion::Rrf { k0: 60 },
            Some(HybridStrategy::Fused),
            &SearchParams::default(),
        )
        .unwrap()
    };

    // Sweep both layouts: all rows merged into the snapshot's text
    // section (threshold 4) and a split main/WAL-tail state (threshold
    // 100, rows only in the WAL until the explicit checkpoint).
    for threshold in [4usize, 100] {
        // Reference run (failpoints off): hybrid answer is checkpoint-
        // invariant, so one reference covers pre and post states.
        let refdir = TempDir::new("crash-text-ref").unwrap();
        let mut c = Collection::create(tschema(), tcfg(&refdir, threshold)).unwrap();
        seed(&mut c);
        let want_state = dump(&c);
        let want_hybrid = hybrid(&c);
        assert!(!want_hybrid.hits.is_empty());
        c.checkpoint().expect("reference checkpoint");
        assert_eq!(hybrid(&c), want_hybrid, "checkpoint changed the answer");
        drop(c);

        let countdir = TempDir::new("crash-text-count").unwrap();
        let mut c = Collection::create(tschema(), tcfg(&countdir, threshold)).unwrap();
        seed(&mut c);
        let (res, points) = failpoint::count_crash_points(|| c.checkpoint());
        res.expect("counting run must succeed");
        assert!(points > 0);
        drop(c);

        for n in 1..=points {
            let dir = TempDir::new("crash-text-sweep").unwrap();
            let conf = tcfg(&dir, threshold);
            let mut c = Collection::create(tschema(), conf.clone()).unwrap();
            seed(&mut c);
            failpoint::arm(n);
            let err = c.checkpoint();
            failpoint::disarm();
            assert!(
                failpoint::is_crash(&err.expect_err("armed checkpoint must crash")),
                "threshold {threshold} point {n}"
            );
            drop(c);

            let r = Collection::recover(tschema(), conf).unwrap_or_else(|e| {
                panic!("threshold {threshold} point {n}/{points}: recovery failed: {e}")
            });
            assert_eq!(
                dump(&r),
                want_state,
                "threshold {threshold} point {n}/{points}: rows diverged"
            );
            // Immediately queryable: the fused ranking is correct even
            // before maintenance (WAL-tail rows replayed into the buffer
            // may transiently double-count in the corpus stats, which
            // perturbs absolute BM25 scores but not the candidate set).
            let fresh = hybrid(&r);
            assert_eq!(
                fresh.hits.iter().map(|h| h.key).collect::<Vec<_>>(),
                want_hybrid.hits.iter().map(|h| h.key).collect::<Vec<_>>(),
                "threshold {threshold} point {n}/{points}: recovered ranking diverged"
            );
            // After one merge the replayed tail is folded and the
            // inverted index answers bit-identically to the reference.
            let mut r = r;
            r.merge().unwrap();
            assert_eq!(
                hybrid(&r),
                want_hybrid,
                "threshold {threshold} point {n}/{points}: inverted index diverged"
            );
        }
    }
}
