//! Online-maintenance correctness: in-place index mutability for every
//! mutable family (tombstones never surface, post-repair recall holds),
//! and background merges with atomic publication under concurrent
//! searches (no torn or stale-beyond-bound results).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::RwLock;
use vdb::{Collection, CollectionConfig, CollectionSchema, IndexSpec, MergeMode};
use vdb_core::error::Error;
use vdb_core::metric::Metric;
use vdb_core::rng::Rng;
use vdb_core::vector::Vectors;
use vdb_core::{dataset, FlatIndex, SearchParams, VectorIndex};

const DIM: usize = 16;

/// Every index family with in-place mutability (spec name → parse).
const MUTABLE_FAMILIES: [&str; 6] = ["flat", "hnsw", "nsw", "ivf_flat", "ivf_sq", "ivf_pq"];

fn params() -> SearchParams {
    SearchParams::default().with_nprobe(32).with_beam_width(96)
}

fn clustered(n: usize, seed: u64) -> Vectors {
    let mut rng = Rng::seed_from_u64(seed);
    dataset::clustered(n, DIM, 5, 0.4, &mut rng).vectors
}

/// Rows with `id % 3 == 0` are removed: interleaved across the whole id
/// range, so graph repair has to re-wire edges everywhere.
fn removal_set(n: usize) -> Vec<usize> {
    (0..n).filter(|id| id % 3 == 0).collect()
}

#[test]
fn tombstoned_rows_never_surface_in_any_mutable_family() {
    let data = clustered(600, 0xD11);
    let n = data.len();
    let removed = removal_set(n);
    for name in MUTABLE_FAMILIES {
        let spec = IndexSpec::parse(name).unwrap();
        let mut idx = spec.build(data.clone(), Metric::Euclidean).unwrap();
        let m = idx
            .as_mutable()
            .unwrap_or_else(|| panic!("{name} must be mutable"));
        for &id in &removed {
            assert!(m.remove(id).unwrap(), "{name}: first remove of {id}");
            assert!(!m.remove(id).unwrap(), "{name}: remove is idempotent");
        }
        assert_eq!(m.live(), n - removed.len(), "{name}: live count");
        // Probe from every removed row's own vector — the strongest pull
        // toward the tombstoned id — and from live rows.
        for &id in removed.iter().step_by(7) {
            let hits = idx.search(data.get(id), 20, &params()).unwrap();
            assert!(!hits.is_empty(), "{name}: search returned nothing");
            assert!(
                hits.iter().all(|h| h.id % 3 != 0),
                "{name}: tombstoned row surfaced near id {id}: {hits:?}"
            );
        }
        for id in (1..n).step_by(41) {
            let hits = idx.search(data.get(id), 10, &params()).unwrap();
            assert!(
                hits.iter().all(|h| h.id % 3 != 0),
                "{name}: tombstoned row surfaced in live probe {id}"
            );
        }
    }
}

#[test]
fn post_repair_recall_within_two_points_of_fresh_build() {
    let data = clustered(600, 0xD12);
    let n = data.len();
    let removed = removal_set(n);
    // Compact live rows for the fresh build + brute-force ground truth.
    let live_ids: Vec<usize> = (0..n).filter(|id| id % 3 != 0).collect();
    let mut live = Vectors::new(DIM);
    for &id in &live_ids {
        live.push(data.get(id)).unwrap();
    }
    // In-distribution queries that are NOT live rows: the removed vectors.
    let queries: Vec<usize> = removed.iter().copied().take(60).collect();
    let gt_index = FlatIndex::build(live.clone(), Metric::Euclidean).unwrap();
    let k = 10;

    for name in ["hnsw", "nsw", "ivf_flat", "ivf_sq", "ivf_pq"] {
        let spec = IndexSpec::parse(name).unwrap();
        // Repaired: build on everything, then remove in place.
        let mut repaired = spec.build(data.clone(), Metric::Euclidean).unwrap();
        let m = repaired.as_mutable().expect("mutable family");
        for &id in &removed {
            m.remove(id).unwrap();
        }
        // Fresh: built over only the surviving rows.
        let fresh = spec.build(live.clone(), Metric::Euclidean).unwrap();

        let (mut hits_repaired, mut hits_fresh, mut total) = (0usize, 0usize, 0usize);
        for &q in &queries {
            let qv = data.get(q);
            let gt: Vec<usize> = gt_index
                .search(qv, k, &params())
                .unwrap()
                .iter()
                .map(|h| live_ids[h.id])
                .collect();
            total += gt.len();
            for h in repaired.search(qv, k, &params()).unwrap() {
                if gt.contains(&h.id) {
                    hits_repaired += 1;
                }
            }
            for h in fresh.search(qv, k, &params()).unwrap() {
                if gt.contains(&live_ids[h.id]) {
                    hits_fresh += 1;
                }
            }
        }
        let recall_repaired = hits_repaired as f64 / total as f64;
        let recall_fresh = hits_fresh as f64 / total as f64;
        assert!(
            recall_repaired >= recall_fresh - 0.02,
            "{name}: post-repair recall {recall_repaired:.3} dropped more than 2 points \
             below fresh-build recall {recall_fresh:.3}"
        );
    }
}

fn vec_at(x: f32) -> Vec<f32> {
    vec![x, 0.0, 0.0, 0.0]
}

/// Acceptance: searches run continuously across 20+ background merges
/// with zero incorrect results. The collection uses an exact (Flat)
/// index, so every search has a provable answer: a search during a merge
/// sees the pre-merge index plus the buffer (read-your-writes), and a
/// search after `merge()` returns reflects every buffered update.
#[test]
fn searches_stay_exact_across_twenty_background_merges() {
    let schema = CollectionSchema::new("maint", 4, Metric::Euclidean);
    let cfg = CollectionConfig {
        index: IndexSpec::Flat,
        merge_threshold: 8,
        merge_mode: MergeMode::Background,
        ..Default::default()
    };
    let mut c = Collection::create(schema, cfg).unwrap();
    // Static region: keys 0..50, merged into the main index up front so
    // every concurrent search has a known exact answer.
    for i in 0..50u64 {
        loop {
            match c.insert(i, &vec_at(i as f32), &[]) {
                Ok(()) => break,
                Err(Error::Busy) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => panic!("seed insert failed: {e}"),
            }
        }
    }
    c.merge().unwrap();
    assert_eq!(c.stats().buffered, 0);

    // Server-style sharing: searchers hold read locks; the writer takes
    // brief write locks per insert. Background rebuilds happen on the
    // maintenance thread WITHOUT this lock, so searches genuinely overlap
    // index swaps.
    let shared = RwLock::new(c);
    let stop = AtomicBool::new(false);
    let searches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..3 {
            let shared = &shared;
            let stop = &stop;
            let searches = &searches;
            s.spawn(move || {
                let p = SearchParams::default();
                let mut i = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = i % 50;
                    let hits = shared
                        .read()
                        .unwrap()
                        .search(&vec_at(key as f32), 1, &p)
                        .unwrap();
                    assert_eq!(hits[0].key, key, "search must stay exact mid-merge");
                    assert_eq!(hits[0].dist, 0.0, "distance to own vector is zero");
                    searches.fetch_add(1, Ordering::Relaxed);
                    i += 7;
                }
            });
        }
        // Writer: dynamic region keys 1000.., far from the static probes.
        // Busy responses (bounded buffer) back off and retry.
        let mut inserted = 0u64;
        while inserted < 800 {
            let key = 1000 + inserted;
            let r = shared
                .write()
                .unwrap()
                .insert(key, &vec_at(1000.0 + inserted as f32), &[]);
            match r {
                Ok(()) => inserted += 1,
                Err(Error::Busy) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => panic!("unexpected insert error: {e}"),
            }
        }
        // Keep searches flowing until the worker has visibly completed
        // 20+ atomic publications.
        for _ in 0..2000 {
            if shared.read().unwrap().stats().merges >= 20 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let mut c = shared.into_inner().unwrap();
    let s = c.stats();
    assert!(
        s.merges >= 20,
        "need 20+ background merges, got {}",
        s.merges
    );
    assert!(
        searches.load(Ordering::Relaxed) > 100,
        "searchers must have run throughout"
    );
    // Freshness contract: once merge() completes, every acknowledged
    // write is reflected by the published index.
    c.merge().unwrap();
    assert_eq!(c.stats().buffered, 0);
    assert_eq!(c.len(), 850);
    let p = SearchParams::default();
    for probe in [1000u64, 1399, 1799] {
        let hits = c
            .search(&vec_at(1000.0 + (probe - 1000) as f32), 1, &p)
            .unwrap();
        assert_eq!(hits[0].key, probe, "acknowledged write lost");
    }
}

/// Delete-then-search at the collection level for each merge mode: a
/// tombstoned key must never surface, before or after maintenance.
#[test]
fn collection_delete_then_search_under_every_merge_mode() {
    for mode in [
        MergeMode::Blocking,
        MergeMode::Incremental,
        MergeMode::Background,
    ] {
        let schema = CollectionSchema::new("del", 4, Metric::Euclidean);
        let cfg = CollectionConfig {
            index: IndexSpec::Flat,
            merge_threshold: 8,
            merge_mode: mode,
            ..Default::default()
        };
        let mut c = Collection::create(schema, cfg).unwrap();
        for i in 0..24u64 {
            loop {
                match c.insert(i, &vec_at(i as f32), &[]) {
                    Ok(()) => break,
                    Err(Error::Busy) => std::thread::sleep(std::time::Duration::from_millis(1)),
                    Err(e) => panic!("{}: {e}", mode.name()),
                }
            }
        }
        for i in (0..24u64).step_by(4) {
            c.delete(i).unwrap();
        }
        let p = SearchParams::default();
        let check = |c: &Collection, stage: &str| {
            let hits = c.search(&vec_at(8.0), 18, &p).unwrap();
            assert!(
                hits.iter().all(|h| h.key % 4 != 0),
                "{} ({stage}): deleted key surfaced: {hits:?}",
                mode.name()
            );
            assert_eq!(c.len(), 18, "{} ({stage})", mode.name());
        };
        check(&c, "pre-merge");
        c.merge().unwrap();
        check(&c, "post-merge");
        assert_eq!(c.stats().buffered, 0, "{}", mode.name());
        assert_eq!(c.stats().merge_mode, mode.name());
    }
}
