//! Integration: the §2.1 score pipeline end-to-end — select a score from
//! labelled pairs, learn per-dimension weights, and retrieve with the
//! learned metric through a real index.

use std::sync::Arc;
use vdb_core::score::learned::{LabeledPair, LearnConfig, LearnedWeights};
use vdb_core::score::selection::select_score;
use vdb_core::{dataset, FlatIndex, Metric, Rng, SearchParams, VectorIndex, Vectors};

/// Data where only the first `signal` dimensions carry identity; the rest
/// is heavy noise. Plain L2 is misled; a learned diagonal metric is not.
struct SignalWorld {
    data: Vectors,
    /// Identity (class) of each row.
    class_of: Vec<usize>,
    signal: usize,
}

fn world(
    n_classes: usize,
    per_class: usize,
    dim: usize,
    signal: usize,
    rng: &mut Rng,
) -> SignalWorld {
    let anchors = dataset::gaussian(n_classes, signal, rng);
    let mut data = Vectors::new(dim);
    let mut class_of = Vec::new();
    let mut row = vec![0.0f32; dim];
    for c in 0..n_classes {
        for _ in 0..per_class {
            for (i, x) in row.iter_mut().enumerate() {
                *x = if i < signal {
                    anchors.get(c)[i] + rng.normal_f32() * 0.05
                } else {
                    rng.normal_f32() * 3.0 // loud noise dims
                };
            }
            data.push(&row).unwrap();
            class_of.push(c);
        }
    }
    SignalWorld {
        data,
        class_of,
        signal,
    }
}

fn pairs_from(world: &SignalWorld, n: usize, rng: &mut Rng) -> Vec<LabeledPair> {
    (0..n)
        .map(|i| {
            let a = rng.below(world.data.len());
            let similar = i % 2 == 0;
            let b = loop {
                let b = rng.below(world.data.len());
                if b != a && (world.class_of[a] == world.class_of[b]) == similar {
                    break b;
                }
            };
            LabeledPair {
                a: world.data.get(a).to_vec(),
                b: world.data.get(b).to_vec(),
                similar,
            }
        })
        .collect()
}

#[test]
fn learned_metric_beats_plain_l2_at_retrieval() {
    let mut rng = Rng::seed_from_u64(7000);
    let w = world(20, 40, 16, 4, &mut rng);
    let train = pairs_from(&w, 600, &mut rng);

    // Learn diagonal weights; they should upweight the signal dims.
    let lw = LearnedWeights::fit(&train, 16, &LearnConfig::default()).unwrap();
    let weights = lw.weights().to_vec();
    let signal_avg: f32 = weights[..w.signal].iter().sum::<f32>() / w.signal as f32;
    let noise_avg: f32 = weights[w.signal..].iter().sum::<f32>() / (16 - w.signal) as f32;
    assert!(signal_avg > noise_avg, "weights {weights:?}");

    // Retrieval: fraction of top-10 neighbors sharing the query's class.
    let class_precision = |metric: Metric| {
        let idx = FlatIndex::build(w.data.clone(), metric).unwrap();
        let params = SearchParams::default();
        let mut good = 0usize;
        let mut total = 0usize;
        for q in (0..w.data.len()).step_by(37) {
            let hits = idx.search(w.data.get(q), 11, &params).unwrap();
            for h in hits.iter().filter(|h| h.id != q).take(10) {
                good += (w.class_of[h.id] == w.class_of[q]) as usize;
                total += 1;
            }
        }
        good as f64 / total as f64
    };
    let plain = class_precision(Metric::Euclidean);
    let learned = class_precision(Metric::WeightedL2(Arc::new(weights)));
    assert!(
        learned > plain + 0.15,
        "learned metric should dominate: plain {plain:.3}, learned {learned:.3}"
    );
}

#[test]
fn score_selection_prefers_the_learned_metric() {
    let mut rng = Rng::seed_from_u64(7001);
    let w = world(15, 30, 12, 3, &mut rng);
    let train = pairs_from(&w, 400, &mut rng);
    let test = pairs_from(&w, 200, &mut rng);
    let lw = LearnedWeights::fit(&train, 12, &LearnConfig::default()).unwrap();
    let candidates = vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Cosine,
        lw.into_metric(),
    ];
    let ranked = select_score(&candidates, &test).unwrap();
    assert_eq!(
        ranked[0].metric.name(),
        "weighted_l2",
        "rankings: {:?}",
        ranked
            .iter()
            .map(|e| (e.metric.name(), e.auc))
            .collect::<Vec<_>>()
    );
    assert!(ranked[0].auc > ranked.last().unwrap().auc);
}
