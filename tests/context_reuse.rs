//! Context-reuse equivalence: for every index family, searching with a
//! fresh [`SearchContext`], with a deliberately dirty reused context, and
//! through the legacy context-free `search()` wrapper must produce
//! byte-identical results. This is the contract that lets batch workers,
//! shard scatter loops, and the collection facade reuse scratch freely.

use vdb_core::context::SearchContext;
use vdb_core::vector::Vectors;
use vdb_core::{dataset, FlatIndex, Metric, Rng, SearchParams, VectorIndex};
use vdb_index_graph::{
    DiskAnnConfig, DiskAnnIndex, HnswConfig, HnswIndex, KnngConfig, KnngIndex, NsgConfig, NsgIndex,
    NswConfig, NswIndex, StitchedConfig, StitchedVamanaIndex, VamanaConfig, VamanaIndex,
};
use vdb_index_table::{
    IvfConfig, IvfFlatIndex, IvfPqConfig, IvfPqIndex, IvfSqIndex, LshConfig, LshIndex, SpannConfig,
    SpannIndex,
};
use vdb_index_tree::annoy_forest;
use vdb_quant::SqBits;
use vdb_storage::TempDir;

const K: usize = 10;

fn workload() -> (Vectors, Vectors) {
    let mut rng = Rng::seed_from_u64(0xC0DE);
    let data = dataset::clustered(900, 16, 9, 0.5, &mut rng).vectors;
    let queries = dataset::split_queries(&data, 16, 0.05, &mut rng);
    (data, queries)
}

/// Pollute every public buffer of `ctx` so a reuse bug (missing reset,
/// stale epoch, leftover candidates) cannot hide behind clean state.
fn dirty(ctx: &mut SearchContext, index: &dyn VectorIndex, params: &SearchParams) {
    let junk = vec![1e30f32; index.dim()];
    // A real search leaves representative dirt in the visited set, pools,
    // frontier, and ext slots...
    index.search_with(ctx, &junk, K + 3, params).unwrap();
    // ...and hand-thrown garbage covers the plain buffers.
    ctx.scratch.extend([f32::NAN; 7]);
    ctx.order.extend([(f32::INFINITY, 9999), (-1.0, 0)]);
    ctx.ids.extend([u32::MAX, 0, 42]);
    ctx.pool.reset(3);
    ctx.rerank.reset(2);
}

/// Assert the three access paths agree exactly for every query, and that
/// `search_batch` over one warm context matches the per-query results.
fn assert_context_equivalence(index: &dyn VectorIndex, queries: &Vectors, params: &SearchParams) {
    let mut reused = SearchContext::for_index(index.len());
    dirty(&mut reused, index, params);
    let mut per_query = Vec::new();
    for q in queries.iter() {
        let legacy = index.search(q, K, params).unwrap();
        let fresh = index
            .search_with(&mut SearchContext::new(), q, K, params)
            .unwrap();
        let warm = index.search_with(&mut reused, q, K, params).unwrap();
        assert_eq!(legacy, fresh, "{}: legacy vs fresh context", index.name());
        assert_eq!(
            legacy,
            warm,
            "{}: fresh vs dirty reused context",
            index.name()
        );
        per_query.push(legacy);
    }
    let mut batch_ctx = SearchContext::new();
    dirty(&mut batch_ctx, index, params);
    let refs: Vec<&[f32]> = queries.iter().collect();
    let batched = index
        .search_batch(&mut batch_ctx, &refs, K, params)
        .unwrap();
    assert_eq!(per_query, batched, "{}: batch vs per-query", index.name());

    // Filtered paths reuse the same scratch; they must be just as stable.
    let filter = |id: usize| !id.is_multiple_of(3);
    for q in queries.iter().take(4) {
        let legacy = index.search_filtered(q, K, params, &filter).unwrap();
        let warm = index
            .search_filtered_with(&mut reused, q, K, params, &filter)
            .unwrap();
        assert_eq!(legacy, warm, "{}: filtered legacy vs reused", index.name());
        assert!(legacy.iter().all(|n| n.id % 3 != 0));
    }
}

#[test]
fn flat_context_equivalence() {
    let (data, queries) = workload();
    let idx = FlatIndex::build(data, Metric::Euclidean).unwrap();
    assert_context_equivalence(&idx, &queries, &SearchParams::default());
}

#[test]
fn graph_indexes_context_equivalence() {
    let (data, queries) = workload();
    let params = SearchParams::default().with_beam_width(48);
    let hnsw = HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
    assert_context_equivalence(&hnsw, &queries, &params);
    let nsw = NswIndex::build(data.clone(), Metric::Euclidean, NswConfig::default()).unwrap();
    assert_context_equivalence(&nsw, &queries, &params);
    let vamana =
        VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
    assert_context_equivalence(&vamana, &queries, &params);
    let nsg = NsgIndex::build(data.clone(), Metric::Euclidean, NsgConfig::default()).unwrap();
    assert_context_equivalence(&nsg, &queries, &params);
    let knng = KnngIndex::build(data.clone(), Metric::Euclidean, KnngConfig::new(12)).unwrap();
    assert_context_equivalence(&knng, &queries, &params);
    let labels: Vec<u32> = (0..data.len() as u32).map(|i| i % 4).collect();
    let stitched =
        StitchedVamanaIndex::build(data, labels, Metric::Euclidean, StitchedConfig::default())
            .unwrap();
    assert_context_equivalence(&stitched, &queries, &params);
}

#[test]
fn table_indexes_context_equivalence() {
    let (data, queries) = workload();
    let params = SearchParams::default().with_nprobe(4);
    let ivf = IvfFlatIndex::build(data.clone(), Metric::Euclidean, &IvfConfig::new(16)).unwrap();
    assert_context_equivalence(&ivf, &queries, &params);
    let ivf_pq =
        IvfPqIndex::build(data.clone(), Metric::Euclidean, &IvfPqConfig::new(16, 4)).unwrap();
    assert_context_equivalence(&ivf_pq, &queries, &params);
    let ivf_sq = IvfSqIndex::build(
        data.clone(),
        Metric::Euclidean,
        &IvfConfig::new(16),
        SqBits::B8,
        true,
    )
    .unwrap();
    assert_context_equivalence(&ivf_sq, &queries, &params);
    let lsh = LshIndex::build(data, Metric::Euclidean, LshConfig::default()).unwrap();
    assert_context_equivalence(&lsh, &queries, &params);
}

#[test]
fn disk_indexes_context_equivalence() {
    let (data, queries) = workload();
    let dir = TempDir::new("ctx-reuse").unwrap();
    let vam = VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
    let diskann = DiskAnnIndex::build(dir.file("d.idx"), &vam, &DiskAnnConfig::default()).unwrap();
    assert_context_equivalence(
        &diskann,
        &queries,
        &SearchParams::default().with_beam_width(48),
    );
    let spann = SpannIndex::build(
        dir.file("s.idx"),
        &data,
        Metric::Euclidean,
        &SpannConfig::new(12),
    )
    .unwrap();
    assert_context_equivalence(&spann, &queries, &SearchParams::default().with_nprobe(4));
}

#[test]
fn tree_index_context_equivalence() {
    let (data, queries) = workload();
    let forest = annoy_forest(data, Metric::Euclidean, 8, 24, 7).unwrap();
    assert_context_equivalence(&forest, &queries, &SearchParams::default());
}

/// A context dirtied by one index must serve a *different* index
/// unchanged — the plan executor interleaves index types over one context.
#[test]
fn one_context_serves_mixed_index_types() {
    let (data, queries) = workload();
    let params = SearchParams::default().with_beam_width(48).with_nprobe(4);
    let flat = FlatIndex::build(data.clone(), Metric::Euclidean).unwrap();
    let hnsw = HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
    let ivf_pq = IvfPqIndex::build(data, Metric::Euclidean, &IvfPqConfig::new(16, 4)).unwrap();
    let indexes: [&dyn VectorIndex; 3] = [&flat, &hnsw, &ivf_pq];
    let mut shared = SearchContext::new();
    for q in queries.iter().take(8) {
        for idx in indexes {
            let expected = idx
                .search_with(&mut SearchContext::new(), q, K, &params)
                .unwrap();
            let got = idx.search_with(&mut shared, q, K, &params).unwrap();
            assert_eq!(expected, got, "{} after cross-index reuse", idx.name());
        }
    }
}
