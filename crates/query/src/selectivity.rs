//! Selectivity estimation from column statistics.
//!
//! The optimizer's rule-based thresholds (Qdrant/Vespa style) and the
//! cost model (AnalyticDB-V/Milvus style) both consume an estimated
//! predicate selectivity. Estimates use textbook heuristics: `1/distinct`
//! for equality, range fraction under a uniformity assumption for
//! inequalities, and independence for conjunction/disjunction. §2.6(3) of
//! the paper notes hybrid cost estimation is an open problem — the
//! estimator's error against exact selectivity is itself measured in
//! experiment T3.

use crate::expr::{CmpOp, Predicate};
use crate::text::TextIndex;
use vdb_core::attr::AttrValue;
use vdb_storage::{AttributeStore, ColumnStats};

/// Default selectivity for predicates we cannot reason about.
const DEFAULT_SEL: f64 = 0.33;

/// Estimate the selectivity of `pred` over `store` in `[0, 1]`.
pub fn estimate(pred: &Predicate, store: &AttributeStore) -> f64 {
    let s = match pred {
        Predicate::True => 1.0,
        Predicate::Cmp { column, op, value } => store
            .column(column)
            .map(|c| estimate_cmp(&c.stats(), *op, value, store.rows()))
            .unwrap_or(DEFAULT_SEL),
        Predicate::In { column, values } => store
            .column(column)
            .map(|c| {
                let st = c.stats();
                let eq = eq_selectivity(&st, store.rows());
                (eq * values.len() as f64).min(1.0)
            })
            .unwrap_or(DEFAULT_SEL),
        Predicate::Between { column, lo, hi } => store
            .column(column)
            .map(|c| {
                let st = c.stats();
                range_fraction(&st, lo, hi).unwrap_or(DEFAULT_SEL)
            })
            .unwrap_or(DEFAULT_SEL),
        Predicate::IsNull { column } => store
            .column(column)
            .map(|c| {
                let st = c.stats();
                let total = st.non_null + st.nulls;
                if total == 0 {
                    0.0
                } else {
                    st.nulls as f64 / total as f64
                }
            })
            .unwrap_or(DEFAULT_SEL),
        Predicate::And(ps) => ps.iter().map(|p| estimate(p, store)).product(),
        Predicate::Or(ps) => {
            // Independence: 1 - prod(1 - s_i).
            1.0 - ps.iter().map(|p| 1.0 - estimate(p, store)).product::<f64>()
        }
        Predicate::Not(p) => 1.0 - estimate(p, store),
    };
    s.clamp(0.0, 1.0)
}

/// Estimate the fraction of documents matching *any* term of a text
/// query, from the inverted index's document frequencies under an
/// independence assumption (`1 - Π(1 - df_i/N)`). This grounds the
/// planner's hybrid strategy choice: a query of rare terms touches a
/// short postings union (text-first wins), a query of ubiquitous terms
/// matches nearly everything (vector-first wins).
pub fn text_selectivity(index: &TextIndex, query: &str) -> f64 {
    let n = index.n_docs();
    if n == 0 {
        return 0.0;
    }
    let terms = index.query_terms(query);
    if terms.is_empty() {
        return 0.0;
    }
    let miss: f64 = terms
        .iter()
        .map(|(t, _)| 1.0 - index.df(t) as f64 / n as f64)
        .product();
    (1.0 - miss).clamp(0.0, 1.0)
}

fn eq_selectivity(stats: &ColumnStats, rows: usize) -> f64 {
    if rows == 0 || stats.distinct == 0 {
        0.0
    } else {
        (stats.non_null as f64 / rows as f64) / stats.distinct as f64
    }
}

fn estimate_cmp(stats: &ColumnStats, op: CmpOp, value: &AttrValue, rows: usize) -> f64 {
    let non_null_frac = if rows == 0 {
        0.0
    } else {
        stats.non_null as f64 / rows as f64
    };
    match op {
        CmpOp::Eq => eq_selectivity(stats, rows),
        CmpOp::Ne => (non_null_frac - eq_selectivity(stats, rows)).max(0.0),
        CmpOp::Lt | CmpOp::Le => below_fraction(stats, value)
            .map(|f| f * non_null_frac)
            .unwrap_or(DEFAULT_SEL),
        CmpOp::Gt | CmpOp::Ge => below_fraction(stats, value)
            .map(|f| (1.0 - f) * non_null_frac)
            .unwrap_or(DEFAULT_SEL),
    }
}

/// Fraction of the [min, max] range lying below `value`, assuming a
/// uniform distribution. `None` when the column is non-numeric or empty.
fn below_fraction(stats: &ColumnStats, value: &AttrValue) -> Option<f64> {
    let lo = as_f64(stats.min.as_ref()?)?;
    let hi = as_f64(stats.max.as_ref()?)?;
    let v = as_f64(value)?;
    if hi <= lo {
        return Some(if v >= hi { 1.0 } else { 0.0 });
    }
    Some(((v - lo) / (hi - lo)).clamp(0.0, 1.0))
}

fn range_fraction(stats: &ColumnStats, lo: &AttrValue, hi: &AttrValue) -> Option<f64> {
    let below_hi = below_fraction(stats, hi)?;
    let below_lo = below_fraction(stats, lo)?;
    Some((below_hi - below_lo).max(0.0))
}

fn as_f64(v: &AttrValue) -> Option<f64> {
    match v {
        AttrValue::Int(i) => Some(*i as f64),
        AttrValue::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::rng::Rng;
    use vdb_storage::Column;

    fn uniform_store(n: usize) -> AttributeStore {
        let mut rng = Rng::seed_from_u64(1);
        let mut s = AttributeStore::new();
        s.add_column(
            Column::from_values("x", AttrType::Int, dataset::int_column(n, 0, 100, &mut rng))
                .unwrap(),
        )
        .unwrap();
        s.add_column(
            Column::from_values(
                "cat",
                AttrType::Str,
                dataset::zipf_category_column(n, 10, 0.0, &mut rng), // uniform categories
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn range_estimates_close_to_exact_on_uniform_data() {
        let s = uniform_store(5000);
        for v in [10i64, 50, 90] {
            let p = Predicate::lt("x", v);
            let est = estimate(&p, &s);
            let exact = p.exact_selectivity(&s).unwrap();
            assert!(
                (est - exact).abs() < 0.05,
                "x < {v}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn equality_uses_distinct_count() {
        let s = uniform_store(5000);
        let p = Predicate::eq("cat", "cat_3");
        let est = estimate(&p, &s);
        let exact = p.exact_selectivity(&s).unwrap();
        assert!((est - exact).abs() < 0.05, "est {est} vs exact {exact}");
    }

    #[test]
    fn conjunction_multiplies() {
        let s = uniform_store(5000);
        let p = Predicate::lt("x", 50).and(Predicate::eq("cat", "cat_0"));
        let est = estimate(&p, &s);
        let expected =
            estimate(&Predicate::lt("x", 50), &s) * estimate(&Predicate::eq("cat", "cat_0"), &s);
        assert!((est - expected).abs() < 1e-12);
    }

    #[test]
    fn negation_and_disjunction() {
        let s = uniform_store(2000);
        let p = Predicate::lt("x", 30);
        let not_p = Predicate::Not(Box::new(p.clone()));
        assert!((estimate(&p, &s) + estimate(&not_p, &s) - 1.0).abs() < 1e-9);
        let or = p.clone().or(Predicate::gt("x", 70));
        let est = estimate(&or, &s);
        assert!(est > estimate(&p, &s), "OR must not shrink selectivity");
        assert!(est < 1.0);
    }

    #[test]
    fn estimates_always_in_unit_interval() {
        let s = uniform_store(100);
        let preds = [
            Predicate::True,
            Predicate::eq("x", 5),
            Predicate::lt("x", -100),
            Predicate::gt("x", 10_000),
            Predicate::IsNull { column: "x".into() },
            Predicate::eq("missing_column", 1),
            Predicate::In {
                column: "cat".into(),
                values: (0..50)
                    .map(|i| AttrValue::Str(format!("cat_{i}")))
                    .collect(),
            },
        ];
        for p in preds {
            let e = estimate(&p, &s);
            assert!((0.0..=1.0).contains(&e), "{p}: {e}");
        }
    }

    #[test]
    fn text_selectivity_matches_exact_document_frequency() {
        let mut ix = TextIndex::new();
        for i in 0..100 {
            // "common" in every doc, "rare" in 5%, "unique" in one.
            let mut d = String::from("common filler words");
            if i % 20 == 0 {
                d.push_str(" rare");
            }
            if i == 42 {
                d.push_str(" unique");
            }
            ix.push_doc(&d);
        }
        assert_eq!(text_selectivity(&ix, "common"), 1.0);
        assert!((text_selectivity(&ix, "rare") - 0.05).abs() < 1e-9);
        assert!((text_selectivity(&ix, "unique") - 0.01).abs() < 1e-9);
        assert_eq!(text_selectivity(&ix, "absent"), 0.0);
        assert_eq!(text_selectivity(&ix, ""), 0.0);
        // Union of independent terms ≥ each alone, ≤ their sum.
        let both = text_selectivity(&ix, "rare unique");
        assert!((0.05..=0.06 + 1e-9).contains(&both), "{both}");
        assert_eq!(text_selectivity(&TextIndex::new(), "anything"), 0.0);
    }

    #[test]
    fn out_of_range_constants_saturate() {
        let s = uniform_store(1000);
        assert_eq!(estimate(&Predicate::lt("x", -5), &s), 0.0);
        let all = estimate(&Predicate::lt("x", 1000), &s);
        assert!(all > 0.95);
    }
}
