//! Compiled predicates: column references resolved once per query.
//!
//! [`Predicate::eval`](crate::expr::Predicate::eval) resolves column names
//! on every row — fine for one-off evaluation, but visit-first scans call
//! the filter on every *visited* vector, making name resolution the inner
//! loop. [`CompiledPredicate`] binds each column reference to its column
//! up front, so per-row evaluation is pointer-chasing only.

use crate::expr::{CmpOp, Predicate};
use vdb_core::attr::AttrValue;
use vdb_core::error::Result;
use vdb_core::index::RowFilter;
use vdb_storage::{AttributeStore, Column};

enum Node<'a> {
    True,
    Cmp {
        col: &'a Column,
        op: CmpOp,
        value: AttrValue,
    },
    In {
        col: &'a Column,
        values: Vec<AttrValue>,
    },
    Between {
        col: &'a Column,
        lo: AttrValue,
        hi: AttrValue,
    },
    IsNull {
        col: &'a Column,
    },
    And(Vec<Node<'a>>),
    Or(Vec<Node<'a>>),
    Not(Box<Node<'a>>),
}

impl Node<'_> {
    fn eval(&self, row: usize) -> bool {
        match self {
            Node::True => true,
            Node::Cmp { col, op, value } => cmp_test(*op, col.get(row).compare(value)),
            Node::In { col, values } => {
                let v = col.get(row);
                values.iter().any(|x| v.loosely_equals(x))
            }
            Node::Between { col, lo, hi } => {
                let v = col.get(row);
                cmp_test(CmpOp::Ge, v.compare(lo)) && cmp_test(CmpOp::Le, v.compare(hi))
            }
            Node::IsNull { col } => col.get(row).is_null(),
            Node::And(ns) => ns.iter().all(|n| n.eval(row)),
            Node::Or(ns) => ns.iter().any(|n| n.eval(row)),
            Node::Not(n) => !n.eval(row),
        }
    }
}

fn cmp_test(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    match (op, ord) {
        (CmpOp::Eq, Some(Equal)) => true,
        (CmpOp::Ne, Some(o)) => o != Equal,
        (CmpOp::Lt, Some(Less)) => true,
        (CmpOp::Le, Some(Less | Equal)) => true,
        (CmpOp::Gt, Some(Greater)) => true,
        (CmpOp::Ge, Some(Greater | Equal)) => true,
        _ => false,
    }
}

/// A predicate with all column references pre-resolved against one store.
pub struct CompiledPredicate<'a> {
    root: Node<'a>,
    /// Selectivity hint estimated at compile time.
    hint: f64,
}

impl<'a> CompiledPredicate<'a> {
    /// Compile `pred` against `store`, validating column references.
    pub fn compile(pred: &Predicate, store: &'a AttributeStore) -> Result<Self> {
        pred.validate(store)?;
        let root = lower(pred, store)?;
        Ok(CompiledPredicate {
            root,
            hint: crate::selectivity::estimate(pred, store),
        })
    }

    /// Evaluate on one row.
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        self.root.eval(row)
    }
}

impl RowFilter for CompiledPredicate<'_> {
    fn accept(&self, id: usize) -> bool {
        self.eval(id)
    }
    fn selectivity_hint(&self) -> Option<f64> {
        Some(self.hint)
    }
}

fn lower<'a>(pred: &Predicate, store: &'a AttributeStore) -> Result<Node<'a>> {
    Ok(match pred {
        Predicate::True => Node::True,
        Predicate::Cmp { column, op, value } => Node::Cmp {
            col: store.column(column)?,
            op: *op,
            value: value.clone(),
        },
        Predicate::In { column, values } => Node::In {
            col: store.column(column)?,
            values: values.clone(),
        },
        Predicate::Between { column, lo, hi } => Node::Between {
            col: store.column(column)?,
            lo: lo.clone(),
            hi: hi.clone(),
        },
        Predicate::IsNull { column } => Node::IsNull {
            col: store.column(column)?,
        },
        Predicate::And(ps) => Node::And(ps.iter().map(|p| lower(p, store)).collect::<Result<_>>()?),
        Predicate::Or(ps) => Node::Or(ps.iter().map(|p| lower(p, store)).collect::<Result<_>>()?),
        Predicate::Not(p) => Node::Not(Box::new(lower(p, store)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::rng::Rng;

    fn store(n: usize) -> AttributeStore {
        let mut rng = Rng::seed_from_u64(1);
        let mut s = AttributeStore::new();
        s.add_column(
            Column::from_values("x", AttrType::Int, dataset::int_column(n, 0, 100, &mut rng))
                .unwrap(),
        )
        .unwrap();
        s.add_column(
            Column::from_values(
                "c",
                AttrType::Str,
                dataset::zipf_category_column(n, 5, 1.0, &mut rng),
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn compiled_matches_interpreted_on_every_row() {
        let s = store(500);
        let preds = [
            Predicate::True,
            Predicate::lt("x", 50),
            Predicate::eq("c", "cat_0").and(Predicate::gt("x", 20)),
            Predicate::Not(Box::new(Predicate::eq("c", "cat_1"))).or(Predicate::Between {
                column: "x".into(),
                lo: AttrValue::Int(10),
                hi: AttrValue::Int(30),
            }),
            Predicate::In {
                column: "c".into(),
                values: vec!["cat_0".into(), "cat_2".into()],
            },
            Predicate::IsNull { column: "x".into() },
        ];
        for p in preds {
            let cp = CompiledPredicate::compile(&p, &s).unwrap();
            for row in 0..500 {
                assert_eq!(cp.eval(row), p.eval(&s, row), "{p} row {row}");
            }
        }
    }

    #[test]
    fn compile_validates_columns() {
        let s = store(10);
        assert!(CompiledPredicate::compile(&Predicate::eq("ghost", 1), &s).is_err());
    }

    #[test]
    fn hint_is_populated() {
        let s = store(1000);
        let cp = CompiledPredicate::compile(&Predicate::lt("x", 50), &s).unwrap();
        let hint = cp.selectivity_hint().unwrap();
        assert!(hint > 0.3 && hint < 0.7, "hint {hint}");
        assert!(cp.accept(0) || !cp.accept(0)); // RowFilter impl exists
    }
}
