//! Query and plan types (§2.3 "plan enumeration").

use crate::expr::Predicate;
use vdb_core::index::SearchParams;

/// A (possibly predicated) top-k vector query.
#[derive(Debug, Clone)]
pub struct VectorQuery {
    /// The query vector.
    pub vector: Vec<f32>,
    /// Result size.
    pub k: usize,
    /// Attribute predicate (`Predicate::True` for unpredicated queries).
    pub predicate: Predicate,
    /// Index search parameters.
    pub params: SearchParams,
}

impl VectorQuery {
    /// An unpredicated k-NN query.
    pub fn knn(vector: Vec<f32>, k: usize) -> Self {
        VectorQuery {
            vector,
            k,
            predicate: Predicate::True,
            params: SearchParams::default(),
        }
    }

    /// Attach a predicate (hybrid query).
    pub fn filtered(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Override search parameters.
    pub fn with_params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// Whether the query carries a non-trivial predicate.
    pub fn is_hybrid(&self) -> bool {
        self.predicate != Predicate::True
    }
}

/// The hybrid execution strategies of §2.3: where the predicate is applied
/// relative to the vector search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Single-stage exact scan evaluating the predicate inline
    /// (the brute-force fallback rule-based planners keep for tiny or
    /// ultra-selective cases).
    BruteForce,
    /// Pre-filtering: materialize the matching row set first, then score
    /// only those rows exactly.
    PreFilter,
    /// Post-filtering: unconstrained index search over-fetching `α·k`,
    /// then apply the predicate to the result (may return < k).
    PostFilter,
    /// Block-first scan: the index skips blocked rows during its scan
    /// (bitmask pushed into the index; masked traversal on graphs).
    BlockFirst,
    /// Visit-first scan: index traversal passes through blocked rows but
    /// only accepts matching ones (single-stage filtering).
    VisitFirst,
}

impl Strategy {
    /// All strategies, in enumeration order.
    pub const ALL: [Strategy; 5] = [
        Strategy::BruteForce,
        Strategy::PreFilter,
        Strategy::PostFilter,
        Strategy::BlockFirst,
        Strategy::VisitFirst,
    ];

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute_force",
            Strategy::PreFilter => "pre_filter",
            Strategy::PostFilter => "post_filter",
            Strategy::BlockFirst => "block_first",
            Strategy::VisitFirst => "visit_first",
        }
    }
}

/// A selected physical plan with the optimizer's estimates attached.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Chosen strategy.
    pub strategy: Strategy,
    /// Estimated predicate selectivity used for the choice.
    pub est_selectivity: f64,
    /// Estimated cost in distance-evaluation units.
    pub est_cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builders() {
        let q = VectorQuery::knn(vec![1.0, 2.0], 5);
        assert!(!q.is_hybrid());
        let q = q.filtered(Predicate::eq("a", 1));
        assert!(q.is_hybrid());
        assert_eq!(q.k, 5);
        let q = q.with_params(SearchParams::default().with_beam_width(7));
        assert_eq!(q.params.beam_width, 7);
    }

    #[test]
    fn strategy_names_distinct() {
        let names: std::collections::HashSet<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
    }
}
