//! Full-text retrieval: tokenizer, inverted index, and BM25 scoring
//! (the text half of hybrid text + vector search, §2.3).
//!
//! The index is append-only and dependency-free. Documents are assigned
//! dense ids in insertion order; each term holds a postings list stored
//! as delta-encoded varints (`doc gap, term frequency` pairs), cut into
//! fixed-size blocks. Every block records the metadata a block-max
//! WAND-style scan needs to skip it wholesale: its first/last doc id,
//! byte offset (so a cursor can jump there without decoding what came
//! before), the maximum term frequency and the minimum document length
//! inside the block. The per-block score upper bound is derived from
//! those two at query time (BM25's per-term contribution is increasing
//! in `tf` and decreasing in `dl`), which keeps the stored metadata
//! valid as corpus statistics drift under appends.
//!
//! [`TextIndex::search`] (block-max) and [`TextIndex::search_exhaustive`]
//! are **bit-identical**: both accumulate per-term contributions in query
//! term order, and the skipping scan only discards a block once the top-k
//! heap is full and the summed upper bounds cannot beat the current
//! threshold — equal scores lose to the earlier doc id, so a skipped
//! block can never have contributed.
//!
//! [`bm25_score`] is a pure function of integer inputs (term/document
//! frequencies, document lengths, corpus totals). Distributed fusion
//! ships those integers and re-scores globally, which is what makes
//! scatter/gather fusion equal single-node fusion bit for bit.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use vdb_core::error::{Error, Result};

/// BM25 term-frequency saturation parameter.
pub const BM25_K1: f32 = 1.2;
/// BM25 length-normalization parameter.
pub const BM25_B: f32 = 0.75;

/// Postings per block (and the skip granularity of the block-max scan).
const BLOCK: usize = 64;

const TEXT_MAGIC: &[u8; 4] = b"VTXT";
const TEXT_VERSION: u8 = 1;

/// A small English stopword list for callers that want one. The index
/// itself is stopword-agnostic: pass any set to
/// [`TextIndex::with_stopwords`].
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "is", "it", "no",
    "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these", "they",
    "this", "to", "was", "will", "with",
];

/// Lowercase and split on non-alphanumeric characters (Unicode-aware:
/// CJK ideographs, diacritics, and digits all count as word characters).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// One scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextHit {
    /// Document id (insertion order).
    pub doc: u32,
    /// BM25 score (higher is better).
    pub score: f32,
}

/// Skip metadata for one block of postings.
#[derive(Debug, Clone, PartialEq)]
struct Block {
    /// Absolute doc id of the block's first posting.
    first_doc: u32,
    /// Absolute doc id of the block's last posting.
    last_doc: u32,
    /// Byte offset of the block's first posting in the term's bytes.
    offset: u32,
    /// Number of postings in the block (≤ `BLOCK`).
    len: u32,
    /// Maximum term frequency inside the block.
    max_tf: u32,
    /// Minimum document length inside the block.
    min_dl: u32,
}

/// One term's delta-encoded postings plus its block directory.
#[derive(Debug, Clone, PartialEq, Default)]
struct Postings {
    /// Varint stream: per block, `tf` for the first posting (its doc id
    /// lives in the block header), then `(gap, tf)` pairs.
    bytes: Vec<u8>,
    blocks: Vec<Block>,
    /// Document frequency (number of postings).
    df: u64,
}

impl Postings {
    fn push(&mut self, doc: u32, tf: u32, dl: u32) {
        let start_block = !matches!(self.blocks.last(), Some(b) if (b.len as usize) < BLOCK);
        if start_block {
            self.blocks.push(Block {
                first_doc: doc,
                last_doc: doc,
                offset: self.bytes.len() as u32,
                len: 0,
                max_tf: 0,
                min_dl: u32::MAX,
            });
        } else {
            let prev = self.blocks.last().expect("open block").last_doc;
            debug_assert!(doc > prev, "doc ids must be appended in order");
            put_varint(&mut self.bytes, (doc - prev) as u64);
        }
        put_varint(&mut self.bytes, tf as u64);
        let b = self.blocks.last_mut().expect("open block");
        b.last_doc = doc;
        b.len += 1;
        b.max_tf = b.max_tf.max(tf);
        b.min_dl = b.min_dl.min(dl);
    }
}

/// Append-only inverted index with BM25 scoring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextIndex {
    terms: BTreeMap<String, Postings>,
    doc_lens: Vec<u32>,
    /// Sum of `doc_lens` (token count after stopword removal).
    total_len: u64,
    stopwords: Vec<String>,
}

impl TextIndex {
    /// Empty index, no stopwords.
    pub fn new() -> Self {
        TextIndex::default()
    }

    /// Empty index that drops the given stopwords at both index and
    /// query time.
    pub fn with_stopwords<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut stopwords: Vec<String> = words.into_iter().map(|w| w.into()).collect();
        stopwords.sort();
        stopwords.dedup();
        TextIndex {
            stopwords,
            ..TextIndex::default()
        }
    }

    fn is_stopword(&self, term: &str) -> bool {
        self.stopwords
            .binary_search_by(|w| w.as_str().cmp(term))
            .is_ok()
    }

    /// Tokenize, lowercase, and stopword-filter a document or query.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| !self.is_stopword(t))
            .collect()
    }

    /// Append a document; returns its id. An empty (or all-stopword)
    /// document still consumes an id so ids stay aligned with rows.
    pub fn push_doc(&mut self, text: &str) -> u32 {
        let doc = self.doc_lens.len() as u32;
        let tokens = self.analyze(text);
        let dl = tokens.len() as u32;
        let mut tfs: BTreeMap<String, u32> = BTreeMap::new();
        for t in tokens {
            *tfs.entry(t).or_insert(0) += 1;
        }
        for (term, tf) in tfs {
            let p = match self.terms.entry(term) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(Postings::default()),
            };
            p.push(doc, tf, dl);
            p.df += 1;
        }
        self.doc_lens.push(dl);
        self.total_len += dl as u64;
        doc
    }

    /// Number of documents (including empty ones).
    pub fn n_docs(&self) -> u64 {
        self.doc_lens.len() as u64
    }

    /// Total token count across all documents.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Length (token count) of one document.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_lens.get(doc as usize).copied().unwrap_or(0)
    }

    /// Document frequency of a term (0 when absent).
    pub fn df(&self, term: &str) -> u64 {
        self.terms.get(term).map(|p| p.df).unwrap_or(0)
    }

    /// Number of distinct terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Analyze a query into `(term, query tf)` pairs, first-appearance
    /// order, duplicates folded into the count.
    pub fn query_terms(&self, query: &str) -> Vec<(String, u32)> {
        let mut terms: Vec<(String, u32)> = Vec::new();
        for t in self.analyze(query) {
            match terms.iter_mut().find(|(s, _)| *s == t) {
                Some((_, c)) => *c += 1,
                None => terms.push((t, 1)),
            }
        }
        terms
    }

    /// Corpus statistics for a term list: `(n_docs, total_len, dfs)`.
    /// These are the integer inputs [`bm25_score`] needs; summing them
    /// across disjoint segments/shards yields global statistics.
    pub fn corpus_stats(&self, terms: &[(String, u32)]) -> CorpusStats {
        CorpusStats {
            n_docs: self.n_docs(),
            total_len: self.total_len(),
            dfs: terms.iter().map(|(t, _)| self.df(t)).collect(),
        }
    }

    /// Term frequencies of `doc` for each query term (0 when the doc
    /// does not contain the term).
    pub fn tf_vector(&self, doc: u32, terms: &[(String, u32)]) -> Vec<u32> {
        terms
            .iter()
            .map(|(t, _)| {
                let Some(p) = self.terms.get(t) else {
                    return 0;
                };
                // Binary-search the block directory, then decode one block.
                let bi = match p.blocks.partition_point(|b| b.last_doc < doc) {
                    i if i < p.blocks.len() => i,
                    _ => return 0,
                };
                let b = &p.blocks[bi];
                if doc < b.first_doc {
                    return 0;
                }
                let mut cur = BlockCursor::start(&p.bytes, b);
                loop {
                    match cur.doc.cmp(&doc) {
                        std::cmp::Ordering::Equal => return cur.tf,
                        std::cmp::Ordering::Greater => return 0,
                        std::cmp::Ordering::Less => {
                            if !cur.advance_in(&p.bytes, b) {
                                return 0;
                            }
                        }
                    }
                }
            })
            .collect()
    }

    /// Exhaustive BM25 top-k: decode every posting of every query term.
    /// The reference the block-max scan is tested against.
    pub fn search_exhaustive(&self, query: &str, k: usize) -> Vec<TextHit> {
        let terms = self.query_terms(query);
        self.search_terms(&terms, k, false)
    }

    /// Block-max BM25 top-k: skips posting blocks whose summed score
    /// upper bounds cannot enter the current top-k. Bit-identical to
    /// [`TextIndex::search_exhaustive`].
    pub fn search(&self, query: &str, k: usize) -> Vec<TextHit> {
        let terms = self.query_terms(query);
        self.search_terms(&terms, k, true)
    }

    /// Top-k over pre-analyzed terms.
    pub fn search_terms(&self, terms: &[(String, u32)], k: usize, skipping: bool) -> Vec<TextHit> {
        if k == 0 || terms.is_empty() || self.doc_lens.is_empty() {
            return Vec::new();
        }
        let stats = self.corpus_stats(terms);
        let weights = term_weights(terms, &stats);
        let mut cursors: Vec<TermCursor<'_>> = Vec::new();
        for ((term, _), &w) in terms.iter().zip(&weights) {
            if let Some(p) = self.terms.get(term) {
                if !p.blocks.is_empty() {
                    cursors.push(TermCursor::new(p, w));
                }
            }
        }
        let avgdl = stats.avgdl();
        // Worst-first top-k: worst = (lowest score, then *largest* doc).
        // DAAT visits docs in ascending id order, so an incoming doc
        // only displaces the worst entry on a strictly better score —
        // equal scores lose to the earlier doc.
        let mut heap: Vec<(f32, u32)> = Vec::with_capacity(k);
        loop {
            cursors.retain(|c| !c.done);
            if cursors.is_empty() {
                break;
            }
            if skipping && heap.len() == k {
                let theta = heap[0].0;
                let ub: f32 = cursors.iter().map(|c| c.block_upper_bound(avgdl)).sum();
                if ub <= theta {
                    // Nothing before the earliest block boundary can
                    // beat the threshold; jump every cursor past it.
                    let skip_to = cursors
                        .iter()
                        .map(|c| c.block().last_doc)
                        .min()
                        .expect("non-empty cursors");
                    for c in &mut cursors {
                        c.skip_past(skip_to);
                    }
                    continue;
                }
            }
            let doc = cursors.iter().map(|c| c.cur.doc).min().expect("non-empty");
            let dl = self.doc_lens[doc as usize] as f32;
            let mut score = 0.0f32;
            for c in &mut cursors {
                if c.cur.doc == doc {
                    score += c.weight * tf_part(c.cur.tf, dl, avgdl);
                    c.next();
                }
            }
            if heap.len() < k {
                heap.push((score, doc));
                if heap.len() == k {
                    heap.sort_by(worst_first);
                }
            } else if score > heap[0].0 {
                heap[0] = (score, doc);
                let mut i = 0;
                while i + 1 < heap.len() && worst_first(&heap[i], &heap[i + 1]).is_gt() {
                    heap.swap(i, i + 1);
                    i += 1;
                }
            }
        }
        heap.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        heap.into_iter()
            .map(|(score, doc)| TextHit { doc, score })
            .collect()
    }

    /// Serialize (versioned; see [`TextIndex::decode`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(TEXT_MAGIC);
        out.push(TEXT_VERSION);
        put_varint(&mut out, self.stopwords.len() as u64);
        for w in &self.stopwords {
            put_str(&mut out, w);
        }
        put_varint(&mut out, self.doc_lens.len() as u64);
        for &dl in &self.doc_lens {
            put_varint(&mut out, dl as u64);
        }
        put_varint(&mut out, self.terms.len() as u64);
        for (term, p) in &self.terms {
            put_str(&mut out, term);
            put_varint(&mut out, p.df);
            put_varint(&mut out, p.bytes.len() as u64);
            out.extend_from_slice(&p.bytes);
            put_varint(&mut out, p.blocks.len() as u64);
            for b in &p.blocks {
                put_varint(&mut out, b.first_doc as u64);
                put_varint(&mut out, b.last_doc as u64);
                put_varint(&mut out, b.offset as u64);
                put_varint(&mut out, b.len as u64);
                put_varint(&mut out, b.max_tf as u64);
                put_varint(&mut out, b.min_dl as u64);
            }
        }
        out
    }

    /// Deserialize bytes produced by [`TextIndex::encode`]. Unknown
    /// versions are rejected (callers fall back to rebuilding from the
    /// source column), structural damage is [`Error::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<TextIndex> {
        let corrupt = |what: &str| Error::Corrupt(format!("text index {what}"));
        if bytes.len() < 5 || &bytes[..4] != TEXT_MAGIC {
            return Err(corrupt("has bad magic"));
        }
        if bytes[4] != TEXT_VERSION {
            return Err(Error::Unsupported(format!(
                "text index version {} (supported: {TEXT_VERSION})",
                bytes[4]
            )));
        }
        let mut r = VarReader::new(&bytes[5..]);
        let n_stop = r.varint()? as usize;
        let mut stopwords = Vec::with_capacity(n_stop.min(1 << 16));
        for _ in 0..n_stop {
            stopwords.push(r.string()?);
        }
        let n_docs = r.varint()? as usize;
        let mut doc_lens = Vec::with_capacity(n_docs.min(1 << 24));
        let mut total_len = 0u64;
        for _ in 0..n_docs {
            let dl = r.varint()? as u32;
            total_len += dl as u64;
            doc_lens.push(dl);
        }
        let n_terms = r.varint()? as usize;
        let mut terms = BTreeMap::new();
        for _ in 0..n_terms {
            let term = r.string()?;
            let df = r.varint()?;
            let blen = r.varint()? as usize;
            let bytes = r.take(blen)?.to_vec();
            let n_blocks = r.varint()? as usize;
            let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
            for _ in 0..n_blocks {
                blocks.push(Block {
                    first_doc: r.varint()? as u32,
                    last_doc: r.varint()? as u32,
                    offset: r.varint()? as u32,
                    len: r.varint()? as u32,
                    max_tf: r.varint()? as u32,
                    min_dl: r.varint()? as u32,
                });
            }
            terms.insert(term, Postings { bytes, blocks, df });
        }
        if !r.is_empty() {
            return Err(corrupt("has trailing bytes"));
        }
        Ok(TextIndex {
            terms,
            doc_lens,
            total_len,
            stopwords,
        })
    }
}

fn worst_first(a: &(f32, u32), b: &(f32, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(b.1.cmp(&a.1))
}

/// Integer corpus statistics — the only cross-document inputs BM25
/// needs. Addable across disjoint segments or shards.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorpusStats {
    /// Total number of documents.
    pub n_docs: u64,
    /// Total token count.
    pub total_len: u64,
    /// Document frequency per query term (aligned with the term list).
    pub dfs: Vec<u64>,
}

impl CorpusStats {
    /// Average document length (1.0 for an empty corpus, to keep the
    /// scoring function total).
    pub fn avgdl(&self) -> f32 {
        if self.n_docs == 0 {
            1.0
        } else {
            self.total_len as f32 / self.n_docs as f32
        }
    }

    /// Sum element-wise (disjoint segments/shards ⇒ exact global stats).
    pub fn add(&mut self, other: &CorpusStats) {
        self.n_docs += other.n_docs;
        self.total_len += other.total_len;
        if self.dfs.is_empty() {
            self.dfs = other.dfs.clone();
        } else {
            debug_assert_eq!(self.dfs.len(), other.dfs.len());
            for (a, b) in self.dfs.iter_mut().zip(&other.dfs) {
                *a += b;
            }
        }
    }
}

/// Per-term query weight: `query tf × idf` (Robertson/Sparck-Jones idf
/// with the +1 floor, so weights stay positive).
fn term_weights(terms: &[(String, u32)], stats: &CorpusStats) -> Vec<f32> {
    terms
        .iter()
        .zip(&stats.dfs)
        .map(|((_, qtf), &df)| {
            let n = stats.n_docs as f32;
            let idf = (((n - df as f32 + 0.5) / (df as f32 + 0.5)) + 1.0).ln();
            *qtf as f32 * idf
        })
        .collect()
}

/// BM25 term-frequency component for one document.
#[inline]
fn tf_part(tf: u32, dl: f32, avgdl: f32) -> f32 {
    let tf = tf as f32;
    tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * dl / avgdl))
}

/// BM25 score of one document from integer inputs only. Both the local
/// scans and distributed re-scoring go through this function, which is
/// what makes shard-side and coordinator-side scores bit-identical.
pub fn bm25_score(terms: &[(String, u32)], tfs: &[u32], doc_len: u32, stats: &CorpusStats) -> f32 {
    let weights = term_weights(terms, stats);
    let avgdl = stats.avgdl();
    let dl = doc_len as f32;
    let mut score = 0.0f32;
    for (&tf, &w) in tfs.iter().zip(&weights) {
        if tf > 0 {
            score += w * tf_part(tf, dl, avgdl);
        }
    }
    score
}

/// Decoding position inside one block.
#[derive(Debug, Clone, Copy)]
struct BlockCursor {
    /// Byte position in the term's postings stream.
    pos: usize,
    /// Postings consumed from this block.
    taken: u32,
    doc: u32,
    tf: u32,
}

impl BlockCursor {
    fn start(bytes: &[u8], b: &Block) -> BlockCursor {
        let mut pos = b.offset as usize;
        let tf = read_varint(bytes, &mut pos) as u32;
        BlockCursor {
            pos,
            taken: 1,
            doc: b.first_doc,
            tf,
        }
    }

    /// Advance within the block; `false` once the block is exhausted.
    fn advance_in(&mut self, bytes: &[u8], b: &Block) -> bool {
        if self.taken >= b.len {
            return false;
        }
        let gap = read_varint(bytes, &mut self.pos) as u32;
        self.doc += gap;
        self.tf = read_varint(bytes, &mut self.pos) as u32;
        self.taken += 1;
        true
    }
}

/// DAAT cursor over one term's postings with block skipping.
struct TermCursor<'a> {
    p: &'a Postings,
    weight: f32,
    block_idx: usize,
    cur: BlockCursor,
    done: bool,
}

impl<'a> TermCursor<'a> {
    fn new(p: &'a Postings, weight: f32) -> TermCursor<'a> {
        let cur = BlockCursor::start(&p.bytes, &p.blocks[0]);
        TermCursor {
            p,
            weight,
            block_idx: 0,
            cur,
            done: false,
        }
    }

    fn block(&self) -> &Block {
        &self.p.blocks[self.block_idx]
    }

    /// Upper bound of this term's contribution anywhere in its current
    /// block, under the current average document length.
    fn block_upper_bound(&self, avgdl: f32) -> f32 {
        let b = self.block();
        self.weight * tf_part(b.max_tf, b.min_dl as f32, avgdl)
    }

    fn next(&mut self) {
        let b: &'a Block = &self.p.blocks[self.block_idx];
        if self.cur.advance_in(&self.p.bytes, b) {
            return;
        }
        self.block_idx += 1;
        if self.block_idx >= self.p.blocks.len() {
            self.done = true;
            return;
        }
        self.cur = BlockCursor::start(&self.p.bytes, &self.p.blocks[self.block_idx]);
    }

    /// Jump to the first posting with `doc > target`, using the block
    /// directory to avoid decoding skipped blocks.
    fn skip_past(&mut self, target: u32) {
        if self.done || self.cur.doc > target {
            return;
        }
        if self.block().last_doc <= target {
            let bi = self.p.blocks.partition_point(|b| b.last_doc <= target);
            if bi >= self.p.blocks.len() {
                self.done = true;
                return;
            }
            self.block_idx = bi;
            self.cur = BlockCursor::start(&self.p.bytes, &self.p.blocks[bi]);
        }
        while self.cur.doc <= target {
            let b: &'a Block = &self.p.blocks[self.block_idx];
            if !self.cur.advance_in(&self.p.bytes, b) {
                self.block_idx += 1;
                if self.block_idx >= self.p.blocks.len() {
                    self.done = true;
                    return;
                }
                self.cur = BlockCursor::start(&self.p.bytes, &self.p.blocks[self.block_idx]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// varint codec (LEB128, unsigned)

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decode a varint from a trusted in-memory postings stream.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Checked reader for untrusted serialized bytes.
struct VarReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> VarReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        VarReader { bytes, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::Corrupt("text index truncated".into()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(Error::Corrupt("text index varint overflow".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::Corrupt("text index truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.varint()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| Error::Corrupt("text index bad utf8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::rng::Rng;

    fn corpus() -> Vec<String> {
        // Deterministic synthetic corpus: zipf-ish vocabulary.
        let mut rng = Rng::seed_from_u64(7);
        let vocab: Vec<String> = (0..60).map(|i| format!("w{i}")).collect();
        (0..500)
            .map(|_| {
                let len = 3 + (rng.next_u64() % 20) as usize;
                (0..len)
                    .map(|_| {
                        // Skewed: low ids are common, high ids rare.
                        let r = (rng.next_u64() % 100) as usize;
                        let id = if r < 60 {
                            r % 8
                        } else {
                            8 + (rng.next_u64() as usize % 52)
                        };
                        vocab[id].clone()
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }

    fn build(docs: &[String]) -> TextIndex {
        let mut ix = TextIndex::new();
        for d in docs {
            ix.push_doc(d);
        }
        ix
    }

    /// Naive reference: tokenize every doc, score with the formulas.
    fn naive_topk(docs: &[String], ix: &TextIndex, query: &str, k: usize) -> Vec<TextHit> {
        let terms = ix.query_terms(query);
        let stats = ix.corpus_stats(&terms);
        let mut hits: Vec<TextHit> = docs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| {
                let toks = ix.analyze(d);
                let tfs: Vec<u32> = terms
                    .iter()
                    .map(|(t, _)| toks.iter().filter(|x| *x == t).count() as u32)
                    .collect();
                if tfs.iter().all(|&t| t == 0) {
                    return None;
                }
                Some(TextHit {
                    doc: i as u32,
                    score: bm25_score(&terms, &tfs, toks.len() as u32, &stats),
                })
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        hits.truncate(k);
        hits
    }

    #[test]
    fn tokenizer_basics() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  ...  "), Vec::<String>::new());
        assert_eq!(tokenize("a1-b2"), vec!["a1", "b2"]);
    }

    #[test]
    fn tokenizer_unicode() {
        assert_eq!(tokenize("Café au lait"), vec!["café", "au", "lait"]);
        assert_eq!(tokenize("ΣΟΦΙΑ"), vec!["σοφια"]);
        // CJK has no case and no spaces between clauses split by punctuation.
        assert_eq!(tokenize("向量数据库，很好"), vec!["向量数据库", "很好"]);
    }

    #[test]
    fn stopwords_filter_docs_and_queries() {
        let mut ix = TextIndex::with_stopwords(DEFAULT_STOPWORDS.iter().copied());
        ix.push_doc("the quick brown fox");
        assert_eq!(ix.df("the"), 0);
        assert_eq!(ix.df("quick"), 1);
        assert!(ix.query_terms("the of and").is_empty());
        assert!(ix.search("the of and", 5).is_empty());
    }

    #[test]
    fn duplicate_query_terms_fold_into_qtf() {
        let ix = build(&corpus());
        let once = ix.query_terms("w1");
        let thrice = ix.query_terms("w1 w1 w1");
        assert_eq!(once[0].1, 1);
        assert_eq!(thrice[0].1, 3);
        // Tripled weight scales scores but not the ranking.
        let a = ix.search("w1", 10);
        let b = ix.search("w1 w1 w1", 10);
        let ra: Vec<u32> = a.iter().map(|h| h.doc).collect();
        let rb: Vec<u32> = b.iter().map(|h| h.doc).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn single_document_corpus() {
        let mut ix = TextIndex::new();
        ix.push_doc("lone document about databases");
        let hits = ix.search("databases", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
        assert!(hits[0].score > 0.0);
        assert!(ix.search("missing", 3).is_empty());
    }

    #[test]
    fn empty_docs_keep_ids_aligned() {
        let mut ix = TextIndex::new();
        assert_eq!(ix.push_doc(""), 0);
        assert_eq!(ix.push_doc("real text"), 1);
        assert_eq!(ix.n_docs(), 2);
        assert_eq!(ix.doc_len(0), 0);
        let hits = ix.search("text", 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1);
    }

    #[test]
    fn bm25_matches_naive_reference() {
        let docs = corpus();
        let ix = build(&docs);
        for q in ["w0", "w3 w9", "w20 w0 w55", "w59"] {
            for k in [1, 5, 20] {
                let fast = ix.search_exhaustive(q, k);
                let slow = naive_topk(&docs, &ix, q, k);
                assert_eq!(fast.len(), slow.len(), "query {q} k {k}");
                for (f, s) in fast.iter().zip(&slow) {
                    assert_eq!(f.doc, s.doc, "query {q} k {k}");
                    assert!(
                        (f.score - s.score).abs() < 1e-4,
                        "query {q}: {f:?} vs {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_max_bit_identical_to_exhaustive() {
        let docs = corpus();
        let ix = build(&docs);
        for q in ["w0", "w0 w1 w2", "w3 w9 w40", "w59 w58", "w7 w7 w12"] {
            for k in [1, 3, 10, 50, 1000] {
                let fast = ix.search(q, k);
                let slow = ix.search_exhaustive(q, k);
                assert_eq!(fast, slow, "query {q} k {k} diverged");
            }
        }
    }

    #[test]
    fn tf_vector_and_df_consistent_with_postings() {
        let docs = corpus();
        let ix = build(&docs);
        let terms = ix.query_terms("w0 w10 w59 nosuchterm");
        let mut dfs = vec![0u64; terms.len()];
        for (i, d) in docs.iter().enumerate() {
            let toks = ix.analyze(d);
            let tfs = ix.tf_vector(i as u32, &terms);
            for (j, (t, _)) in terms.iter().enumerate() {
                let want = toks.iter().filter(|x| *x == t).count() as u32;
                assert_eq!(tfs[j], want, "doc {i} term {t}");
                if want > 0 {
                    dfs[j] += 1;
                }
            }
        }
        let stats = ix.corpus_stats(&terms);
        assert_eq!(stats.dfs, dfs);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ix = build(&corpus());
        let bytes = ix.encode();
        let back = TextIndex::decode(&bytes).unwrap();
        assert_eq!(back, ix);
        // Decoded index answers queries identically.
        assert_eq!(back.search("w0 w5", 10), ix.search("w0 w5", 10));
    }

    #[test]
    fn decode_rejects_damage_and_future_versions() {
        let ix = build(&corpus()[..20]);
        let bytes = ix.encode();
        assert!(TextIndex::decode(&bytes[..3]).is_err());
        for cut in 5..bytes.len() {
            assert!(TextIndex::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut future = bytes.clone();
        future[4] = 99;
        assert!(matches!(
            TextIndex::decode(&future),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn segment_stats_sum_to_global() {
        let docs = corpus();
        let (a, b) = docs.split_at(200);
        let (ia, ib, all) = (build(a), build(b), build(&docs));
        let terms = all.query_terms("w0 w30");
        let mut s = ia.corpus_stats(&terms);
        s.add(&ib.corpus_stats(&terms));
        assert_eq!(s, all.corpus_stats(&terms));
    }
}
