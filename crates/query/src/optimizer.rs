//! Plan enumeration and selection (§2.3).
//!
//! Three planner modes mirror the systems the paper surveys:
//!
//! - **Fixed** — one predefined plan per query type (Vearch post-filters,
//!   Weaviate pre-filters),
//! - **Rule-based** — selectivity thresholds decide pre/post/single-stage
//!   (Qdrant, Vespa),
//! - **Cost-based** — a linear model aggregates per-operator CPU cost in
//!   distance-evaluation units and picks the cheapest plan (AnalyticDB-V,
//!   Milvus).

use crate::exec::{HybridStrategy, QueryContext};
use crate::plan::{PhysicalPlan, Strategy, VectorQuery};
use crate::selectivity;

/// Planner mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannerMode {
    /// Always run the given strategy (predefined-plan systems).
    Fixed(Strategy),
    /// Threshold rules on estimated selectivity.
    RuleBased,
    /// Linear cost model over the enumerated strategies.
    CostBased,
}

/// Tunable constants of the cost model, in units of one distance
/// evaluation.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of evaluating the attribute predicate on one row.
    pub predicate_eval: f64,
    /// Effective out-degree assumed for graph traversal.
    pub graph_degree: f64,
    /// Fixed per-query overhead of an index probe (entry descent, table
    /// hashing, centroid ranking).
    pub probe_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            predicate_eval: 0.1,
            graph_degree: 16.0,
            probe_overhead: 32.0,
        }
    }
}

impl CostModel {
    /// Estimated cost of one unconstrained index search returning `k`.
    fn index_search_cost(&self, ctx: &QueryContext<'_>, q: &VectorQuery, k: usize) -> f64 {
        let n = ctx.vectors.len() as f64;
        match ctx.index.name() {
            "flat" => n,
            name if name.starts_with("ivf") || name == "spann" => {
                // nprobe lists of ~n/nlist rows each, plus centroid ranking.
                let stats = ctx.index.stats();
                let nlist = stats
                    .detail
                    .split_whitespace()
                    .find_map(|t| t.strip_prefix("nlist=").and_then(|v| v.parse::<f64>().ok()))
                    .unwrap_or(64.0);
                let rows_per_list = n / nlist.max(1.0);
                q.params.nprobe as f64 * rows_per_list + nlist
            }
            "lsh" => {
                // Collisions across tables; approximate by n / 2^min(k,12)
                // per table, bounded below by k.
                let per_table = (n / 1024.0).max(k as f64);
                8.0 * per_table
            }
            name if name.contains("tree")
                || name == "annoy"
                || name == "flann"
                || name == "rp_forest" =>
            {
                q.params.max_leaf_points as f64 + self.probe_overhead
            }
            // Graph indexes: beam * degree neighbor evaluations.
            _ => q.params.beam_width.max(k) as f64 * self.graph_degree + self.probe_overhead,
        }
    }

    /// Estimated cost of running `strategy` for `q` given selectivity `s`.
    pub fn strategy_cost(
        &self,
        ctx: &QueryContext<'_>,
        q: &VectorQuery,
        strategy: Strategy,
        s: f64,
    ) -> f64 {
        let n = ctx.vectors.len() as f64;
        let s = s.clamp(1e-6, 1.0);
        match strategy {
            // Predicate on every row, distance on every row.
            Strategy::BruteForce => n * self.predicate_eval + n,
            // Predicate on every row, distance only on survivors.
            Strategy::PreFilter => n * self.predicate_eval + s * n,
            // Over-fetch k/s results through the index, then filter them.
            Strategy::PostFilter => {
                let fetch = ((q.k as f64 / s) * 1.3).min(n).max(q.k as f64);
                self.index_search_cost(ctx, q, fetch as usize) + fetch * self.predicate_eval
            }
            // Bitmask on every row + an (unchanged-shape) index scan.
            Strategy::BlockFirst => n * self.predicate_eval + self.index_search_cost(ctx, q, q.k),
            // No bitmask; traversal inflates as selectivity drops.
            Strategy::VisitFirst => {
                let inflation = (1.0 / s).min(16.0);
                self.index_search_cost(ctx, q, q.k) * inflation
                    + q.params.beam_width as f64 * self.predicate_eval * inflation
            }
        }
    }
}

/// The planner.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Selection mode.
    pub mode: PlannerMode,
    /// Cost model used in [`PlannerMode::CostBased`].
    pub cost_model: CostModel,
    /// Rule-based threshold: below this selectivity, pre-filter.
    pub pre_filter_below: f64,
    /// Rule-based threshold: above this selectivity, post-filter.
    pub post_filter_above: f64,
    /// Hybrid rule threshold: below this *text* selectivity, run the
    /// inverted index first and rescore its matches by distance.
    pub text_first_below: f64,
    /// Hybrid rule threshold: above this text selectivity, run the
    /// vector index first and BM25-rescore its matches.
    pub vector_first_above: f64,
}

impl Planner {
    /// A planner in the given mode with default tuning.
    pub fn new(mode: PlannerMode) -> Self {
        Planner {
            mode,
            cost_model: CostModel::default(),
            pre_filter_below: 0.01,
            post_filter_above: 0.30,
            text_first_below: 0.05,
            vector_first_above: 0.50,
        }
    }

    /// Choose a hybrid text + vector strategy from the estimated text
    /// selectivity (fraction of documents matching any query term; see
    /// [`selectivity::text_selectivity`]).
    ///
    /// - **Fixed** mode always runs both retrievers ([`HybridStrategy::Fused`]).
    /// - **Rule-based** applies the `text_first_below` /
    ///   `vector_first_above` thresholds.
    /// - **Cost-based** compares a postings-scan cost (`s·n` + M exact
    ///   distances) against an index-probe cost (M neighbor expansions +
    ///   M term lookups) and hedges with `Fused` when neither wins by 2×.
    pub fn plan_hybrid(&self, n: usize, k: usize, text_selectivity: f64) -> HybridStrategy {
        let s = text_selectivity.clamp(0.0, 1.0);
        match self.mode {
            PlannerMode::Fixed(_) => HybridStrategy::Fused,
            PlannerMode::RuleBased => {
                if s < self.text_first_below {
                    HybridStrategy::TextFirst
                } else if s > self.vector_first_above {
                    HybridStrategy::VectorFirst
                } else {
                    HybridStrategy::Fused
                }
            }
            PlannerMode::CostBased => {
                let m = (4 * k.max(1)).max(32).min(n.max(1)) as f64;
                let text_cost = s * n as f64 + m;
                let vector_cost = self.cost_model.probe_overhead
                    + m * self.cost_model.graph_degree
                    + m * self.cost_model.predicate_eval;
                if text_cost * 2.0 < vector_cost {
                    HybridStrategy::TextFirst
                } else if vector_cost * 2.0 < text_cost {
                    HybridStrategy::VectorFirst
                } else {
                    HybridStrategy::Fused
                }
            }
        }
    }

    /// Enumerate candidate strategies for `q` (§2.3 plan enumeration).
    /// Unpredicated queries have a single sensible plan family.
    pub fn enumerate(&self, q: &VectorQuery) -> Vec<Strategy> {
        if !q.is_hybrid() {
            vec![Strategy::PostFilter] // plain index search
        } else {
            Strategy::ALL.to_vec()
        }
    }

    /// Select a plan for `q` over `ctx`.
    pub fn plan(&self, ctx: &QueryContext<'_>, q: &VectorQuery) -> PhysicalPlan {
        let s = if q.is_hybrid() {
            selectivity::estimate(&q.predicate, ctx.attrs)
        } else {
            1.0
        };
        match self.mode {
            PlannerMode::Fixed(strategy) => PhysicalPlan {
                strategy,
                est_selectivity: s,
                est_cost: self.cost_model.strategy_cost(ctx, q, strategy, s),
            },
            PlannerMode::RuleBased => {
                let strategy = if !q.is_hybrid() {
                    Strategy::PostFilter
                } else if s < self.pre_filter_below {
                    Strategy::PreFilter
                } else if s > self.post_filter_above {
                    Strategy::PostFilter
                } else {
                    Strategy::VisitFirst
                };
                PhysicalPlan {
                    strategy,
                    est_selectivity: s,
                    est_cost: self.cost_model.strategy_cost(ctx, q, strategy, s),
                }
            }
            PlannerMode::CostBased => {
                let (strategy, est_cost) = self
                    .enumerate(q)
                    .into_iter()
                    .map(|st| (st, self.cost_model.strategy_cost(ctx, q, st, s)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("enumeration is non-empty");
                PhysicalPlan {
                    strategy,
                    est_selectivity: s,
                    est_cost,
                }
            }
        }
    }

    /// Plan and execute in one step.
    pub fn run(
        &self,
        ctx: &QueryContext<'_>,
        q: &VectorQuery,
    ) -> vdb_core::error::Result<(PhysicalPlan, Vec<vdb_core::topk::Neighbor>)> {
        let plan = self.plan(ctx, q);
        let out = crate::exec::execute(ctx, q, plan.strategy)?;
        Ok((plan, out))
    }

    /// Plan and execute against a caller-managed scratch context.
    pub fn run_with(
        &self,
        ctx: &QueryContext<'_>,
        sctx: &mut vdb_core::context::SearchContext,
        q: &VectorQuery,
    ) -> vdb_core::error::Result<(PhysicalPlan, Vec<vdb_core::topk::Neighbor>)> {
        let plan = self.plan(ctx, q);
        let out = crate::exec::execute_with(ctx, sctx, q, plan.strategy)?;
        Ok((plan, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::metric::Metric;
    use vdb_core::rng::Rng;
    use vdb_core::vector::Vectors;
    use vdb_index_graph::{HnswConfig, HnswIndex};
    use vdb_storage::{AttributeStore, Column};

    struct Fixture {
        vectors: Vectors,
        attrs: AttributeStore,
        index: HnswIndex,
    }

    fn fixture() -> Fixture {
        // Large enough that index plans genuinely beat linear scans
        // (at a few hundred rows a brute scan really is optimal, and the
        // cost model would rightly pick it).
        let mut rng = Rng::seed_from_u64(101);
        let data = dataset::clustered(4000, 12, 6, 0.5, &mut rng).vectors;
        let mut attrs = AttributeStore::new();
        attrs
            .add_column(
                Column::from_values(
                    "x",
                    AttrType::Int,
                    dataset::int_column(4000, 0, 1000, &mut rng),
                )
                .unwrap(),
            )
            .unwrap();
        let index =
            HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        Fixture {
            vectors: data,
            attrs,
            index,
        }
    }

    #[test]
    fn rule_based_thresholds() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::RuleBased);
        let q = |cut: i64| {
            VectorQuery::knn(f.vectors.get(0).to_vec(), 10).filtered(Predicate::lt("x", cut))
        };
        assert_eq!(
            planner.plan(&ctx, &q(5)).strategy,
            Strategy::PreFilter,
            "ultra selective"
        );
        assert_eq!(
            planner.plan(&ctx, &q(900)).strategy,
            Strategy::PostFilter,
            "non selective"
        );
        assert_eq!(
            planner.plan(&ctx, &q(100)).strategy,
            Strategy::VisitFirst,
            "mid range"
        );
    }

    #[test]
    fn fixed_mode_never_deviates() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::Fixed(Strategy::PostFilter));
        for cut in [5i64, 100, 900] {
            let q =
                VectorQuery::knn(f.vectors.get(0).to_vec(), 10).filtered(Predicate::lt("x", cut));
            assert_eq!(planner.plan(&ctx, &q).strategy, Strategy::PostFilter);
        }
    }

    #[test]
    fn cost_based_prefers_prefilter_when_ultra_selective() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 10).filtered(Predicate::lt("x", 2));
        let plan = planner.plan(&ctx, &q);
        // With s ~ 0.2%, scanning ~2 rows beats any index plan.
        assert!(
            matches!(plan.strategy, Strategy::PreFilter | Strategy::BruteForce),
            "{:?}",
            plan.strategy
        );
    }

    #[test]
    fn cost_based_avoids_full_scans_when_not_selective() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 10).filtered(Predicate::lt("x", 950));
        let plan = planner.plan(&ctx, &q);
        assert!(
            !matches!(plan.strategy, Strategy::PreFilter | Strategy::BruteForce),
            "nearly unselective predicate should use the index, got {:?}",
            plan.strategy
        );
    }

    #[test]
    fn unpredicated_queries_get_index_plan() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        for mode in [PlannerMode::RuleBased, PlannerMode::CostBased] {
            let planner = Planner::new(mode);
            let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 10);
            assert_eq!(planner.plan(&ctx, &q).strategy, Strategy::PostFilter);
        }
    }

    #[test]
    fn run_returns_plan_and_results() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        let q = VectorQuery::knn(f.vectors.get(42).to_vec(), 5).filtered(Predicate::lt("x", 500));
        let (plan, out) = planner.run(&ctx, &q).unwrap();
        assert!(plan.est_cost > 0.0);
        assert!(!out.is_empty());
        assert!(out.iter().all(|n| q.predicate.eval(&f.attrs, n.id)));
    }

    #[test]
    fn hybrid_strategy_tracks_text_selectivity() {
        let rule = Planner::new(PlannerMode::RuleBased);
        assert_eq!(
            rule.plan_hybrid(10_000, 10, 0.001),
            HybridStrategy::TextFirst
        );
        assert_eq!(
            rule.plan_hybrid(10_000, 10, 0.9),
            HybridStrategy::VectorFirst
        );
        assert_eq!(rule.plan_hybrid(10_000, 10, 0.2), HybridStrategy::Fused);
        let fixed = Planner::new(PlannerMode::Fixed(Strategy::PostFilter));
        assert_eq!(fixed.plan_hybrid(10_000, 10, 0.001), HybridStrategy::Fused);
        let cost = Planner::new(PlannerMode::CostBased);
        // Rare terms: postings scan is far cheaper than index probes.
        assert_eq!(
            cost.plan_hybrid(100_000, 10, 0.0001),
            HybridStrategy::TextFirst
        );
        // Ubiquitous terms: the postings union is ~the whole corpus.
        assert_eq!(
            cost.plan_hybrid(100_000, 10, 0.95),
            HybridStrategy::VectorFirst
        );
    }

    #[test]
    fn costs_are_positive_and_ordered_sanely() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let cm = CostModel::default();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 10).filtered(Predicate::lt("x", 500));
        for st in Strategy::ALL {
            assert!(cm.strategy_cost(&ctx, &q, st, 0.5) > 0.0);
        }
        // Visit-first inflates as selectivity drops.
        assert!(
            cm.strategy_cost(&ctx, &q, Strategy::VisitFirst, 0.01)
                > cm.strategy_cost(&ctx, &q, Strategy::VisitFirst, 0.5)
        );
        // Pre-filter gets cheaper as selectivity drops.
        assert!(
            cm.strategy_cost(&ctx, &q, Strategy::PreFilter, 0.01)
                < cm.strategy_cost(&ctx, &q, Strategy::PreFilter, 0.9)
        );
    }
}
