//! Boolean predicates over structured attributes (§2.1 "hybrid queries").
//!
//! A [`Predicate`] is evaluated per row against an
//! [`AttributeStore`](vdb_storage::AttributeStore), or materialized into a
//! blocking bitmask for block-first scans (§2.3(1)). Comparisons involving
//! NULL are false, mirroring SQL semantics collapsed at the boolean layer.

use std::cmp::Ordering;
use std::fmt;
use vdb_core::attr::AttrValue;
use vdb_core::bitset::BitSet;
use vdb_core::error::{Error, Result};
use vdb_storage::AttributeStore;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl CmpOp {
    fn test(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

/// A boolean predicate tree over attribute columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the unpredicated query).
    True,
    /// `column <op> value`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Comparison constant.
        value: AttrValue,
    },
    /// `column IN (values)`.
    In {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<AttrValue>,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound.
        lo: AttrValue,
        /// Upper bound.
        hi: AttrValue,
    },
    /// `column IS NULL`.
    IsNull {
        /// Column name.
        column: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience: `column < value`.
    pub fn lt(column: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// Convenience: `column > value`.
    pub fn gt(column: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// Convenience: conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut v) => {
                v.push(other);
                Predicate::And(v)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Convenience: disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        match self {
            Predicate::Or(mut v) => {
                v.push(other);
                Predicate::Or(v)
            }
            p => Predicate::Or(vec![p, other]),
        }
    }

    /// Column names referenced by this predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { column, .. }
            | Predicate::In { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::IsNull { column } => out.push(column),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Validate that referenced columns exist (type errors surface as
    /// non-matches at evaluation, like SQL's NULL semantics).
    pub fn validate(&self, store: &AttributeStore) -> Result<()> {
        for c in self.columns() {
            store
                .column(c)
                .map_err(|_| Error::InvalidQuery(format!("unknown column `{c}`")))?;
        }
        match self {
            Predicate::And(ps) | Predicate::Or(ps) if ps.is_empty() => {
                Err(Error::InvalidQuery("empty AND/OR".into()))
            }
            _ => Ok(()),
        }
    }

    /// Evaluate on one row.
    pub fn eval(&self, store: &AttributeStore, row: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { column, op, value } => store
                .column(column)
                .map(|c| op.test(c.get(row).compare(value)))
                .unwrap_or(false),
            Predicate::In { column, values } => store
                .column(column)
                .map(|c| values.iter().any(|v| c.get(row).loosely_equals(v)))
                .unwrap_or(false),
            Predicate::Between { column, lo, hi } => store
                .column(column)
                .map(|c| {
                    let v = c.get(row);
                    CmpOp::Ge.test(v.compare(lo)) && CmpOp::Le.test(v.compare(hi))
                })
                .unwrap_or(false),
            Predicate::IsNull { column } => store
                .column(column)
                .map(|c| c.get(row).is_null())
                .unwrap_or(false),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(store, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(store, row)),
            Predicate::Not(p) => !p.eval(store, row),
        }
    }

    /// Evaluate against a value lookup instead of a column store — used
    /// for rows that live in the out-of-place update buffer and have not
    /// been merged into columns yet. Missing attributes read as NULL.
    pub fn eval_values(&self, get: &dyn Fn(&str) -> Option<AttrValue>) -> bool {
        let null = AttrValue::Null;
        let fetch = |c: &str| get(c).unwrap_or(null.clone());
        match self {
            Predicate::True => true,
            Predicate::Cmp { column, op, value } => op.test(fetch(column).compare(value)),
            Predicate::In { column, values } => {
                let v = fetch(column);
                values.iter().any(|x| v.loosely_equals(x))
            }
            Predicate::Between { column, lo, hi } => {
                let v = fetch(column);
                CmpOp::Ge.test(v.compare(lo)) && CmpOp::Le.test(v.compare(hi))
            }
            Predicate::IsNull { column } => fetch(column).is_null(),
            Predicate::And(ps) => ps.iter().all(|p| p.eval_values(get)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval_values(get)),
            Predicate::Not(p) => !p.eval_values(get),
        }
    }

    /// Materialize the blocking bitmask over every row (§2.3(1) online
    /// blocking via attribute filtering).
    pub fn bitmask(&self, store: &AttributeStore) -> Result<BitSet> {
        self.validate(store)?;
        let n = store.rows();
        let mut bits = BitSet::new(n);
        for row in 0..n {
            if self.eval(store, row) {
                bits.insert(row);
            }
        }
        Ok(bits)
    }

    /// Exact selectivity by counting matching rows.
    pub fn exact_selectivity(&self, store: &AttributeStore) -> Result<f64> {
        let n = store.rows();
        if n == 0 {
            return Ok(0.0);
        }
        Ok(self.bitmask(store)?.count() as f64 / n as f64)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::IsNull { column } => write!(f, "{column} IS NULL"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::attr::AttrType;
    use vdb_storage::Column;

    fn store() -> AttributeStore {
        let mut s = AttributeStore::new();
        s.add_column(
            Column::from_values(
                "price",
                AttrType::Int,
                vec![
                    AttrValue::Int(5),
                    AttrValue::Int(15),
                    AttrValue::Int(25),
                    AttrValue::Null,
                ],
            )
            .unwrap(),
        )
        .unwrap();
        s.add_column(
            Column::from_values(
                "brand",
                AttrType::Str,
                vec!["acme".into(), "zen".into(), "acme".into(), "zen".into()],
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn comparison_operators() {
        let s = store();
        assert!(Predicate::eq("price", 5).eval(&s, 0));
        assert!(!Predicate::eq("price", 5).eval(&s, 1));
        assert!(Predicate::lt("price", 20).eval(&s, 1));
        assert!(Predicate::gt("price", 20).eval(&s, 2));
        let ge = Predicate::Cmp {
            column: "price".into(),
            op: CmpOp::Ge,
            value: AttrValue::Int(15),
        };
        assert!(ge.eval(&s, 1) && ge.eval(&s, 2) && !ge.eval(&s, 0));
    }

    #[test]
    fn null_never_matches_comparisons() {
        let s = store();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let p = Predicate::Cmp {
                column: "price".into(),
                op,
                value: AttrValue::Int(5),
            };
            assert!(!p.eval(&s, 3), "{op} against NULL must be false");
        }
        assert!(Predicate::IsNull {
            column: "price".into()
        }
        .eval(&s, 3));
        assert!(!Predicate::IsNull {
            column: "price".into()
        }
        .eval(&s, 0));
    }

    #[test]
    fn boolean_composition() {
        let s = store();
        let p = Predicate::eq("brand", "acme").and(Predicate::lt("price", 10));
        assert!(p.eval(&s, 0));
        assert!(!p.eval(&s, 2), "acme but price 25");
        let q = Predicate::eq("brand", "zen").or(Predicate::eq("price", 5));
        assert!(q.eval(&s, 0) && q.eval(&s, 1) && q.eval(&s, 3));
        assert!(!q.eval(&s, 2));
        let n = Predicate::Not(Box::new(Predicate::eq("brand", "zen")));
        assert!(n.eval(&s, 0) && !n.eval(&s, 1));
    }

    #[test]
    fn in_and_between() {
        let s = store();
        let p = Predicate::In {
            column: "price".into(),
            values: vec![AttrValue::Int(5), AttrValue::Int(25)],
        };
        assert!(p.eval(&s, 0) && p.eval(&s, 2) && !p.eval(&s, 1) && !p.eval(&s, 3));
        let b = Predicate::Between {
            column: "price".into(),
            lo: AttrValue::Int(10),
            hi: AttrValue::Int(25),
        };
        assert!(!b.eval(&s, 0) && b.eval(&s, 1) && b.eval(&s, 2) && !b.eval(&s, 3));
    }

    #[test]
    fn bitmask_and_selectivity() {
        let s = store();
        let p = Predicate::eq("brand", "acme");
        let bits = p.bitmask(&s).unwrap();
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(p.exact_selectivity(&s).unwrap(), 0.5);
        assert_eq!(Predicate::True.exact_selectivity(&s).unwrap(), 1.0);
    }

    #[test]
    fn validation_catches_unknown_columns_and_empty_groups() {
        let s = store();
        assert!(Predicate::eq("nope", 1).validate(&s).is_err());
        assert!(Predicate::And(vec![]).validate(&s).is_err());
        assert!(Predicate::eq("price", 1).validate(&s).is_ok());
    }

    #[test]
    fn display_roundtrips_shape() {
        let p = Predicate::eq("brand", "acme").and(Predicate::lt("price", 10));
        assert_eq!(p.to_string(), "(brand = 'acme' AND price < 10)");
    }

    #[test]
    fn eval_values_matches_store_eval() {
        let s = store();
        let p = Predicate::eq("brand", "acme").and(Predicate::lt("price", 10));
        for row in 0..4 {
            let via_values =
                p.eval_values(&|c: &str| s.column(c).ok().map(|col| col.get(row).clone()));
            assert_eq!(via_values, p.eval(&s, row), "row {row}");
        }
        // Missing attributes read as NULL (never match).
        assert!(!Predicate::eq("ghost", 1).eval_values(&|_| None));
        assert!(Predicate::IsNull {
            column: "ghost".into()
        }
        .eval_values(&|_| None));
    }

    #[test]
    fn columns_deduped() {
        let p = Predicate::eq("a", 1)
            .and(Predicate::lt("a", 9))
            .and(Predicate::eq("b", 2));
        assert_eq!(p.columns(), vec!["a", "b"]);
    }
}
