//! Multi-vector queries (§2.1(3), §2.6(6)).
//!
//! Entities may be represented by several feature vectors (faces from
//! multiple angles, passages of a document), and queries may also carry
//! several vectors. Per the paper, aggregate scores fold the cross
//! distances into one entity score. The operator here: ANN-probe the index
//! with each query vector to gather candidate entities, then compute the
//! exact aggregate for each candidate and keep the top k.

use vdb_core::error::{Error, Result};
use vdb_core::index::{SearchParams, VectorIndex};
use vdb_core::score::Aggregator;
use vdb_core::topk::{Neighbor, TopK};
use vdb_core::vector::Vectors;

/// Maps vector rows to entities and back.
#[derive(Debug, Clone)]
pub struct EntityMap {
    entity_of: Vec<usize>,
    rows_of: Vec<Vec<u32>>,
}

impl EntityMap {
    /// Build from a row-to-entity assignment.
    pub fn new(entity_of: Vec<usize>) -> Result<Self> {
        let n_entities = entity_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); n_entities];
        for (row, &e) in entity_of.iter().enumerate() {
            rows_of[e].push(row as u32);
        }
        if rows_of.iter().any(Vec::is_empty) {
            return Err(Error::InvalidParameter(
                "entity ids must be dense (no empty entities)".into(),
            ));
        }
        Ok(EntityMap { entity_of, rows_of })
    }

    /// Entity of a vector row.
    pub fn entity_of(&self, row: usize) -> usize {
        self.entity_of[row]
    }

    /// Vector rows of an entity.
    pub fn rows_of(&self, entity: usize) -> &[u32] {
        &self.rows_of[entity]
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.rows_of.len()
    }
}

/// A multi-vector query: several query vectors, an aggregator, and `k`.
#[derive(Debug, Clone)]
pub struct MultiVectorQuery {
    /// The query vectors.
    pub vectors: Vec<Vec<f32>>,
    /// Result size in entities.
    pub k: usize,
    /// How per-query-vector entity distances combine.
    pub aggregator: Aggregator,
    /// Candidate rows fetched per query vector.
    pub fetch: usize,
}

/// An entity-level hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntityHit {
    /// Entity id.
    pub entity: usize,
    /// Aggregated distance (lower = better).
    pub score: f32,
}

/// Distance from one query vector to an entity: the minimum distance to
/// any of the entity's vectors (the standard set-to-point semantics).
fn entity_distance(
    metric: &vdb_core::metric::Metric,
    data: &Vectors,
    map: &EntityMap,
    entity: usize,
    q: &[f32],
) -> f32 {
    map.rows_of(entity)
        .iter()
        .map(|&row| metric.distance(q, data.get(row as usize)))
        .fold(f32::INFINITY, f32::min)
}

/// Execute a multi-vector query against an index over `data` whose rows
/// group into entities per `map`.
pub fn multi_vector_search(
    index: &dyn VectorIndex,
    data: &Vectors,
    map: &EntityMap,
    query: &MultiVectorQuery,
    params: &SearchParams,
) -> Result<Vec<EntityHit>> {
    if query.vectors.is_empty() {
        return Err(Error::InvalidQuery(
            "multi-vector query needs at least one vector".into(),
        ));
    }
    if query.k == 0 {
        return Ok(Vec::new());
    }
    let metric = index.metric();
    // Phase 1: candidate entities via per-vector ANN probes.
    let mut candidates: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for q in &query.vectors {
        let fetch = query.fetch.max(query.k);
        for hit in index.search(q, fetch, params)? {
            candidates.insert(map.entity_of(hit.id));
        }
    }
    // Phase 2: exact aggregate per candidate entity.
    let mut top = TopK::new(query.k);
    let mut dists = Vec::with_capacity(query.vectors.len());
    for &entity in &candidates {
        dists.clear();
        for q in &query.vectors {
            dists.push(entity_distance(metric, data, map, entity, q));
        }
        let score = query.aggregator.combine(&dists)?;
        top.push(Neighbor::new(entity, score));
    }
    Ok(top
        .into_sorted()
        .into_iter()
        .map(|n| EntityHit {
            entity: n.id,
            score: n.dist,
        })
        .collect())
}

/// Exact multi-vector search by full scan (the test oracle and the brute
/// plan for tiny collections).
pub fn multi_vector_exact(
    metric: &vdb_core::metric::Metric,
    data: &Vectors,
    map: &EntityMap,
    query: &MultiVectorQuery,
) -> Result<Vec<EntityHit>> {
    if query.vectors.is_empty() {
        return Err(Error::InvalidQuery(
            "multi-vector query needs at least one vector".into(),
        ));
    }
    let mut top = TopK::new(query.k.max(1));
    let mut dists = Vec::with_capacity(query.vectors.len());
    for entity in 0..map.num_entities() {
        dists.clear();
        for q in &query.vectors {
            dists.push(entity_distance(metric, data, map, entity, q));
        }
        top.push(Neighbor::new(entity, query.aggregator.combine(&dists)?));
    }
    let mut out: Vec<EntityHit> = top
        .into_sorted()
        .into_iter()
        .map(|n| EntityHit {
            entity: n.id,
            score: n.dist,
        })
        .collect();
    out.truncate(query.k);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::metric::Metric;
    use vdb_core::rng::Rng;
    use vdb_index_graph::{HnswConfig, HnswIndex};

    /// 100 entities × 4 vectors each, entity vectors clustered tightly.
    fn fixture() -> (Vectors, EntityMap, HnswIndex) {
        let mut rng = Rng::seed_from_u64(120);
        let centers = dataset::gaussian(100, 8, &mut rng);
        let mut data = Vectors::new(8);
        let mut entity_of = Vec::new();
        let mut row = vec![0.0f32; 8];
        for e in 0..100 {
            for _ in 0..4 {
                for (i, x) in row.iter_mut().enumerate() {
                    *x = centers.get(e)[i] + rng.normal_f32() * 0.05;
                }
                data.push(&row).unwrap();
                entity_of.push(e);
            }
        }
        let map = EntityMap::new(entity_of).unwrap();
        let index =
            HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        (data, map, index)
    }

    #[test]
    fn entity_map_roundtrip() {
        let map = EntityMap::new(vec![0, 0, 1, 2, 2, 2]).unwrap();
        assert_eq!(map.num_entities(), 3);
        assert_eq!(map.rows_of(2), &[3, 4, 5]);
        assert_eq!(map.entity_of(1), 0);
        assert!(EntityMap::new(vec![0, 2]).is_err(), "entity 1 missing");
    }

    #[test]
    fn ann_matches_exact_oracle() {
        let (data, map, index) = fixture();
        let metric = Metric::Euclidean;
        let mut rng = Rng::seed_from_u64(121);
        for aggregator in [Aggregator::Mean, Aggregator::Min, Aggregator::Max] {
            let query = MultiVectorQuery {
                vectors: (0..3)
                    .map(|_| (0..8).map(|_| rng.normal_f32()).collect::<Vec<f32>>())
                    .collect(),
                k: 5,
                aggregator,
                fetch: 64,
            };
            let approx = multi_vector_search(
                &index,
                &data,
                &map,
                &query,
                &SearchParams::default().with_beam_width(128),
            )
            .unwrap();
            let exact = multi_vector_exact(&metric, &data, &map, &query).unwrap();
            let approx_set: std::collections::HashSet<_> =
                approx.iter().map(|h| h.entity).collect();
            let hits = exact
                .iter()
                .filter(|h| approx_set.contains(&h.entity))
                .count();
            assert!(
                hits >= 4,
                "{}: {hits}/5 oracle entities found",
                query.aggregator.name()
            );
        }
    }

    #[test]
    fn single_vector_query_degenerates_to_knn_on_entities() {
        let (data, map, index) = fixture();
        let q = data.get(0).to_vec(); // first vector of entity 0
        let query = MultiVectorQuery {
            vectors: vec![q],
            k: 1,
            aggregator: Aggregator::Mean,
            fetch: 32,
        };
        let out =
            multi_vector_search(&index, &data, &map, &query, &SearchParams::default()).unwrap();
        assert_eq!(out[0].entity, 0);
    }

    #[test]
    fn weighted_sum_biases_towards_heavy_query() {
        let (data, map, _) = fixture();
        let metric = Metric::Euclidean;
        // Query 1 near entity 3, query 2 near entity 7; weights pick e3.
        let q1 = data.get(3 * 4).to_vec();
        let q2 = data.get(7 * 4).to_vec();
        let heavy_q1 = MultiVectorQuery {
            vectors: vec![q1.clone(), q2.clone()],
            k: 1,
            aggregator: Aggregator::WeightedSum(vec![10.0, 0.1]),
            fetch: 32,
        };
        let out = multi_vector_exact(&metric, &data, &map, &heavy_q1).unwrap();
        assert_eq!(out[0].entity, 3);
        let heavy_q2 = MultiVectorQuery {
            vectors: vec![q1, q2],
            k: 1,
            aggregator: Aggregator::WeightedSum(vec![0.1, 10.0]),
            fetch: 32,
        };
        let out = multi_vector_exact(&metric, &data, &map, &heavy_q2).unwrap();
        assert_eq!(out[0].entity, 7);
    }

    #[test]
    fn rejects_empty_query() {
        let (data, map, index) = fixture();
        let query = MultiVectorQuery {
            vectors: vec![],
            k: 5,
            aggregator: Aggregator::Mean,
            fetch: 16,
        };
        assert!(
            multi_vector_search(&index, &data, &map, &query, &SearchParams::default()).is_err()
        );
        assert!(multi_vector_exact(&Metric::Euclidean, &data, &map, &query).is_err());
    }
}
