//! # vdb-query
//!
//! Query processing, optimization, and execution for the `vectordb-rs`
//! VDBMS (§2.1 and §2.3 of *"Vector Database Management Techniques and
//! Systems"*, SIGMOD 2024):
//!
//! - [`expr`] — attribute predicates with SQL-like NULL semantics and
//!   bitmask materialization,
//! - [`selectivity`] — statistics-based selectivity estimation,
//! - [`plan`] — query and strategy types (pre-filter, post-filter,
//!   block-first, visit-first, brute force),
//! - [`exec`] — the physical operators behind each strategy,
//! - [`compiled`] — predicates with pre-resolved column references for
//!   hot filter loops,
//! - [`optimizer`] — fixed / rule-based / cost-based plan selection,
//! - [`batch`] — batched execution with shared predicate work and thread
//!   parallelism,
//! - [`multivector`] — multi-vector entity queries with aggregate scores,
//! - [`incremental`] — streaming k-NN iterators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod compiled;
pub mod exec;
pub mod expr;
pub mod incremental;
pub mod multivector;
pub mod optimizer;
pub mod plan;
pub mod selectivity;
pub mod text;

pub use batch::{execute_batch, BatchOptions};
pub use compiled::CompiledPredicate;
pub use exec::{
    execute, execute_with, fuse, Fusion, HybridCandidate, HybridHit, HybridStrategy,
    PredicateFilter, QueryContext,
};
pub use expr::{CmpOp, Predicate};
pub use incremental::IncrementalSearch;
pub use multivector::{
    multi_vector_exact, multi_vector_search, EntityHit, EntityMap, MultiVectorQuery,
};
pub use optimizer::{CostModel, Planner, PlannerMode};
pub use plan::{PhysicalPlan, Strategy, VectorQuery};
pub use selectivity::text_selectivity;
pub use text::{bm25_score, tokenize, CorpusStats, TextHit, TextIndex, DEFAULT_STOPWORDS};
