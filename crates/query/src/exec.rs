//! Physical operators for (hybrid) vector queries (§2.3).

use crate::expr::Predicate;
use crate::plan::{Strategy, VectorQuery};
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{RowFilter, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_storage::AttributeStore;

/// Everything an operator needs to run: raw vectors (for exact scans),
/// attributes (for predicates), and the search index.
pub struct QueryContext<'a> {
    /// The raw vector collection (row ids align with the index).
    pub vectors: &'a Vectors,
    /// The attribute store (row-aligned with `vectors`).
    pub attrs: &'a AttributeStore,
    /// The vector index.
    pub index: &'a dyn VectorIndex,
}

impl<'a> QueryContext<'a> {
    /// Construct, validating row alignment.
    pub fn new(
        vectors: &'a Vectors,
        attrs: &'a AttributeStore,
        index: &'a dyn VectorIndex,
    ) -> Result<Self> {
        if attrs.rows() != 0 && attrs.rows() != vectors.len() {
            return Err(Error::InvalidParameter(format!(
                "attribute store has {} rows, vectors {}",
                attrs.rows(),
                vectors.len()
            )));
        }
        if index.len() != vectors.len() {
            return Err(Error::InvalidParameter(format!(
                "index covers {} rows, vectors {}",
                index.len(),
                vectors.len()
            )));
        }
        Ok(QueryContext {
            vectors,
            attrs,
            index,
        })
    }

    fn metric(&self) -> &Metric {
        self.index.metric()
    }
}

/// A [`RowFilter`] over a predicate with a selectivity hint for
/// visit-first backtracking control.
pub struct PredicateFilter<'a> {
    predicate: &'a Predicate,
    attrs: &'a AttributeStore,
    hint: Option<f64>,
}

impl<'a> PredicateFilter<'a> {
    /// Wrap a predicate.
    pub fn new(predicate: &'a Predicate, attrs: &'a AttributeStore, hint: Option<f64>) -> Self {
        PredicateFilter {
            predicate,
            attrs,
            hint,
        }
    }
}

impl RowFilter for PredicateFilter<'_> {
    fn accept(&self, id: usize) -> bool {
        self.predicate.eval(self.attrs, id)
    }
    fn selectivity_hint(&self) -> Option<f64> {
        self.hint
    }
}

/// Execute `query` under an explicitly chosen strategy, using a
/// thread-local scratch context.
pub fn execute(
    ctx: &QueryContext<'_>,
    query: &VectorQuery,
    strategy: Strategy,
) -> Result<Vec<Neighbor>> {
    context::with_local(|sctx| execute_with(ctx, sctx, query, strategy))
}

/// Execute `query` under an explicitly chosen strategy against a
/// caller-managed [`SearchContext`]. Every physical operator — exact scans
/// included — draws its visited set, candidate pools, and buffers from
/// `sctx`, so a reused context runs the whole plan allocation-free.
pub fn execute_with(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
    strategy: Strategy,
) -> Result<Vec<Neighbor>> {
    if query.is_hybrid() {
        query.predicate.validate(ctx.attrs)?;
    }
    match strategy {
        Strategy::BruteForce => brute_force(ctx, sctx, query),
        Strategy::PreFilter => pre_filter(ctx, sctx, query),
        Strategy::PostFilter => post_filter(ctx, sctx, query),
        Strategy::BlockFirst => block_first(ctx, sctx, query),
        Strategy::VisitFirst => visit_first(ctx, sctx, query),
    }
}

/// Single-stage exact scan: evaluate the predicate inline, score survivors.
fn brute_force(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    check_dims(ctx, query)?;
    let metric = ctx.metric();
    let compiled = if query.is_hybrid() {
        Some(crate::compiled::CompiledPredicate::compile(
            &query.predicate,
            ctx.attrs,
        )?)
    } else {
        None
    };
    sctx.pool.reset(query.k.max(1));
    for (row, v) in ctx.vectors.iter().enumerate() {
        if let Some(cp) = &compiled {
            if !cp.eval(row) {
                continue;
            }
        }
        sctx.pool
            .push(Neighbor::new(row, metric.distance(&query.vector, v)));
    }
    let mut out = sctx.pool.drain_sorted();
    out.truncate(query.k);
    Ok(out)
}

/// Pre-filtering: materialize the match set, then score only those rows.
fn pre_filter(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    check_dims(ctx, query)?;
    let metric = ctx.metric();
    sctx.pool.reset(query.k.max(1));
    if query.is_hybrid() {
        let bits = query.predicate.bitmask(ctx.attrs)?;
        for row in bits.iter() {
            sctx.pool.push(Neighbor::new(
                row,
                metric.distance(&query.vector, ctx.vectors.get(row)),
            ));
        }
    } else {
        for (row, v) in ctx.vectors.iter().enumerate() {
            sctx.pool
                .push(Neighbor::new(row, metric.distance(&query.vector, v)));
        }
    }
    let mut out = sctx.pool.drain_sorted();
    out.truncate(query.k);
    Ok(out)
}

/// Post-filtering: unconstrained ANN search over-fetching `α·k`, filter,
/// and double the fetch if the result set came up short (§2.6(3)).
fn post_filter(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    let n = ctx.vectors.len();
    if n == 0 || query.k == 0 {
        return Ok(Vec::new());
    }
    let mut fetch = ((query.k as f32 * query.params.overfetch).ceil() as usize).clamp(query.k, n);
    loop {
        let cands = ctx
            .index
            .search_with(sctx, &query.vector, fetch, &query.params)?;
        let got = cands.len();
        let mut out: Vec<Neighbor> = cands
            .into_iter()
            .filter(|c| !query.is_hybrid() || query.predicate.eval(ctx.attrs, c.id))
            .collect();
        if out.len() >= query.k || fetch >= n || got < fetch {
            out.truncate(query.k);
            return Ok(out);
        }
        fetch = (fetch * 2).min(n);
    }
}

/// Block-first scan: bitmask pushed into the index.
fn block_first(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    if !query.is_hybrid() {
        return ctx
            .index
            .search_with(sctx, &query.vector, query.k, &query.params);
    }
    let bits = query.predicate.bitmask(ctx.attrs)?;
    ctx.index
        .search_blocked_with(sctx, &query.vector, query.k, &query.params, &bits)
}

/// Visit-first scan: predicate evaluated during traversal, no bitmask.
/// The predicate is compiled once — it runs on every *visited* vector, so
/// per-row column-name resolution would dominate the traversal.
fn visit_first(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    if !query.is_hybrid() {
        return ctx
            .index
            .search_with(sctx, &query.vector, query.k, &query.params);
    }
    let compiled = crate::compiled::CompiledPredicate::compile(&query.predicate, ctx.attrs)?;
    ctx.index
        .search_filtered_with(sctx, &query.vector, query.k, &query.params, &compiled)
}

fn check_dims(ctx: &QueryContext<'_>, query: &VectorQuery) -> Result<()> {
    if query.vector.len() != ctx.vectors.dim() {
        return Err(Error::DimensionMismatch {
            expected: ctx.vectors.dim(),
            actual: query.vector.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::index::SearchParams;
    use vdb_core::rng::Rng;
    use vdb_index_graph::{HnswConfig, HnswIndex};
    use vdb_storage::Column;

    struct Fixture {
        vectors: Vectors,
        attrs: AttributeStore,
        index: HnswIndex,
    }

    fn fixture() -> Fixture {
        let mut rng = Rng::seed_from_u64(90);
        let data = dataset::clustered(1200, 12, 8, 0.5, &mut rng).vectors;
        let mut attrs = AttributeStore::new();
        attrs
            .add_column(
                Column::from_values(
                    "price",
                    AttrType::Int,
                    dataset::int_column(1200, 0, 100, &mut rng),
                )
                .unwrap(),
            )
            .unwrap();
        let index =
            HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        Fixture {
            vectors: data,
            attrs,
            index,
        }
    }

    fn hybrid_query(_f: &Fixture, qv: Vec<f32>, cutoff: i64) -> VectorQuery {
        VectorQuery::knn(qv, 10)
            .filtered(Predicate::lt("price", cutoff))
            .with_params(SearchParams::default().with_beam_width(96))
    }

    #[test]
    fn all_strategies_return_only_matching_rows() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = hybrid_query(&f, f.vectors.get(3).to_vec(), 50);
        for strategy in Strategy::ALL {
            let out = execute(&ctx, &q, strategy).unwrap();
            assert!(!out.is_empty(), "{} returned nothing", strategy.name());
            for n in &out {
                assert!(
                    q.predicate.eval(&f.attrs, n.id),
                    "{}: row {} violates predicate",
                    strategy.name(),
                    n.id
                );
            }
        }
    }

    #[test]
    fn exact_strategies_agree_and_bound_approximate_ones() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = hybrid_query(&f, f.vectors.get(11).to_vec(), 40);
        let brute = execute(&ctx, &q, Strategy::BruteForce).unwrap();
        let pre = execute(&ctx, &q, Strategy::PreFilter).unwrap();
        assert_eq!(brute, pre, "both exact strategies must agree");
        // Approximate strategies achieve decent recall vs the oracle.
        let oracle: std::collections::HashSet<_> = brute.iter().map(|n| n.id).collect();
        for strategy in [
            Strategy::PostFilter,
            Strategy::VisitFirst,
            Strategy::BlockFirst,
        ] {
            let out = execute(&ctx, &q, strategy).unwrap();
            let hits = out.iter().filter(|n| oracle.contains(&n.id)).count();
            assert!(
                hits as f64 / oracle.len() as f64 > 0.5,
                "{}: recall {hits}/{}",
                strategy.name(),
                oracle.len()
            );
        }
    }

    #[test]
    fn unpredicated_queries_work_through_every_strategy() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 5)
            .with_params(SearchParams::default().with_beam_width(64));
        for strategy in Strategy::ALL {
            let out = execute(&ctx, &q, strategy).unwrap();
            assert_eq!(
                out[0].id,
                0,
                "{} must find the query point",
                strategy.name()
            );
        }
    }

    #[test]
    fn post_filter_retries_until_k_found() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        // ~5% selectivity with small initial overfetch forces doubling.
        let q = VectorQuery::knn(f.vectors.get(7).to_vec(), 10)
            .filtered(Predicate::lt("price", 5))
            .with_params(
                SearchParams::default()
                    .with_beam_width(256)
                    .with_overfetch(1.0),
            );
        let out = execute(&ctx, &q, Strategy::PostFilter).unwrap();
        assert!(
            out.len() >= 5,
            "doubling should eventually fill most of k, got {}",
            out.len()
        );
    }

    #[test]
    fn selective_predicate_may_return_fewer_than_k() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 50).filtered(Predicate::lt("price", 1)); // ~1% of rows
        let out = execute(&ctx, &q, Strategy::BruteForce).unwrap();
        assert!(out.len() < 50);
        assert!(out.iter().all(|n| q.predicate.eval(&f.attrs, n.id)));
    }

    #[test]
    fn context_validates_alignment() {
        let f = fixture();
        let mut short = AttributeStore::new();
        short
            .add_column(
                Column::from_values("x", AttrType::Int, vec![vdb_core::attr::AttrValue::Int(1)])
                    .unwrap(),
            )
            .unwrap();
        assert!(QueryContext::new(&f.vectors, &short, &f.index).is_err());
    }

    #[test]
    fn unknown_column_rejected_at_execute() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 5).filtered(Predicate::eq("nope", 1));
        assert!(execute(&ctx, &q, Strategy::BruteForce).is_err());
    }
}
