//! Physical operators for (hybrid) vector queries (§2.3).

use crate::expr::Predicate;
use crate::plan::{Strategy, VectorQuery};
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{RowFilter, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_storage::AttributeStore;

/// Everything an operator needs to run: raw vectors (for exact scans),
/// attributes (for predicates), and the search index.
pub struct QueryContext<'a> {
    /// The raw vector collection (row ids align with the index).
    pub vectors: &'a Vectors,
    /// The attribute store (row-aligned with `vectors`).
    pub attrs: &'a AttributeStore,
    /// The vector index.
    pub index: &'a dyn VectorIndex,
}

impl<'a> QueryContext<'a> {
    /// Construct, validating row alignment.
    pub fn new(
        vectors: &'a Vectors,
        attrs: &'a AttributeStore,
        index: &'a dyn VectorIndex,
    ) -> Result<Self> {
        if attrs.rows() != 0 && attrs.rows() != vectors.len() {
            return Err(Error::InvalidParameter(format!(
                "attribute store has {} rows, vectors {}",
                attrs.rows(),
                vectors.len()
            )));
        }
        if index.len() != vectors.len() {
            return Err(Error::InvalidParameter(format!(
                "index covers {} rows, vectors {}",
                index.len(),
                vectors.len()
            )));
        }
        Ok(QueryContext {
            vectors,
            attrs,
            index,
        })
    }

    fn metric(&self) -> &Metric {
        self.index.metric()
    }
}

/// A [`RowFilter`] over a predicate with a selectivity hint for
/// visit-first backtracking control.
pub struct PredicateFilter<'a> {
    predicate: &'a Predicate,
    attrs: &'a AttributeStore,
    hint: Option<f64>,
}

impl<'a> PredicateFilter<'a> {
    /// Wrap a predicate.
    pub fn new(predicate: &'a Predicate, attrs: &'a AttributeStore, hint: Option<f64>) -> Self {
        PredicateFilter {
            predicate,
            attrs,
            hint,
        }
    }
}

impl RowFilter for PredicateFilter<'_> {
    fn accept(&self, id: usize) -> bool {
        self.predicate.eval(self.attrs, id)
    }
    fn selectivity_hint(&self) -> Option<f64> {
        self.hint
    }
}

/// Execute `query` under an explicitly chosen strategy, using a
/// thread-local scratch context.
pub fn execute(
    ctx: &QueryContext<'_>,
    query: &VectorQuery,
    strategy: Strategy,
) -> Result<Vec<Neighbor>> {
    context::with_local(|sctx| execute_with(ctx, sctx, query, strategy))
}

/// Execute `query` under an explicitly chosen strategy against a
/// caller-managed [`SearchContext`]. Every physical operator — exact scans
/// included — draws its visited set, candidate pools, and buffers from
/// `sctx`, so a reused context runs the whole plan allocation-free.
pub fn execute_with(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
    strategy: Strategy,
) -> Result<Vec<Neighbor>> {
    if query.is_hybrid() {
        query.predicate.validate(ctx.attrs)?;
    }
    match strategy {
        Strategy::BruteForce => brute_force(ctx, sctx, query),
        Strategy::PreFilter => pre_filter(ctx, sctx, query),
        Strategy::PostFilter => post_filter(ctx, sctx, query),
        Strategy::BlockFirst => block_first(ctx, sctx, query),
        Strategy::VisitFirst => visit_first(ctx, sctx, query),
    }
}

/// Single-stage exact scan: evaluate the predicate inline, score survivors.
fn brute_force(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    check_dims(ctx, query)?;
    let metric = ctx.metric();
    let compiled = if query.is_hybrid() {
        Some(crate::compiled::CompiledPredicate::compile(
            &query.predicate,
            ctx.attrs,
        )?)
    } else {
        None
    };
    sctx.pool.reset(query.k.max(1));
    for (row, v) in ctx.vectors.iter().enumerate() {
        if let Some(cp) = &compiled {
            if !cp.eval(row) {
                continue;
            }
        }
        sctx.pool
            .push(Neighbor::new(row, metric.distance(&query.vector, v)));
    }
    let mut out = sctx.pool.drain_sorted();
    out.truncate(query.k);
    Ok(out)
}

/// Pre-filtering: materialize the match set, then score only those rows.
fn pre_filter(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    check_dims(ctx, query)?;
    let metric = ctx.metric();
    sctx.pool.reset(query.k.max(1));
    if query.is_hybrid() {
        let bits = query.predicate.bitmask(ctx.attrs)?;
        for row in bits.iter() {
            sctx.pool.push(Neighbor::new(
                row,
                metric.distance(&query.vector, ctx.vectors.get(row)),
            ));
        }
    } else {
        for (row, v) in ctx.vectors.iter().enumerate() {
            sctx.pool
                .push(Neighbor::new(row, metric.distance(&query.vector, v)));
        }
    }
    let mut out = sctx.pool.drain_sorted();
    out.truncate(query.k);
    Ok(out)
}

/// Post-filtering: unconstrained ANN search over-fetching `α·k`, filter,
/// and double the fetch if the result set came up short (§2.6(3)).
fn post_filter(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    let n = ctx.vectors.len();
    if n == 0 || query.k == 0 {
        return Ok(Vec::new());
    }
    let mut fetch = ((query.k as f32 * query.params.overfetch).ceil() as usize).clamp(query.k, n);
    loop {
        let cands = ctx
            .index
            .search_with(sctx, &query.vector, fetch, &query.params)?;
        let got = cands.len();
        let mut out: Vec<Neighbor> = cands
            .into_iter()
            .filter(|c| !query.is_hybrid() || query.predicate.eval(ctx.attrs, c.id))
            .collect();
        if out.len() >= query.k || fetch >= n || got < fetch {
            out.truncate(query.k);
            return Ok(out);
        }
        fetch = (fetch * 2).min(n);
    }
}

/// Block-first scan: bitmask pushed into the index.
fn block_first(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    if !query.is_hybrid() {
        return ctx
            .index
            .search_with(sctx, &query.vector, query.k, &query.params);
    }
    let bits = query.predicate.bitmask(ctx.attrs)?;
    ctx.index
        .search_blocked_with(sctx, &query.vector, query.k, &query.params, &bits)
}

/// Visit-first scan: predicate evaluated during traversal, no bitmask.
/// The predicate is compiled once — it runs on every *visited* vector, so
/// per-row column-name resolution would dominate the traversal.
fn visit_first(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    query: &VectorQuery,
) -> Result<Vec<Neighbor>> {
    if !query.is_hybrid() {
        return ctx
            .index
            .search_with(sctx, &query.vector, query.k, &query.params);
    }
    let compiled = crate::compiled::CompiledPredicate::compile(&query.predicate, ctx.attrs)?;
    ctx.index
        .search_filtered_with(sctx, &query.vector, query.k, &query.params, &compiled)
}

// ---------------------------------------------------------------------
// Hybrid text + vector fusion operators (§2.3).

/// How BM25 and similarity scores combine into one ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fusion {
    /// Reciprocal rank fusion: `Σ 1/(k0 + rank)` over the two rankings.
    /// Rank-only, so it needs no score normalization.
    Rrf {
        /// Rank damping constant (60 in the original RRF paper).
        k0: u32,
    },
    /// Convex score combination `α·sim + (1-α)·bm25`, both min-max
    /// normalized within the candidate list.
    Convex {
        /// Weight of the vector similarity (`1.0` = vector only).
        alpha: f32,
    },
}

impl Default for Fusion {
    fn default() -> Self {
        Fusion::Rrf { k0: 60 }
    }
}

/// Physical strategy for a hybrid text + vector query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridStrategy {
    /// Run the text index first; compute exact distances only for its
    /// top candidates. Wins when the text predicate is selective.
    TextFirst,
    /// Run the vector index first; BM25-score only its top candidates.
    /// Wins when the text predicate matches most of the corpus.
    VectorFirst,
    /// Run both retrievers to top-M and fuse their union.
    Fused,
}

impl HybridStrategy {
    /// Every strategy, for sweeps.
    pub const ALL: [HybridStrategy; 3] = [
        HybridStrategy::TextFirst,
        HybridStrategy::VectorFirst,
        HybridStrategy::Fused,
    ];

    /// Stable lowercase name (wire format, VQL, harness tables).
    pub fn name(&self) -> &'static str {
        match self {
            HybridStrategy::TextFirst => "text_first",
            HybridStrategy::VectorFirst => "vector_first",
            HybridStrategy::Fused => "fused",
        }
    }

    /// Inverse of [`HybridStrategy::name`].
    pub fn parse(name: &str) -> Option<HybridStrategy> {
        HybridStrategy::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One candidate entering fusion: both component scores attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridCandidate {
    /// External entity key.
    pub key: u64,
    /// Vector distance (lower is better).
    pub dist: f32,
    /// BM25 score (higher is better; 0 when no query term matches).
    pub text_score: f32,
}

/// One fused result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridHit {
    /// External entity key.
    pub key: u64,
    /// Vector distance of the entity.
    pub dist: f32,
    /// BM25 score of the entity.
    pub text_score: f32,
    /// The fused score (higher is better) the ranking is by.
    pub fused: f32,
}

/// Fuse a candidate list into a ranked top-`k`.
///
/// Pure function of the candidate *set*: ranks and normalization bounds
/// are derived internally with total tie-breaks (distance then key, and
/// score then key), so coordinators that re-score the same candidates
/// reproduce single-node fusion exactly.
pub fn fuse(candidates: &[HybridCandidate], fusion: Fusion, k: usize) -> Vec<HybridHit> {
    let mut hits: Vec<HybridHit> = match fusion {
        Fusion::Rrf { k0 } => {
            let mut by_vec: Vec<usize> = (0..candidates.len()).collect();
            by_vec.sort_by(|&a, &b| {
                candidates[a]
                    .dist
                    .total_cmp(&candidates[b].dist)
                    .then(candidates[a].key.cmp(&candidates[b].key))
            });
            let mut by_text: Vec<usize> = (0..candidates.len()).collect();
            by_text.sort_by(|&a, &b| {
                candidates[b]
                    .text_score
                    .total_cmp(&candidates[a].text_score)
                    .then(candidates[a].key.cmp(&candidates[b].key))
            });
            let mut fused = vec![0.0f32; candidates.len()];
            for (rank, &i) in by_vec.iter().enumerate() {
                fused[i] += 1.0 / (k0 as f32 + rank as f32 + 1.0);
            }
            for (rank, &i) in by_text.iter().enumerate() {
                fused[i] += 1.0 / (k0 as f32 + rank as f32 + 1.0);
            }
            candidates
                .iter()
                .zip(fused)
                .map(|(c, f)| HybridHit {
                    key: c.key,
                    dist: c.dist,
                    text_score: c.text_score,
                    fused: f,
                })
                .collect()
        }
        Fusion::Convex { alpha } => {
            let (mut dlo, mut dhi) = (f32::INFINITY, f32::NEG_INFINITY);
            let (mut tlo, mut thi) = (f32::INFINITY, f32::NEG_INFINITY);
            for c in candidates {
                dlo = dlo.min(c.dist);
                dhi = dhi.max(c.dist);
                tlo = tlo.min(c.text_score);
                thi = thi.max(c.text_score);
            }
            candidates
                .iter()
                .map(|c| {
                    // Distances invert (lower = more similar); a
                    // degenerate span means every candidate ties.
                    let sim = if dhi > dlo {
                        (dhi - c.dist) / (dhi - dlo)
                    } else {
                        1.0
                    };
                    let txt = if thi > tlo {
                        (c.text_score - tlo) / (thi - tlo)
                    } else if thi > 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                    HybridHit {
                        key: c.key,
                        dist: c.dist,
                        text_score: c.text_score,
                        fused: alpha * sim + (1.0 - alpha) * txt,
                    }
                })
                .collect()
        }
    };
    hits.sort_by(|a, b| {
        b.fused
            .total_cmp(&a.fused)
            .then(a.dist.total_cmp(&b.dist))
            .then(a.key.cmp(&b.key))
    });
    hits.truncate(k);
    hits
}

fn check_dims(ctx: &QueryContext<'_>, query: &VectorQuery) -> Result<()> {
    if query.vector.len() != ctx.vectors.dim() {
        return Err(Error::DimensionMismatch {
            expected: ctx.vectors.dim(),
            actual: query.vector.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::index::SearchParams;
    use vdb_core::rng::Rng;
    use vdb_index_graph::{HnswConfig, HnswIndex};
    use vdb_storage::Column;

    struct Fixture {
        vectors: Vectors,
        attrs: AttributeStore,
        index: HnswIndex,
    }

    fn fixture() -> Fixture {
        let mut rng = Rng::seed_from_u64(90);
        let data = dataset::clustered(1200, 12, 8, 0.5, &mut rng).vectors;
        let mut attrs = AttributeStore::new();
        attrs
            .add_column(
                Column::from_values(
                    "price",
                    AttrType::Int,
                    dataset::int_column(1200, 0, 100, &mut rng),
                )
                .unwrap(),
            )
            .unwrap();
        let index =
            HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        Fixture {
            vectors: data,
            attrs,
            index,
        }
    }

    fn hybrid_query(_f: &Fixture, qv: Vec<f32>, cutoff: i64) -> VectorQuery {
        VectorQuery::knn(qv, 10)
            .filtered(Predicate::lt("price", cutoff))
            .with_params(SearchParams::default().with_beam_width(96))
    }

    #[test]
    fn all_strategies_return_only_matching_rows() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = hybrid_query(&f, f.vectors.get(3).to_vec(), 50);
        for strategy in Strategy::ALL {
            let out = execute(&ctx, &q, strategy).unwrap();
            assert!(!out.is_empty(), "{} returned nothing", strategy.name());
            for n in &out {
                assert!(
                    q.predicate.eval(&f.attrs, n.id),
                    "{}: row {} violates predicate",
                    strategy.name(),
                    n.id
                );
            }
        }
    }

    #[test]
    fn exact_strategies_agree_and_bound_approximate_ones() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = hybrid_query(&f, f.vectors.get(11).to_vec(), 40);
        let brute = execute(&ctx, &q, Strategy::BruteForce).unwrap();
        let pre = execute(&ctx, &q, Strategy::PreFilter).unwrap();
        assert_eq!(brute, pre, "both exact strategies must agree");
        // Approximate strategies achieve decent recall vs the oracle.
        let oracle: std::collections::HashSet<_> = brute.iter().map(|n| n.id).collect();
        for strategy in [
            Strategy::PostFilter,
            Strategy::VisitFirst,
            Strategy::BlockFirst,
        ] {
            let out = execute(&ctx, &q, strategy).unwrap();
            let hits = out.iter().filter(|n| oracle.contains(&n.id)).count();
            assert!(
                hits as f64 / oracle.len() as f64 > 0.5,
                "{}: recall {hits}/{}",
                strategy.name(),
                oracle.len()
            );
        }
    }

    #[test]
    fn unpredicated_queries_work_through_every_strategy() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 5)
            .with_params(SearchParams::default().with_beam_width(64));
        for strategy in Strategy::ALL {
            let out = execute(&ctx, &q, strategy).unwrap();
            assert_eq!(
                out[0].id,
                0,
                "{} must find the query point",
                strategy.name()
            );
        }
    }

    #[test]
    fn post_filter_retries_until_k_found() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        // ~5% selectivity with small initial overfetch forces doubling.
        let q = VectorQuery::knn(f.vectors.get(7).to_vec(), 10)
            .filtered(Predicate::lt("price", 5))
            .with_params(
                SearchParams::default()
                    .with_beam_width(256)
                    .with_overfetch(1.0),
            );
        let out = execute(&ctx, &q, Strategy::PostFilter).unwrap();
        assert!(
            out.len() >= 5,
            "doubling should eventually fill most of k, got {}",
            out.len()
        );
    }

    #[test]
    fn selective_predicate_may_return_fewer_than_k() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 50).filtered(Predicate::lt("price", 1)); // ~1% of rows
        let out = execute(&ctx, &q, Strategy::BruteForce).unwrap();
        assert!(out.len() < 50);
        assert!(out.iter().all(|n| q.predicate.eval(&f.attrs, n.id)));
    }

    fn fusion_candidates() -> Vec<HybridCandidate> {
        vec![
            HybridCandidate {
                key: 1,
                dist: 0.1,
                text_score: 0.0,
            },
            HybridCandidate {
                key: 2,
                dist: 0.5,
                text_score: 3.0,
            },
            HybridCandidate {
                key: 3,
                dist: 0.9,
                text_score: 5.0,
            },
            HybridCandidate {
                key: 4,
                dist: 0.2,
                text_score: 1.0,
            },
        ]
    }

    #[test]
    fn rrf_fuses_by_rank_and_is_order_independent() {
        let cands = fusion_candidates();
        let fused = fuse(&cands, Fusion::Rrf { k0: 60 }, 4);
        assert_eq!(fused.len(), 4);
        // key 4: vector rank 2, text rank 3 — beats key 1 (ranks 1, 4)?
        // 1/62+1/63 vs 1/61+1/64: compare explicitly instead of guessing.
        let score = |v: u32, t: u32| 1.0 / (60.0 + v as f32) + 1.0 / (60.0 + t as f32);
        let by_key = |k: u64| fused.iter().find(|h| h.key == k).unwrap().fused;
        assert_eq!(by_key(1), score(1, 4));
        assert_eq!(by_key(2), score(3, 2));
        assert_eq!(by_key(3), score(4, 1));
        assert_eq!(by_key(4), score(2, 3));
        // Fusion is a function of the candidate *set*.
        let mut rev = cands.clone();
        rev.reverse();
        assert_eq!(fuse(&rev, Fusion::Rrf { k0: 60 }, 4), fused);
    }

    #[test]
    fn convex_interpolates_between_pure_rankings() {
        let cands = fusion_candidates();
        let vector_only = fuse(&cands, Fusion::Convex { alpha: 1.0 }, 4);
        let keys: Vec<u64> = vector_only.iter().map(|h| h.key).collect();
        assert_eq!(keys, vec![1, 4, 2, 3], "α=1 ranks by distance");
        let text_only = fuse(&cands, Fusion::Convex { alpha: 0.0 }, 4);
        let keys: Vec<u64> = text_only.iter().map(|h| h.key).collect();
        assert_eq!(keys, vec![3, 2, 4, 1], "α=0 ranks by BM25");
        let mixed = fuse(&cands, Fusion::Convex { alpha: 0.5 }, 2);
        assert_eq!(mixed.len(), 2);
        assert!(mixed[0].fused >= mixed[1].fused);
    }

    #[test]
    fn fusion_handles_degenerate_candidate_sets() {
        assert!(fuse(&[], Fusion::default(), 5).is_empty());
        let one = [HybridCandidate {
            key: 9,
            dist: 0.3,
            text_score: 0.0,
        }];
        for f in [Fusion::Rrf { k0: 60 }, Fusion::Convex { alpha: 0.7 }] {
            let out = fuse(&one, f, 5);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].key, 9);
            assert!(out[0].fused.is_finite());
        }
    }

    #[test]
    fn context_validates_alignment() {
        let f = fixture();
        let mut short = AttributeStore::new();
        short
            .add_column(
                Column::from_values("x", AttrType::Int, vec![vdb_core::attr::AttrValue::Int(1)])
                    .unwrap(),
            )
            .unwrap();
        assert!(QueryContext::new(&f.vectors, &short, &f.index).is_err());
    }

    #[test]
    fn unknown_column_rejected_at_execute() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let q = VectorQuery::knn(f.vectors.get(0).to_vec(), 5).filtered(Predicate::eq("nope", 1));
        assert!(execute(&ctx, &q, Strategy::BruteForce).is_err());
    }
}
