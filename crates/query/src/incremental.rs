//! Incremental (streaming) k-NN search (§2.6(5)).
//!
//! E-commerce-style applications fetch results in pages without a known
//! final `k`. [`IncrementalSearch`] is an iterator that yields neighbors
//! best-first, growing the underlying index fetch geometrically so early
//! results arrive cheaply and deeper pages reuse the index rather than
//! restarting from scratch semantically (ids already yielded are never
//! repeated, even if the deeper fetch reorders the frontier).

use std::collections::HashSet;
use vdb_core::error::Result;
use vdb_core::index::{SearchParams, VectorIndex};
use vdb_core::topk::Neighbor;

/// Streaming nearest-neighbor iterator over any [`VectorIndex`].
pub struct IncrementalSearch<'a> {
    index: &'a dyn VectorIndex,
    query: Vec<f32>,
    params: SearchParams,
    /// Results fetched so far, sorted.
    buffer: Vec<Neighbor>,
    /// Next position to yield from `buffer`.
    pos: usize,
    /// Ids already yielded (dedupe across refetches).
    yielded: HashSet<usize>,
    /// Fetch size of the next refill.
    next_k: usize,
    /// The index returned fewer results than requested: nothing more.
    exhausted: bool,
}

impl<'a> IncrementalSearch<'a> {
    /// Start a streaming search.
    pub fn new(index: &'a dyn VectorIndex, query: Vec<f32>, params: SearchParams) -> Self {
        IncrementalSearch {
            index,
            query,
            params,
            buffer: Vec::new(),
            pos: 0,
            yielded: HashSet::new(),
            next_k: 16,
            exhausted: false,
        }
    }

    /// Fetch the next batch, doubling the horizon.
    fn refill(&mut self) -> Result<()> {
        if self.exhausted {
            return Ok(());
        }
        let k = self.next_k.min(self.index.len().max(1));
        // Beam must keep pace with k for graph indexes.
        let mut params = self.params.clone();
        params.beam_width = params.beam_width.max(k);
        let results = self.index.search(&self.query, k, &params)?;
        if results.len() < k || k >= self.index.len() {
            self.exhausted = true;
        }
        self.buffer = results;
        self.pos = 0;
        self.next_k = k.saturating_mul(2);
        Ok(())
    }

    /// Next neighbor, or `Ok(None)` when the collection is exhausted.
    /// (Not the `Iterator` trait so errors can propagate.)
    pub fn next_neighbor(&mut self) -> Result<Option<Neighbor>> {
        loop {
            while self.pos < self.buffer.len() {
                let n = self.buffer[self.pos];
                self.pos += 1;
                if self.yielded.insert(n.id) {
                    return Ok(Some(n));
                }
            }
            if self.exhausted {
                return Ok(None);
            }
            self.refill()?;
            if self.buffer.len() <= self.yielded.len() && self.exhausted {
                // The refill produced nothing new and the index is drained.
                let any_new = self.buffer.iter().any(|n| !self.yielded.contains(&n.id));
                if !any_new {
                    return Ok(None);
                }
            }
        }
    }

    /// Pull up to `n` more neighbors (a "page").
    pub fn next_page(&mut self, n: usize) -> Result<Vec<Neighbor>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.next_neighbor()? {
                Some(nb) => out.push(nb),
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::flat::FlatIndex;
    use vdb_core::metric::Metric;
    use vdb_core::rng::Rng;
    use vdb_index_graph::{HnswConfig, HnswIndex};

    #[test]
    fn streams_exact_order_on_flat_index() {
        let mut rng = Rng::seed_from_u64(130);
        let data = dataset::gaussian(200, 6, &mut rng);
        let idx = FlatIndex::build(data.clone(), Metric::Euclidean).unwrap();
        let q: Vec<f32> = (0..6).map(|_| rng.normal_f32()).collect();
        let oracle = idx.search(&q, 200, &SearchParams::default()).unwrap();
        let mut inc = IncrementalSearch::new(&idx, q, SearchParams::default());
        let mut streamed = Vec::new();
        while let Some(n) = inc.next_neighbor().unwrap() {
            streamed.push(n);
        }
        assert_eq!(
            streamed, oracle,
            "streaming must reproduce the full exact order"
        );
    }

    #[test]
    fn pages_are_disjoint_and_ordered() {
        let mut rng = Rng::seed_from_u64(131);
        let data = dataset::clustered(1000, 12, 8, 0.5, &mut rng).vectors;
        let idx = HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        let q = data.get(17).to_vec();
        let mut inc = IncrementalSearch::new(&idx, q, SearchParams::default().with_beam_width(64));
        let mut seen = std::collections::HashSet::new();
        let mut pages = Vec::new();
        for _ in 0..5 {
            let page = inc.next_page(10).unwrap();
            for n in &page {
                assert!(seen.insert(n.id), "id {} repeated across pages", n.id);
            }
            pages.push(page);
        }
        assert_eq!(pages.iter().map(Vec::len).sum::<usize>(), 50);
        // First page must start at the query point itself.
        assert_eq!(pages[0][0].id, 17);
    }

    #[test]
    fn exhausts_small_collections() {
        let mut rng = Rng::seed_from_u64(132);
        let data = dataset::gaussian(25, 4, &mut rng);
        let idx = FlatIndex::build(data, Metric::Euclidean).unwrap();
        let mut inc = IncrementalSearch::new(&idx, vec![0.0; 4], SearchParams::default());
        let all = inc.next_page(100).unwrap();
        assert_eq!(all.len(), 25);
        assert!(inc.next_neighbor().unwrap().is_none());
        assert!(inc.next_page(5).unwrap().is_empty());
    }

    #[test]
    fn early_pages_cheaper_than_full_sort_would_be() {
        // Behavioural proxy: the first page must not require fetching the
        // whole collection (next_k stays small).
        let mut rng = Rng::seed_from_u64(133);
        let data = dataset::gaussian(5000, 8, &mut rng);
        let idx = FlatIndex::build(data, Metric::Euclidean).unwrap();
        let mut inc = IncrementalSearch::new(&idx, vec![0.0; 8], SearchParams::default());
        inc.next_page(5).unwrap();
        assert!(
            inc.next_k <= 64,
            "first page fetched too much: next_k = {}",
            inc.next_k
        );
    }
}
