//! Batched query execution (§2.1 "batched queries", §2.3).
//!
//! Three classic batching gains are implemented: (1) *shared predicate
//! work* — queries carrying the same predicate share one bitmask
//! materialization and one plan selection, (2) *parallel similarity
//! projection* across OS threads (the CPU stand-in for the GPU batching of
//! [50]), and (3) *scratch reuse* — each worker thread owns one
//! [`SearchContext`] for its whole chunk, so only the first query on a
//! thread pays for visited-set and pool allocation.

use crate::exec::{execute_with, QueryContext};
use crate::optimizer::Planner;
use crate::plan::{Strategy, VectorQuery};
use std::collections::HashMap;
use vdb_core::bitset::BitSet;
use vdb_core::context::SearchContext;
use vdb_core::error::Result;
use vdb_core::topk::Neighbor;

/// Batch execution options.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (1 = sequential). The default is the machine's
    /// available parallelism; the effective count is always clamped to
    /// the batch size, so small batches never spawn idle workers.
    pub threads: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Execute a batch, returning per-query results aligned with the input.
pub fn execute_batch(
    ctx: &QueryContext<'_>,
    queries: &[VectorQuery],
    planner: &Planner,
    opts: &BatchOptions,
) -> Result<Vec<Vec<Neighbor>>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    // Group by predicate text: one plan + one bitmask per distinct
    // predicate (the batch's shared work).
    let mut plans: HashMap<String, (Strategy, Option<BitSet>)> = HashMap::new();
    for q in queries {
        let key = q.predicate.to_string();
        if plans.contains_key(&key) {
            continue;
        }
        let plan = planner.plan(ctx, q);
        let bits = match plan.strategy {
            Strategy::PreFilter | Strategy::BlockFirst if q.is_hybrid() => {
                Some(q.predicate.bitmask(ctx.attrs)?)
            }
            _ => None,
        };
        plans.insert(key, (plan.strategy, bits));
    }

    let threads = opts.threads.max(1).min(queries.len());
    let mut results: Vec<Result<Vec<Neighbor>>> = Vec::with_capacity(queries.len());
    if threads == 1 {
        let mut sctx = SearchContext::for_index(ctx.vectors.len());
        for q in queries {
            let (strategy, bits) = &plans[&q.predicate.to_string()];
            results.push(run_one(ctx, &mut sctx, q, *strategy, bits.as_ref()));
        }
    } else {
        let chunk = queries.len().div_ceil(threads);
        let mut slots: Vec<Option<Result<Vec<Neighbor>>>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let plans_ref = &plans;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let qs = &queries[t * chunk..(t * chunk + slot_chunk.len())];
                handles.push(scope.spawn(move || {
                    // One scratch context per worker, reused across its
                    // whole chunk.
                    let mut sctx = SearchContext::for_index(ctx.vectors.len());
                    for (slot, q) in slot_chunk.iter_mut().zip(qs) {
                        let (strategy, bits) = &plans_ref[&q.predicate.to_string()];
                        *slot = Some(run_one(ctx, &mut sctx, q, *strategy, bits.as_ref()));
                    }
                }));
            }
            for h in handles {
                h.join().expect("batch worker panicked");
            }
        });
        results.extend(slots.into_iter().map(|s| s.expect("every slot filled")));
    }
    results.into_iter().collect()
}

/// Run one query, reusing a shared bitmask when the strategy consumes one
/// and the caller's scratch context for every search.
fn run_one(
    ctx: &QueryContext<'_>,
    sctx: &mut SearchContext,
    q: &VectorQuery,
    strategy: Strategy,
    bits: Option<&BitSet>,
) -> Result<Vec<Neighbor>> {
    match (strategy, bits) {
        (Strategy::BlockFirst, Some(bits)) => ctx
            .index
            .search_blocked_with(sctx, &q.vector, q.k, &q.params, bits),
        (Strategy::PreFilter, Some(bits)) => {
            let metric = ctx.index.metric();
            sctx.pool.reset(q.k.max(1));
            for row in bits.iter() {
                sctx.pool.push(Neighbor::new(
                    row,
                    metric.distance(&q.vector, ctx.vectors.get(row)),
                ));
            }
            let mut out = sctx.pool.drain_sorted();
            out.truncate(q.k);
            Ok(out)
        }
        _ => execute_with(ctx, sctx, q, strategy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::optimizer::PlannerMode;
    use vdb_core::attr::AttrType;
    use vdb_core::dataset;
    use vdb_core::index::SearchParams;
    use vdb_core::metric::Metric;
    use vdb_core::rng::Rng;
    use vdb_core::vector::Vectors;
    use vdb_index_graph::{HnswConfig, HnswIndex};
    use vdb_storage::{AttributeStore, Column};

    struct Fixture {
        vectors: Vectors,
        attrs: AttributeStore,
        index: HnswIndex,
        queries: Vectors,
    }

    fn fixture() -> Fixture {
        let mut rng = Rng::seed_from_u64(111);
        let data = dataset::clustered(1200, 12, 8, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 32, 0.05, &mut rng);
        let mut attrs = AttributeStore::new();
        attrs
            .add_column(
                Column::from_values(
                    "x",
                    AttrType::Int,
                    dataset::int_column(1200, 0, 100, &mut rng),
                )
                .unwrap(),
            )
            .unwrap();
        let index =
            HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        Fixture {
            vectors: data,
            attrs,
            index,
            queries,
        }
    }

    fn batch(f: &Fixture) -> Vec<VectorQuery> {
        f.queries
            .iter()
            .map(|q| {
                VectorQuery::knn(q.to_vec(), 10)
                    .filtered(Predicate::lt("x", 50))
                    .with_params(SearchParams::default().with_beam_width(64))
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        let qs = batch(&f);
        let batched = execute_batch(&ctx, &qs, &planner, &BatchOptions { threads: 4 }).unwrap();
        let sequential = execute_batch(&ctx, &qs, &planner, &BatchOptions { threads: 1 }).unwrap();
        assert_eq!(batched.len(), qs.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b, s, "parallelism must not change results");
        }
    }

    #[test]
    fn results_respect_predicates() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::RuleBased);
        let qs = batch(&f);
        let out = execute_batch(&ctx, &qs, &planner, &BatchOptions::default()).unwrap();
        for (q, hits) in qs.iter().zip(&out) {
            assert!(hits.iter().all(|n| q.predicate.eval(&f.attrs, n.id)));
        }
    }

    #[test]
    fn mixed_predicates_in_one_batch() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        let mut qs = Vec::new();
        for (i, q) in f.queries.iter().enumerate().take(12) {
            let pred = match i % 3 {
                0 => Predicate::True,
                1 => Predicate::lt("x", 30),
                _ => Predicate::gt("x", 70),
            };
            qs.push(VectorQuery::knn(q.to_vec(), 5).filtered(pred));
        }
        let out = execute_batch(&ctx, &qs, &planner, &BatchOptions::default()).unwrap();
        assert_eq!(out.len(), 12);
        for (q, hits) in qs.iter().zip(&out) {
            assert!(hits.iter().all(|n| q.predicate.eval(&f.attrs, n.id)));
            assert!(!hits.is_empty());
        }
    }

    #[test]
    fn empty_batch_ok() {
        let f = fixture();
        let ctx = QueryContext::new(&f.vectors, &f.attrs, &f.index).unwrap();
        let planner = Planner::new(PlannerMode::CostBased);
        assert!(execute_batch(&ctx, &[], &planner, &BatchOptions::default())
            .unwrap()
            .is_empty());
    }
}
