//! Exhaustive equivalence suite: every kernel backend available on this
//! host (portable scalar always; AVX2+FMA or NEON when detected) against
//! the naive scalar references, across dimensions 1..=67, special values
//! (NaN, ±∞), and empty slices.
//!
//! `kernel::kernel_sets()` ignores the `VDB_FORCE_SCALAR` escape hatch, so
//! the scalar fallback is exercised unconditionally even on SIMD-capable CI
//! runners, and the SIMD set is exercised whenever the CPU supports it.

use vdb_core::kernel::{self, Kernels};
use vdb_core::rng::Rng;

/// Relative tolerance: SIMD backends reassociate sums and contract with
/// FMA, so results differ from the naive reference by rounding only.
const RTOL: f32 = 1e-4;

fn close(got: f32, want: f32, what: &str) {
    assert!(
        (got - want).abs() <= RTOL * want.abs().max(1.0),
        "{what}: got {got}, want {want}"
    );
}

fn random_vec(dim: usize, rng: &mut Rng) -> Vec<f32> {
    (0..dim).map(|_| rng.normal_f32()).collect()
}

/// Every (backend, dim) pair in 1..=67 — covers all SIMD main-loop and
/// tail-length combinations (8/16-wide x86 blocks, 4/8-wide NEON blocks,
/// and every remainder).
fn for_each_set_and_dim(mut f: impl FnMut(&'static Kernels, usize)) {
    for set in kernel::kernel_sets() {
        for dim in 1..=67 {
            f(set, dim);
        }
    }
}

#[test]
fn pairwise_kernels_match_reference() {
    let mut rng = Rng::seed_from_u64(0xE0);
    for_each_set_and_dim(|set, dim| {
        let a = random_vec(dim, &mut rng);
        let b = random_vec(dim, &mut rng);
        close(
            (set.l2_sq)(&a, &b),
            kernel::l2_sq_scalar(&a, &b),
            &format!("{} l2_sq dim {dim}", set.name),
        );
        close(
            (set.dot)(&a, &b),
            kernel::dot_scalar(&a, &b),
            &format!("{} dot dim {dim}", set.name),
        );
        close(
            (set.cosine)(&a, &b),
            kernel::cosine_scalar(&a, &b),
            &format!("{} cosine dim {dim}", set.name),
        );
    });
}

#[test]
fn x4_kernels_match_reference() {
    let mut rng = Rng::seed_from_u64(0xE1);
    for_each_set_and_dim(|set, dim| {
        let q = random_vec(dim, &mut rng);
        let rows: Vec<Vec<f32>> = (0..4).map(|_| random_vec(dim, &mut rng)).collect();
        let l2 = (set.l2_sq_x4)(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        let dp = (set.dot_x4)(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        for i in 0..4 {
            close(
                l2[i],
                kernel::l2_sq_scalar(&q, &rows[i]),
                &format!("{} l2_sq_x4[{i}] dim {dim}", set.name),
            );
            close(
                dp[i],
                kernel::dot_scalar(&q, &rows[i]),
                &format!("{} dot_x4[{i}] dim {dim}", set.name),
            );
        }
    });
}

#[test]
fn batch_kernels_match_reference() {
    let mut rng = Rng::seed_from_u64(0xE2);
    for set in kernel::kernel_sets() {
        for dim in 1..=67 {
            // Row counts around the 4-row blocking boundary.
            for n in [1usize, 3, 4, 5, 9] {
                let q = random_vec(dim, &mut rng);
                let rows = random_vec(dim * n, &mut rng);
                let mut out = vec![0.0f32; n];
                (set.l2_sq_batch)(&q, &rows, dim, &mut out);
                for i in 0..n {
                    close(
                        out[i],
                        kernel::l2_sq_scalar(&q, &rows[i * dim..(i + 1) * dim]),
                        &format!("{} l2_sq_batch dim {dim} n {n} row {i}", set.name),
                    );
                }
                (set.dot_batch)(&q, &rows, dim, &mut out);
                for i in 0..n {
                    close(
                        out[i],
                        kernel::dot_scalar(&q, &rows[i * dim..(i + 1) * dim]),
                        &format!("{} dot_batch dim {dim} n {n} row {i}", set.name),
                    );
                }
            }
        }
    }
}

#[test]
fn adc_scan_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xE3);
    for set in kernel::kernel_sets() {
        // m spans below/at/above the 8-subspace AVX2 gather width; ksub
        // spans tiny to full byte range.
        for &m in &[1usize, 2, 7, 8, 9, 16, 23] {
            for &ksub in &[1usize, 2, 16, 256] {
                let table: Vec<f32> = (0..m * ksub).map(|_| rng.f32() * 4.0).collect();
                for &n in &[1usize, 3, 4, 5, 11] {
                    let codes: Vec<u8> = (0..m * n).map(|_| rng.below(ksub) as u8).collect();
                    let mut out = vec![0.0f32; n];
                    (set.adc_scan)(&table, ksub, &codes, m, &mut out);
                    let mut want = vec![0.0f32; n];
                    kernel::adc_scan_scalar(&table, ksub, &codes, m, &mut want);
                    for i in 0..n {
                        close(
                            out[i],
                            want[i],
                            &format!("{} adc_scan m {m} ksub {ksub} row {i}", set.name),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn adc_scan_clamps_out_of_range_codes() {
    // Codes beyond ksub-1 (possible only with corrupted data) must not
    // read outside the table; the documented behavior is clamping.
    for set in kernel::kernel_sets() {
        let (m, ksub) = (9usize, 16usize);
        let table: Vec<f32> = (0..m * ksub).map(|i| i as f32).collect();
        let codes = vec![0xFFu8; m * 3];
        let clamped: Vec<u8> = vec![(ksub - 1) as u8; m * 3];
        let mut out = vec![0.0f32; 3];
        let mut want = vec![0.0f32; 3];
        (set.adc_scan)(&table, ksub, &codes, m, &mut out);
        kernel::adc_scan_scalar(&table, ksub, &clamped, m, &mut want);
        for i in 0..3 {
            close(out[i], want[i], &format!("{} adc clamp row {i}", set.name));
        }
    }
}

#[test]
fn sq8_kernels_match_reference() {
    let mut rng = Rng::seed_from_u64(0xE4);
    for_each_set_and_dim(|set, dim| {
        let q = random_vec(dim, &mut rng);
        let min: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let step: Vec<f32> = (0..dim).map(|_| rng.f32() * 0.1).collect();
        let n = 5usize;
        let codes: Vec<u8> = (0..dim * n).map(|_| rng.below(256) as u8).collect();
        for i in 0..n {
            let code = &codes[i * dim..(i + 1) * dim];
            close(
                (set.sq8_l2)(&q, code, &min, &step),
                kernel::sq8_l2_sq_scalar(&q, code, &min, &step),
                &format!("{} sq8_l2 dim {dim} row {i}", set.name),
            );
        }
        let mut out = vec![0.0f32; n];
        (set.sq8_l2_batch)(&q, &codes, &min, &step, &mut out);
        for i in 0..n {
            close(
                out[i],
                kernel::sq8_l2_sq_scalar(&q, &codes[i * dim..(i + 1) * dim], &min, &step),
                &format!("{} sq8_l2_batch dim {dim} row {i}", set.name),
            );
        }
    });
}

#[test]
fn special_values_propagate_identically() {
    // NaN/∞ handling must agree bit-for-bit in kind (NaN vs ∞ vs finite)
    // between every backend and the reference.
    let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -1.5];
    for set in kernel::kernel_sets() {
        for dim in [1usize, 4, 8, 9, 17, 33] {
            for (si, &s) in specials.iter().enumerate() {
                for pos in [0, dim / 2, dim - 1] {
                    let mut a = vec![1.0f32; dim];
                    let b = vec![2.0f32; dim];
                    a[pos] = s;
                    for (name, got, want) in [
                        ("l2_sq", (set.l2_sq)(&a, &b), kernel::l2_sq_scalar(&a, &b)),
                        ("dot", (set.dot)(&a, &b), kernel::dot_scalar(&a, &b)),
                        (
                            "cosine",
                            (set.cosine)(&a, &b),
                            kernel::cosine_scalar(&a, &b),
                        ),
                    ] {
                        let what = format!("{} {name} special #{si} dim {dim} pos {pos}", set.name);
                        if want.is_nan() {
                            assert!(got.is_nan(), "{what}: got {got}, want NaN");
                        } else if want.is_infinite() {
                            assert_eq!(got, want, "{what}");
                        } else {
                            close(got, want, &what);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn empty_slices_are_well_defined() {
    let e: [f32; 0] = [];
    for set in kernel::kernel_sets() {
        assert_eq!((set.l2_sq)(&e, &e), 0.0, "{} empty l2", set.name);
        assert_eq!((set.dot)(&e, &e), 0.0, "{} empty dot", set.name);
        assert_eq!(
            (set.cosine)(&e, &e),
            1.0,
            "{} empty cosine (zero denom)",
            set.name
        );
        let d = (set.l2_sq_x4)(&e, &e, &e, &e, &e);
        assert_eq!(d, [0.0; 4], "{} empty x4", set.name);
        let mut out: [f32; 0] = [];
        (set.l2_sq_batch)(&e, &e, 0, &mut out);
        (set.adc_scan)(&e, 0, &[], 0, &mut out);
        (set.sq8_l2_batch)(&e, &[], &e, &e, &mut out);
        assert_eq!((set.sq8_l2)(&e, &[], &e, &e), 0.0, "{} empty sq8", set.name);
    }
    // The public dispatched entry points also accept empty operands.
    assert_eq!(kernel::l2_sq(&e, &e), 0.0);
    assert_eq!(kernel::adc_scan_scalar(&e, 0, &[], 0, &mut []), ());
    let mut out = [7.0f32; 2];
    kernel::adc_scan(&[], 0, &[0, 0], 1, &mut out);
    assert_eq!(out, [0.0; 2], "m>0 but empty table zeroes the output");
}

#[test]
fn force_scalar_env_selects_scalar_backend() {
    // The dispatch decision is cached per process, so drive a subprocess
    // with the escape hatch set and check the reported backend.
    let exe = std::env::current_exe().unwrap();
    let output = std::process::Command::new(exe)
        .args([
            "--exact",
            "helper_print_dispatch",
            "--nocapture",
            "--include-ignored",
        ])
        .env("VDB_FORCE_SCALAR", "1")
        .output()
        .expect("re-exec test binary");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("dispatch=scalar"),
        "forced-scalar subprocess reported: {stdout}"
    );
}

/// Not a test of this process: re-executed by
/// `force_scalar_env_selects_scalar_backend` with `VDB_FORCE_SCALAR=1`.
#[test]
#[ignore = "helper for the force-scalar subprocess test"]
fn helper_print_dispatch() {
    println!("dispatch={}", kernel::dispatch_name());
}
