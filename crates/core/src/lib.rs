//! # vdb-core
//!
//! Core building blocks of the `vectordb-rs` workspace, a from-scratch
//! implementation of the vector-database techniques surveyed in
//! *"Vector Database Management Techniques and Systems"* (SIGMOD 2024):
//!
//! - [`vector::Vectors`] — validated dense `f32` vector storage,
//! - [`metric::Metric`] — the similarity-score taxonomy of §2.1 (basic
//!   scores, learned scores) under a single lower-is-better convention,
//! - [`kernel`] — distance/scan kernels with runtime SIMD dispatch
//!   (AVX2+FMA, NEON, portable blocked fallback),
//! - [`topk`] — bounded top-k selection and scatter-gather merging,
//! - [`index::VectorIndex`] — the interface every index in the workspace
//!   implements, including filtered (hybrid) and range search,
//! - [`flat::FlatIndex`] — the exact brute-force baseline,
//! - [`recall`] — ground truth and result-quality metrics,
//! - [`dataset`] — seeded synthetic vector/attribute generators,
//! - [`analysis`] — curse-of-dimensionality instrumentation,
//! - [`score`] — aggregate (multi-vector) and learned scores,
//! - [`rng`] — vendored deterministic RNG so index builds are bit-stable,
//! - [`linalg`] — small dense linear algebra (PCA, rotations, inverses),
//! - [`bitset`] — blocking bitmasks and O(1)-reset visited sets,
//! - [`context`] — reusable per-query search scratch (visited set,
//!   pools, buffers) shared by every index and the batched executor,
//! - [`parallel`] — scoped-thread fork/join helpers and [`parallel::BuildOptions`]
//!   for multi-threaded index construction (no rayon),
//! - [`sync`] — poison-free std mutex shim (no external crates),
//! - [`attr`] — structured attribute values for hybrid queries.

#![warn(missing_docs)]
// `deny` (not `forbid`) so the two SIMD backend modules in `kernel` can
// opt back in with a module-level `allow`; everything else stays safe code.
#![deny(unsafe_code)]
// Index loops over parallel slices/pages are clearer than zipped
// iterator chains in the kernels and (de)serializers below.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod analysis;
pub mod attr;
pub mod bitset;
pub mod context;
pub mod dataset;
pub mod error;
pub mod flat;
pub mod index;
pub mod kernel;
pub mod linalg;
pub mod metric;
pub mod parallel;
pub mod recall;
pub mod rng;
pub mod score;
pub mod sync;
pub mod topk;
pub mod vector;

pub use attr::{AttrType, AttrValue};
pub use context::{ContextPool, SearchContext};
pub use error::{Error, Result};
pub use flat::FlatIndex;
pub use index::{DynamicIndex, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex};
pub use metric::Metric;
pub use parallel::BuildOptions;
pub use rng::Rng;
pub use topk::Neighbor;
pub use vector::Vectors;
