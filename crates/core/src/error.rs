//! Error types shared across the vectordb-rs workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for vector-database operations.
#[derive(Debug)]
pub enum Error {
    /// A vector had a different dimensionality than the collection expects.
    DimensionMismatch {
        /// Dimensionality the collection/index expects.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A vector contained a NaN or infinite component.
    NonFiniteVector {
        /// Index of the offending component.
        position: usize,
    },
    /// An operation required a non-empty collection.
    EmptyCollection,
    /// A referenced vector, collection, or index does not exist.
    NotFound(String),
    /// An identifier is already in use.
    AlreadyExists(String),
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// A query was malformed (bad predicate, unknown attribute, ...).
    InvalidQuery(String),
    /// Parsing a textual query failed.
    Parse(String),
    /// Parsing a textual query failed at a known character offset — the
    /// typed form surfaced by the VQL parser (and over the wire), so
    /// clients can point at the offending token instead of grepping a
    /// message string.
    ParseAt {
        /// What went wrong.
        msg: String,
        /// Character offset of the offending token in the statement.
        pos: usize,
    },
    /// The storage layer failed.
    Io(std::io::Error),
    /// Data on disk is corrupt or has an unexpected format.
    Corrupt(String),
    /// The operation is not supported by this index or configuration.
    Unsupported(String),
    /// A serving layer shed this request under load (admission control);
    /// the caller should back off and retry.
    Busy,
    /// A serving layer shed this request because the target collection's
    /// token-bucket rate limit ran dry. Distinct from [`Error::Busy`]
    /// (executor-queue overload): a rate-limited client should pace itself
    /// to the configured budget, not just retry after a short jittered
    /// backoff. Historically this travelled on the wire as `Busy`; new
    /// decoders see a dedicated error code.
    RateLimited,
    /// A transport failure cut the connection after a request had been
    /// written but before its response arrived: the outcome on the server
    /// is unknown, so the client refused to auto-retry a non-idempotent
    /// operation. Callers whose operation is idempotent at the application
    /// level (keyed insert/delete overwrite by key) may safely re-issue it.
    MaybeApplied(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::NonFiniteVector { position } => {
                write!(
                    f,
                    "vector has a non-finite component at position {position}"
                )
            }
            Error::EmptyCollection => write!(f, "operation requires a non-empty collection"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::AlreadyExists(what) => write!(f, "already exists: {what}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::ParseAt { msg, pos } => write!(f, "parse error at {pos}: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Error::Busy => write!(f, "server busy: request shed by admission control"),
            Error::RateLimited => {
                write!(f, "rate limited: collection's request budget exhausted")
            }
            Error::MaybeApplied(msg) => {
                write!(f, "request outcome unknown (connection lost mid-request, not auto-retried): {msg}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::DimensionMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 3");
        let e = Error::NotFound("collection `docs`".into());
        assert!(e.to_string().contains("docs"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
