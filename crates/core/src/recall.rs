//! Ground-truth computation and result-quality metrics (precision/recall,
//! §2.1 "the quality of a result set").

use crate::error::Result;
use crate::flat::FlatIndex;
use crate::index::{SearchParams, VectorIndex};
use crate::metric::Metric;
use crate::topk::Neighbor;
use crate::vector::Vectors;

/// Exact k-NN ground truth for a query set.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `truth[q]` holds the exact `k` nearest neighbors of query `q`.
    pub truth: Vec<Vec<Neighbor>>,
    /// The `k` the truth was computed for.
    pub k: usize,
}

impl GroundTruth {
    /// Compute exact top-`k` for every query by brute force.
    pub fn compute(data: &Vectors, queries: &Vectors, metric: Metric, k: usize) -> Result<Self> {
        let flat = FlatIndex::build(data.clone(), metric)?;
        let params = SearchParams::default();
        let truth = queries
            .iter()
            .map(|q| flat.search(q, k, &params))
            .collect::<Result<Vec<_>>>()?;
        Ok(GroundTruth { truth, k })
    }

    /// Recall@k of one result list against query `q`'s truth: the fraction
    /// of true neighbors present in the result.
    pub fn recall_one(&self, q: usize, result: &[Neighbor]) -> f64 {
        recall(&self.truth[q], result)
    }

    /// Mean recall@k over a batch of result lists (aligned with queries).
    pub fn recall_batch(&self, results: &[Vec<Neighbor>]) -> f64 {
        assert_eq!(results.len(), self.truth.len());
        if results.is_empty() {
            return 1.0;
        }
        let sum: f64 = results
            .iter()
            .enumerate()
            .map(|(q, r)| self.recall_one(q, r))
            .sum();
        sum / results.len() as f64
    }
}

/// Recall of `result` against `truth`: |truth ∩ result| / |truth|.
/// Duplicates in `result` are counted once.
pub fn recall(truth: &[Neighbor], result: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.id).collect();
    let hit: std::collections::HashSet<usize> = result
        .iter()
        .map(|n| n.id)
        .filter(|id| truth_ids.contains(id))
        .collect();
    hit.len() as f64 / truth_ids.len() as f64
}

/// Precision of `result` against `truth`: |truth ∩ result| / |result|.
pub fn precision(truth: &[Neighbor], result: &[Neighbor]) -> f64 {
    if result.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.id).collect();
    let hits = result.iter().filter(|n| truth_ids.contains(&n.id)).count();
    hits as f64 / result.len() as f64
}

/// Verify the (c,k)-search guarantee from §2.1: no returned distance may be
/// worse than `(1 + c)` times the true k-th best distance. Returns the
/// fraction of results satisfying the bound.
pub fn ck_satisfaction(truth: &[Neighbor], result: &[Neighbor], c: f32) -> f64 {
    if result.is_empty() {
        return 1.0;
    }
    let Some(kth) = truth.last() else { return 1.0 };
    let bound = kth.dist * (1.0 + c);
    let ok = result.iter().filter(|n| n.dist <= bound).count();
    ok as f64 / result.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::rng::Rng;

    #[test]
    fn recall_and_precision_basics() {
        let truth = vec![
            Neighbor::new(0, 0.1),
            Neighbor::new(1, 0.2),
            Neighbor::new(2, 0.3),
        ];
        let result = vec![Neighbor::new(0, 0.1), Neighbor::new(9, 0.5)];
        assert!((recall(&truth, &result) - 1.0 / 3.0).abs() < 1e-12);
        assert!((precision(&truth, &result) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&[], &result), 1.0);
        assert_eq!(precision(&truth, &[]), 1.0);
    }

    #[test]
    fn duplicate_results_counted_once() {
        let truth = vec![Neighbor::new(0, 0.1), Neighbor::new(1, 0.2)];
        let result = vec![Neighbor::new(0, 0.1), Neighbor::new(0, 0.1)];
        assert!((recall(&truth, &result) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_matches_flat_search() {
        let mut rng = Rng::seed_from_u64(10);
        let data = dataset::gaussian(300, 12, &mut rng);
        let queries = dataset::split_queries(&data, 5, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        assert_eq!(gt.truth.len(), 5);
        for t in &gt.truth {
            assert_eq!(t.len(), 10);
            // Truth must be sorted best-first.
            assert!(t.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
        // A perfect result has recall 1.
        let results = gt.truth.clone();
        assert_eq!(gt.recall_batch(&results), 1.0);
    }

    #[test]
    fn ck_bound() {
        let truth = vec![Neighbor::new(0, 1.0), Neighbor::new(1, 2.0)];
        // Distances within (1 + 0.5) * 2.0 = 3.0 satisfy the bound.
        let result = vec![Neighbor::new(5, 2.9), Neighbor::new(6, 3.5)];
        assert!((ck_satisfaction(&truth, &result, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(ck_satisfaction(&truth, &[], 0.5), 1.0);
    }
}
