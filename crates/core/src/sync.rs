//! Poison-free locks with a `lock() -> guard` API, plus the
//! [`Published`] cell used for atomic index publication.
//!
//! The workspace builds fully offline with no external crates, so these
//! thin wrappers over [`std::sync::Mutex`] / [`std::sync::RwLock`]
//! replace the `parking_lot` dependency while keeping its ergonomic
//! call sites. Poisoning is deliberately swallowed: every guarded value
//! in this workspace is plain data (page maps, counters, scratch pools)
//! whose invariants hold between individual operations, so a panic
//! mid-critical-section cannot leave state worth quarantining.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Access the guarded value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new unlocked reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Access the guarded value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// An epoch-stamped publication cell: readers borrow a consistent
/// snapshot of `T` while a writer prepares a replacement off to the
/// side and installs it atomically (the arc-swap pattern, built from
/// an [`RwLock`] so the workspace stays dependency-free).
///
/// The epoch counter increments on every install or in-place update,
/// so observers can cheaply detect "something was republished since I
/// last looked" without holding the lock.
#[derive(Debug, Default)]
pub struct Published<T> {
    cell: RwLock<T>,
    epoch: AtomicU64,
}

impl<T> Published<T> {
    /// Publish an initial value at epoch 0.
    pub fn new(value: T) -> Self {
        Published {
            cell: RwLock::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// Borrow the currently-published value for reading. Any number of
    /// readers share the snapshot; an install waits for them to finish
    /// and readers arriving during an install see either the old or the
    /// new value in full — never a torn mix.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.cell.read()
    }

    /// Atomically replace the published value, returning the previous
    /// one. The exclusive section is a pointer-sized swap: prepare the
    /// replacement *before* calling install.
    pub fn install(&self, value: T) -> T {
        let mut guard = self.cell.write();
        let old = std::mem::replace(&mut *guard, value);
        self.epoch.fetch_add(1, Ordering::Release);
        old
    }

    /// Mutate the published value in place under the write lock (used
    /// by incremental maintenance, where the update is small and an
    /// off-to-the-side rebuild would cost more than the pause).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.cell.write();
        let out = f(&mut *guard);
        self.epoch.fetch_add(1, Ordering::Release);
        out
    }

    /// The number of publications so far (installs + in-place updates).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Access the published value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.cell.get_mut()
    }

    /// Consume the cell, returning the published value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would error here; the shim recovers.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn published_install_bumps_epoch_and_returns_old() {
        let p = Published::new("old");
        assert_eq!(p.epoch(), 0);
        assert_eq!(*p.read(), "old");
        let prev = p.install("new");
        assert_eq!(prev, "old");
        assert_eq!(*p.read(), "new");
        assert_eq!(p.epoch(), 1);
        p.update(|v| *v = "patched");
        assert_eq!(*p.read(), "patched");
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn published_readers_never_see_torn_state() {
        // Publish (a, a) pairs; concurrent readers must always observe
        // a matched pair even while installs race them.
        let p = std::sync::Arc::new(Published::new((0u64, 0u64)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let p = p.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = p.read();
                        assert_eq!(g.0, g.1, "torn publication observed");
                    }
                })
            })
            .collect();
        for i in 1..=500u64 {
            p.install((i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(p.epoch(), 500);
    }
}
