//! Poison-free mutex with a `lock() -> guard` API.
//!
//! The workspace builds fully offline with no external crates, so this
//! thin wrapper over [`std::sync::Mutex`] replaces the `parking_lot`
//! dependency while keeping its ergonomic call sites. Poisoning is
//! deliberately swallowed: every guarded value in this workspace is
//! plain data (page maps, counters, scratch pools) whose invariants
//! hold between individual operations, so a panic mid-critical-section
//! cannot leave state worth quarantining.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Access the guarded value through exclusive borrow (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would error here; the shim recovers.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
