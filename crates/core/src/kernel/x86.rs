//! AVX2+FMA kernels for `x86_64` (`std::arch` intrinsics).
//!
//! Every `#[target_feature]` function here is reachable only through
//! [`KERNELS`], which the dispatcher selects strictly after
//! `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
//! succeeds, so the safe wrappers below never execute on a CPU that lacks
//! the instructions. All loads are unaligned (`loadu`); slice-length
//! contracts are enforced by the wrappers in the parent module.
//!
//! This is the only module in `vdb-core` allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)`): intrinsics cannot be called from safe
//! code, and each function's safety argument is the feature-gated dispatch
//! described above plus in-bounds pointer arithmetic over the checked
//! slices.
#![allow(unsafe_code)]

use super::dispatch::Kernels;
use super::finish_cosine;
use core::arch::x86_64::*;

/// The AVX2+FMA kernel set. Only installed after runtime feature detection.
pub static KERNELS: Kernels = Kernels {
    name: "avx2+fma",
    l2_sq,
    dot,
    cosine,
    l2_sq_x4,
    dot_x4,
    l2_sq_batch,
    dot_batch,
    adc_scan,
    sq8_l2,
    sq8_l2_batch,
};

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_avx2(a, b) }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_avx2(a, b) }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    unsafe { cosine_avx2(a, b) }
}

fn l2_sq_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    unsafe { l2_sq_x4_avx2(q, r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), r3.as_ptr()) }
}

fn dot_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    unsafe { dot_x4_avx2(q, r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), r3.as_ptr()) }
}

fn l2_sq_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    unsafe { l2_sq_batch_avx2(q, rows, dim, out) }
}

fn dot_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    unsafe { dot_batch_avx2(q, rows, dim, out) }
}

fn adc_scan(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    unsafe { adc_scan_avx2(table, ksub, codes, m, out) }
}

fn sq8_l2(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> f32 {
    unsafe { sq8_l2_avx2(query, code, min, step) }
}

fn sq8_l2_batch(query: &[f32], codes: &[u8], min: &[f32], step: &[f32], out: &mut [f32]) {
    unsafe { sq8_l2_batch_avx2(query, codes, min, step, out) }
}

/// Horizontal sum of the eight lanes of `v`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        let d1 = _mm256_sub_ps(
            _mm256_loadu_ps(ap.add(i + 8)),
            _mm256_loadu_ps(bp.add(i + 8)),
        );
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        i += 16;
    }
    if i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut acc = hsum(_mm256_add_ps(acc0, acc1));
    while i < n {
        let d = *ap.add(i) - *bp.add(i);
        acc += d * d;
        i += 1;
    }
    acc
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(ap.add(i + 8)),
            _mm256_loadu_ps(bp.add(i + 8)),
            acc1,
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        i += 8;
    }
    let mut acc = hsum(_mm256_add_ps(acc0, acc1));
    while i < n {
        acc += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    acc
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn cosine_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut dd = _mm256_setzero_ps();
    let mut na = _mm256_setzero_ps();
    let mut nb = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(ap.add(i));
        let bv = _mm256_loadu_ps(bp.add(i));
        dd = _mm256_fmadd_ps(av, bv, dd);
        na = _mm256_fmadd_ps(av, av, na);
        nb = _mm256_fmadd_ps(bv, bv, nb);
        i += 8;
    }
    let (mut sd, mut sa, mut sb) = (hsum(dd), hsum(na), hsum(nb));
    while i < n {
        let (x, y) = (*ap.add(i), *bp.add(i));
        sd += x * y;
        sa += x * x;
        sb += y * y;
        i += 1;
    }
    finish_cosine(sd, sa, sb)
}

/// Four-row squared L2 with one broadcast query load per eight dimensions.
///
/// # Safety
/// Each row pointer must reference at least `q.len()` readable floats.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn l2_sq_x4_avx2(
    q: &[f32],
    r0: *const f32,
    r1: *const f32,
    r2: *const f32,
    r3: *const f32,
) -> [f32; 4] {
    let n = q.len();
    let qp = q.as_ptr();
    let mut a0 = _mm256_setzero_ps();
    let mut a1 = _mm256_setzero_ps();
    let mut a2 = _mm256_setzero_ps();
    let mut a3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let qv = _mm256_loadu_ps(qp.add(i));
        let d0 = _mm256_sub_ps(qv, _mm256_loadu_ps(r0.add(i)));
        let d1 = _mm256_sub_ps(qv, _mm256_loadu_ps(r1.add(i)));
        let d2 = _mm256_sub_ps(qv, _mm256_loadu_ps(r2.add(i)));
        let d3 = _mm256_sub_ps(qv, _mm256_loadu_ps(r3.add(i)));
        a0 = _mm256_fmadd_ps(d0, d0, a0);
        a1 = _mm256_fmadd_ps(d1, d1, a1);
        a2 = _mm256_fmadd_ps(d2, d2, a2);
        a3 = _mm256_fmadd_ps(d3, d3, a3);
        i += 8;
    }
    let mut out = [hsum(a0), hsum(a1), hsum(a2), hsum(a3)];
    while i < n {
        let qi = *qp.add(i);
        let e0 = qi - *r0.add(i);
        let e1 = qi - *r1.add(i);
        let e2 = qi - *r2.add(i);
        let e3 = qi - *r3.add(i);
        out[0] += e0 * e0;
        out[1] += e1 * e1;
        out[2] += e2 * e2;
        out[3] += e3 * e3;
        i += 1;
    }
    out
}

/// Four-row dot product; see [`l2_sq_x4_avx2`].
///
/// # Safety
/// Each row pointer must reference at least `q.len()` readable floats.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_x4_avx2(
    q: &[f32],
    r0: *const f32,
    r1: *const f32,
    r2: *const f32,
    r3: *const f32,
) -> [f32; 4] {
    let n = q.len();
    let qp = q.as_ptr();
    let mut a0 = _mm256_setzero_ps();
    let mut a1 = _mm256_setzero_ps();
    let mut a2 = _mm256_setzero_ps();
    let mut a3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let qv = _mm256_loadu_ps(qp.add(i));
        a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0.add(i)), a0);
        a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1.add(i)), a1);
        a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r2.add(i)), a2);
        a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r3.add(i)), a3);
        i += 8;
    }
    let mut out = [hsum(a0), hsum(a1), hsum(a2), hsum(a3)];
    while i < n {
        let qi = *qp.add(i);
        out[0] += qi * *r0.add(i);
        out[1] += qi * *r1.add(i);
        out[2] += qi * *r2.add(i);
        out[3] += qi * *r3.add(i);
        i += 1;
    }
    out
}

/// Prefetch the cache line at `rows[offset]` if it exists (`wrapping_add`
/// keeps the address computation defined even when the hint runs past the
/// end; the prefetch itself never faults).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn prefetch(rows: &[f32], offset: usize) {
    _mm_prefetch::<_MM_HINT_T0>(rows.as_ptr().wrapping_add(offset) as *const i8);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn l2_sq_batch_avx2(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let n = out.len();
    let base = rows.as_ptr();
    let mut r = 0;
    while r + 4 <= n {
        prefetch(rows, (r + 4) * dim);
        prefetch(rows, (r + 5) * dim);
        let d = l2_sq_x4_avx2(
            q,
            base.add(r * dim),
            base.add((r + 1) * dim),
            base.add((r + 2) * dim),
            base.add((r + 3) * dim),
        );
        out[r..r + 4].copy_from_slice(&d);
        r += 4;
    }
    while r < n {
        out[r] = l2_sq_avx2(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_batch_avx2(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let n = out.len();
    let base = rows.as_ptr();
    let mut r = 0;
    while r + 4 <= n {
        prefetch(rows, (r + 4) * dim);
        prefetch(rows, (r + 5) * dim);
        let d = dot_x4_avx2(
            q,
            base.add(r * dim),
            base.add((r + 1) * dim),
            base.add((r + 2) * dim),
            base.add((r + 3) * dim),
        );
        out[r..r + 4].copy_from_slice(&d);
        r += 4;
    }
    while r < n {
        out[r] = dot_avx2(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// ADC scan: for each code, evaluate eight subspaces per iteration with a
/// vector gather (`codes -> cvtepu8 -> +sub*ksub -> i32gather_ps`), the
/// QuickADC-style replacement for eight serial table lookups. Sub-codes are
/// clamped to `ksub-1` so corrupted codes cannot index outside the table.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn adc_scan_avx2(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    let n = out.len();
    let tp = table.as_ptr();
    let cp = codes.as_ptr();
    let chunks = m / 8;
    // Lane offsets into the flattened m × ksub table for eight consecutive
    // subspaces: [0, ksub, 2*ksub, ..., 7*ksub].
    let lane_base = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(ksub as i32),
    );
    let clamp = _mm256_set1_epi32(ksub as i32 - 1);
    let mut i = 0;
    while i < n {
        let code = cp.add(i * m);
        _mm_prefetch::<_MM_HINT_T0>(cp.wrapping_add((i + 4) * m) as *const i8);
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            // Eight sub-codes, zero-extended to i32 and clamped to the
            // codebook range.
            let bytes = _mm_loadl_epi64(code.add(c * 8) as *const __m128i);
            let sub_codes = _mm256_min_epi32(_mm256_cvtepu8_epi32(bytes), clamp);
            let idx = _mm256_add_epi32(
                sub_codes,
                _mm256_add_epi32(lane_base, _mm256_set1_epi32((c * 8 * ksub) as i32)),
            );
            acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(tp, idx));
        }
        let mut d = hsum(acc);
        for sub in chunks * 8..m {
            let c = (*code.add(sub) as usize).min(ksub - 1);
            d += *tp.add(sub * ksub + c);
        }
        out[i] = d;
        i += 1;
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sq8_l2_avx2(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> f32 {
    let n = query.len();
    let (qp, cp, mp, sp) = (query.as_ptr(), code.as_ptr(), min.as_ptr(), step.as_ptr());
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(
            cp.add(i) as *const __m128i
        )));
        let decoded = _mm256_fmadd_ps(c, _mm256_loadu_ps(sp.add(i)), _mm256_loadu_ps(mp.add(i)));
        let d = _mm256_sub_ps(_mm256_loadu_ps(qp.add(i)), decoded);
        acc = _mm256_fmadd_ps(d, d, acc);
        i += 8;
    }
    let mut total = hsum(acc);
    while i < n {
        let decoded = *mp.add(i) + *cp.add(i) as f32 * *sp.add(i);
        let d = *qp.add(i) - decoded;
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sq8_l2_batch_avx2(
    query: &[f32],
    codes: &[u8],
    min: &[f32],
    step: &[f32],
    out: &mut [f32],
) {
    let dim = query.len();
    let cp = codes.as_ptr();
    for (r, o) in out.iter_mut().enumerate() {
        _mm_prefetch::<_MM_HINT_T0>(cp.wrapping_add((r + 2) * dim) as *const i8);
        *o = sq8_l2_avx2(
            query,
            std::slice::from_raw_parts(cp.add(r * dim), dim),
            min,
            step,
        );
    }
}
