//! NEON kernels for `aarch64`.
//!
//! NEON is mandatory in AArch64, but we still gate behind
//! `is_aarch64_feature_detected!("neon")` for uniformity with the x86 path.
//! The float kernels are hand-written with `vfmaq_f32`; the ADC-scan and SQ8
//! entries reuse the portable blocked implementations (NEON has no vector
//! gather, so the table-lookup loops gain little from intrinsics).
//!
//! Like `x86`, this is an `allow(unsafe_code)` island in a
//! `deny(unsafe_code)` crate: the only unsafety is calling
//! `#[target_feature]` functions after the feature probe guaranteed they are
//! valid on this CPU.
#![allow(unsafe_code)]

use super::dispatch::Kernels;
use super::{finish_cosine, scalar};
use core::arch::aarch64::*;

/// The NEON kernel set. Only installed after runtime feature detection.
pub static KERNELS: Kernels = Kernels {
    name: "neon",
    l2_sq,
    dot,
    cosine,
    l2_sq_x4,
    dot_x4,
    l2_sq_batch,
    dot_batch,
    adc_scan: scalar::adc_scan,
    sq8_l2: scalar::sq8_l2,
    sq8_l2_batch: scalar::sq8_l2_batch,
};

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_neon(a, b) }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_neon(a, b) }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    unsafe { cosine_neon(a, b) }
}

fn l2_sq_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    unsafe { l2_sq_x4_neon(q, r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), r3.as_ptr()) }
}

fn dot_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    unsafe { dot_x4_neon(q, r0.as_ptr(), r1.as_ptr(), r2.as_ptr(), r3.as_ptr()) }
}

fn l2_sq_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let n = out.len();
    let base = rows.as_ptr();
    let mut r = 0;
    while r + 4 <= n {
        let d = unsafe {
            l2_sq_x4_neon(
                q,
                base.add(r * dim),
                base.add((r + 1) * dim),
                base.add((r + 2) * dim),
                base.add((r + 3) * dim),
            )
        };
        out[r..r + 4].copy_from_slice(&d);
        r += 4;
    }
    while r < n {
        out[r] = l2_sq(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

fn dot_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let n = out.len();
    let base = rows.as_ptr();
    let mut r = 0;
    while r + 4 <= n {
        let d = unsafe {
            dot_x4_neon(
                q,
                base.add(r * dim),
                base.add((r + 1) * dim),
                base.add((r + 2) * dim),
                base.add((r + 3) * dim),
            )
        };
        out[r..r + 4].copy_from_slice(&d);
        r += 4;
    }
    while r < n {
        out[r] = dot(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_neon(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 8 <= n {
        let d0 = vsubq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        let d1 = vsubq_f32(vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        i += 8;
    }
    if i + 4 <= n {
        let d = vsubq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut acc = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let d = *ap.add(i) - *bp.add(i);
        acc += d * d;
        i += 1;
    }
    acc
}

#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 8 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
        i += 8;
    }
    if i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        i += 4;
    }
    let mut acc = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        acc += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    acc
}

#[target_feature(enable = "neon")]
unsafe fn cosine_neon(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut dd = vdupq_n_f32(0.0);
    let mut na = vdupq_n_f32(0.0);
    let mut nb = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let av = vld1q_f32(ap.add(i));
        let bv = vld1q_f32(bp.add(i));
        dd = vfmaq_f32(dd, av, bv);
        na = vfmaq_f32(na, av, av);
        nb = vfmaq_f32(nb, bv, bv);
        i += 4;
    }
    let (mut sd, mut sa, mut sb) = (vaddvq_f32(dd), vaddvq_f32(na), vaddvq_f32(nb));
    while i < n {
        let (x, y) = (*ap.add(i), *bp.add(i));
        sd += x * y;
        sa += x * x;
        sb += y * y;
        i += 1;
    }
    finish_cosine(sd, sa, sb)
}

/// Four-row squared L2 with one query load shared across rows.
///
/// # Safety
/// Each row pointer must reference at least `q.len()` readable floats.
#[target_feature(enable = "neon")]
unsafe fn l2_sq_x4_neon(
    q: &[f32],
    r0: *const f32,
    r1: *const f32,
    r2: *const f32,
    r3: *const f32,
) -> [f32; 4] {
    let n = q.len();
    let qp = q.as_ptr();
    let mut a0 = vdupq_n_f32(0.0);
    let mut a1 = vdupq_n_f32(0.0);
    let mut a2 = vdupq_n_f32(0.0);
    let mut a3 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let qv = vld1q_f32(qp.add(i));
        let d0 = vsubq_f32(qv, vld1q_f32(r0.add(i)));
        let d1 = vsubq_f32(qv, vld1q_f32(r1.add(i)));
        let d2 = vsubq_f32(qv, vld1q_f32(r2.add(i)));
        let d3 = vsubq_f32(qv, vld1q_f32(r3.add(i)));
        a0 = vfmaq_f32(a0, d0, d0);
        a1 = vfmaq_f32(a1, d1, d1);
        a2 = vfmaq_f32(a2, d2, d2);
        a3 = vfmaq_f32(a3, d3, d3);
        i += 4;
    }
    let mut out = [
        vaddvq_f32(a0),
        vaddvq_f32(a1),
        vaddvq_f32(a2),
        vaddvq_f32(a3),
    ];
    while i < n {
        let qi = *qp.add(i);
        let e0 = qi - *r0.add(i);
        let e1 = qi - *r1.add(i);
        let e2 = qi - *r2.add(i);
        let e3 = qi - *r3.add(i);
        out[0] += e0 * e0;
        out[1] += e1 * e1;
        out[2] += e2 * e2;
        out[3] += e3 * e3;
        i += 1;
    }
    out
}

/// Four-row dot product; see [`l2_sq_x4_neon`].
///
/// # Safety
/// Each row pointer must reference at least `q.len()` readable floats.
#[target_feature(enable = "neon")]
unsafe fn dot_x4_neon(
    q: &[f32],
    r0: *const f32,
    r1: *const f32,
    r2: *const f32,
    r3: *const f32,
) -> [f32; 4] {
    let n = q.len();
    let qp = q.as_ptr();
    let mut a0 = vdupq_n_f32(0.0);
    let mut a1 = vdupq_n_f32(0.0);
    let mut a2 = vdupq_n_f32(0.0);
    let mut a3 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let qv = vld1q_f32(qp.add(i));
        a0 = vfmaq_f32(a0, qv, vld1q_f32(r0.add(i)));
        a1 = vfmaq_f32(a1, qv, vld1q_f32(r1.add(i)));
        a2 = vfmaq_f32(a2, qv, vld1q_f32(r2.add(i)));
        a3 = vfmaq_f32(a3, qv, vld1q_f32(r3.add(i)));
        i += 4;
    }
    let mut out = [
        vaddvq_f32(a0),
        vaddvq_f32(a1),
        vaddvq_f32(a2),
        vaddvq_f32(a3),
    ];
    while i < n {
        let qi = *qp.add(i);
        out[0] += qi * *r0.add(i);
        out[1] += qi * *r1.add(i);
        out[2] += qi * *r2.add(i);
        out[3] += qi * *r3.add(i);
        i += 1;
    }
    out
}
