//! Runtime kernel selection: one CPU-feature probe per process, cached in a
//! `OnceLock`, after which every dispatched kernel call is a single indirect
//! call through a warm function pointer.

use std::sync::OnceLock;

/// Pairwise kernel: `(a, b) -> score`.
pub type PairFn = fn(&[f32], &[f32]) -> f32;
/// Four-row kernel: `(query, r0, r1, r2, r3) -> four scores`.
pub type X4Fn = fn(&[f32], &[f32], &[f32], &[f32], &[f32]) -> [f32; 4];
/// Batch kernel over contiguous rows: `(query, rows, dim, out)`.
pub type BatchFn = fn(&[f32], &[f32], usize, &mut [f32]);
/// ADC scan kernel: `(table, ksub, codes, m, out)`.
pub type AdcScanFn = fn(&[f32], usize, &[u8], usize, &mut [f32]);
/// SQ8 asymmetric kernel: `(query, code, min, step) -> squared L2`.
pub type Sq8Fn = fn(&[f32], &[u8], &[f32], &[f32]) -> f32;
/// Batched SQ8 asymmetric kernel: `(query, codes, min, step, out)`.
pub type Sq8BatchFn = fn(&[f32], &[u8], &[f32], &[f32], &mut [f32]);

/// A complete set of distance/scan kernels for one backend (one ISA level).
///
/// All entries are *safe* function pointers: SIMD backends wrap their
/// `#[target_feature]` internals in safe shims that are only ever reachable
/// after the matching `is_*_feature_detected!` probe succeeded. Operand
/// length contracts are enforced by the wrappers in [`super`] before the
/// pointers are invoked, so implementations assume agreeing slices.
pub struct Kernels {
    /// Human-readable backend name (reported by [`dispatch_name`]).
    pub name: &'static str,
    /// Squared Euclidean distance.
    pub l2_sq: PairFn,
    /// Dot product.
    pub dot: PairFn,
    /// Cosine distance (`1 - cos`), zero vectors map to 1.
    pub cosine: PairFn,
    /// Squared L2 from one query to four (possibly non-contiguous) rows.
    pub l2_sq_x4: X4Fn,
    /// Dot products of one query against four rows.
    pub dot_x4: X4Fn,
    /// Squared L2 from a query to every row of a contiguous row-major block.
    pub l2_sq_batch: BatchFn,
    /// Dot products against a contiguous row-major block.
    pub dot_batch: BatchFn,
    /// ADC scan of contiguous PQ codes against an `m × ksub` table.
    pub adc_scan: AdcScanFn,
    /// SQ8 asymmetric squared-L2 against a full-precision query.
    pub sq8_l2: Sq8Fn,
    /// Batched SQ8 asymmetric squared-L2 over contiguous codes.
    pub sq8_l2_batch: Sq8BatchFn,
}

/// The portable blocked kernel set — always available, on every target.
pub static SCALAR: Kernels = Kernels {
    name: "scalar",
    l2_sq: super::scalar::l2_sq,
    dot: super::scalar::dot,
    cosine: super::scalar::cosine,
    l2_sq_x4: super::scalar::l2_sq_x4,
    dot_x4: super::scalar::dot_x4,
    l2_sq_batch: super::scalar::l2_sq_batch,
    dot_batch: super::scalar::dot_batch,
    adc_scan: super::scalar::adc_scan,
    sq8_l2: super::scalar::sq8_l2,
    sq8_l2_batch: super::scalar::sq8_l2_batch,
};

/// True when `VDB_FORCE_SCALAR` is set to a non-empty value other than `0`.
/// Read once, at first dispatch; changing the variable later has no effect.
fn force_scalar() -> bool {
    match std::env::var("VDB_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Probe CPU features and return the best SIMD kernel set for this host, or
/// `None` when only the portable fallback applies. Independent of the
/// `VDB_FORCE_SCALAR` escape hatch, so tests can always reach the SIMD path
/// for equivalence checks.
pub fn simd_kernels() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Some(&super::x86::KERNELS);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some(&super::neon::KERNELS);
        }
    }
    None
}

/// The process-wide active kernel set. First call probes CPU features (and
/// the `VDB_FORCE_SCALAR` escape hatch) and caches the selection; every
/// later call returns the cached pointer.
#[inline]
pub fn kernels() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        if force_scalar() {
            return &SCALAR;
        }
        simd_kernels().unwrap_or(&SCALAR)
    })
}

/// Name of the active backend (`"scalar"`, `"avx2+fma"`, `"neon"`).
pub fn dispatch_name() -> &'static str {
    kernels().name
}

/// Every kernel set available on this host: the portable scalar set plus the
/// detected SIMD set, if any. The equivalence suite iterates this so the
/// scalar fallback is exercised unconditionally, even on SIMD-capable CI
/// runners.
pub fn kernel_sets() -> Vec<&'static Kernels> {
    let mut sets = vec![&SCALAR];
    if let Some(simd) = simd_kernels() {
        sets.push(simd);
    }
    sets
}
