//! Distance kernels: scalar references, portable blocked implementations,
//! and runtime-dispatched SIMD backends.
//!
//! The paper (§2.3, hardware acceleration) identifies similarity projection
//! as the dominant cost of vector search and surveys SIMD techniques
//! (QuickADC/Quicker ADC). This module implements that layer explicitly:
//!
//! - [`scalar`]: portable blocked kernels (eight independent accumulators so
//!   LLVM can auto-vectorize) — the fallback on hosts without a supported
//!   SIMD extension and the baseline of experiments T5/K1.
//! - `x86`: hand-written AVX2+FMA kernels (`std::arch`) on `x86_64`.
//! - `neon`: NEON kernels on `aarch64`.
//! - [`dispatch`]: a [`Kernels`] table of function pointers selected **once**
//!   per process from runtime CPU-feature detection
//!   (`is_x86_feature_detected!`) and cached in a `OnceLock`, so every hot
//!   call is a single indirect call through a warm pointer.
//!
//! The naive `*_scalar` functions are the ground-truth references used by
//! the equivalence suite (`tests/kernel_equivalence.rs`) and the K1
//! experiment; they are deliberately not blocked or dispatched.
//!
//! # Escape hatch
//!
//! Setting the environment variable `VDB_FORCE_SCALAR` to a non-empty value
//! other than `0` *before the first kernel call* forces the portable scalar
//! path regardless of CPU features (used by CI to exercise the fallback on
//! SIMD-capable runners). [`dispatch_name`] reports the active backend.
//!
//! # Length-mismatch policy
//!
//! Every kernel takes slice operands whose lengths should agree. Mismatched
//! lengths are a caller bug: all kernels `debug_assert` agreement, and in
//! release builds they uniformly **truncate to the common prefix** (the
//! minimum of the operand lengths, and for batched kernels the number of
//! whole rows present). No kernel panics or reads past a short operand in
//! release builds.

mod dispatch;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

pub use dispatch::{dispatch_name, kernel_sets, kernels, simd_kernels, Kernels};

// ---------------------------------------------------------------------------
// Scalar reference kernels (naive; correctness ground truth)
// ---------------------------------------------------------------------------

/// Naive squared Euclidean distance (reference implementation).
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Naive dot product (reference implementation).
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Naive L1 (Manhattan) distance (reference implementation).
#[inline]
pub fn l1_scalar(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += (a[i] - b[i]).abs();
    }
    acc
}

/// Naive cosine distance (reference implementation). Zero vectors are
/// treated as maximally dissimilar (distance 1) to keep the result finite.
#[inline]
pub fn cosine_scalar(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let (mut dd, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for i in 0..a.len() {
        dd += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    finish_cosine(dd, na, nb)
}

/// Shared cosine epilogue: `1 - dd/sqrt(na*nb)` with the zero-vector guard.
/// Every backend funnels through this so edge-case semantics agree.
#[inline]
pub(crate) fn finish_cosine(dd: f32, na: f32, nb: f32) -> f32 {
    let denom = (na * nb).sqrt();
    if denom == 0.0 {
        1.0
    } else {
        1.0 - dd / denom
    }
}

/// Reference ADC scan: per-code table lookups with a single accumulator
/// (the pre-dispatch inner loop of IVFADC; kept as the K1 baseline).
pub fn adc_scan_scalar(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    let n = adc_rows(table, ksub, codes, m, out);
    for i in 0..n {
        let code = &codes[i * m..(i + 1) * m];
        let mut acc = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            acc += table[sub * ksub + c as usize];
        }
        out[i] = acc;
    }
}

/// Reference SQ8 asymmetric squared-L2: decode each byte with `min + c*step`
/// and accumulate against the full-precision query.
pub fn sq8_l2_sq_scalar(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> f32 {
    let dim = sq8_dim(query, code, min, step);
    let mut acc = 0.0f32;
    for i in 0..dim {
        let decoded = min[i] + code[i] as f32 * step[i];
        let d = query[i] - decoded;
        acc += d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// Dispatched kernels (AVX2+FMA / NEON / portable blocked fallback)
// ---------------------------------------------------------------------------

/// Squared Euclidean distance (dispatched).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    (kernels().l2_sq)(a, b)
}

/// Dot product (dispatched).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    (kernels().dot)(a, b)
}

/// Cosine *distance* `1 - cos(a, b)` (dispatched). Zero vectors are treated
/// as maximally dissimilar (distance 1) to keep the result finite.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    (kernels().cosine)(a, b)
}

/// Squared L2 from one query to four rows at once (dispatched). The SIMD
/// backends keep the query in registers and run four independent
/// accumulator chains; gather-style consumers (IVF list scans, graph
/// neighbor expansion) use this to batch non-contiguous rows.
#[inline]
pub fn l2_sq_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    let n = q
        .len()
        .min(r0.len())
        .min(r1.len())
        .min(r2.len())
        .min(r3.len());
    debug_assert_eq!(n, q.len(), "kernel length mismatch");
    (kernels().l2_sq_x4)(&q[..n], &r0[..n], &r1[..n], &r2[..n], &r3[..n])
}

/// Dot products of one query against four rows at once (dispatched).
#[inline]
pub fn dot_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    let n = q
        .len()
        .min(r0.len())
        .min(r1.len())
        .min(r2.len())
        .min(r3.len());
    debug_assert_eq!(n, q.len(), "kernel length mismatch");
    (kernels().dot_x4)(&q[..n], &r0[..n], &r1[..n], &r2[..n], &r3[..n])
}

/// Squared L2 from `q` to each row of the row-major `rows` buffer, writing
/// into `out` (dispatched). This is the similarity-projection inner loop:
/// the SIMD backends score four rows per iteration against one broadcast
/// query with software prefetch of the next row block.
pub fn l2_sq_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let (q, out, n) = batch_args(q, rows, dim, out);
    (kernels().l2_sq_batch)(q, &rows[..n * dim], dim, out);
}

/// Batched dot products (dispatched); see [`l2_sq_batch`].
pub fn dot_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    let (q, out, n) = batch_args(q, rows, dim, out);
    (kernels().dot_batch)(q, &rows[..n * dim], dim, out);
}

/// ADC scan (dispatched): evaluate `out.len()` contiguous PQ codes of `m`
/// bytes each against an `m × ksub` lookup table. Replaces per-code gather
/// loops in IVF-PQ list scans; the AVX2 backend evaluates eight subspaces
/// per instruction via vector gathers.
///
/// Out-of-range sub-codes (possible only with corrupted codes when
/// `ksub < 256`) are clamped to `ksub - 1` rather than read out of bounds.
pub fn adc_scan(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    let n = adc_rows(table, ksub, codes, m, out);
    (kernels().adc_scan)(table, ksub, &codes[..n * m], m, &mut out[..n]);
}

/// SQ8 asymmetric squared-L2 distance (dispatched): full-precision `query`
/// against a u8 code decoded as `min[i] + code[i] * step[i]`.
#[inline]
pub fn sq8_l2_sq(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> f32 {
    let dim = sq8_dim(query, code, min, step);
    (kernels().sq8_l2)(&query[..dim], &code[..dim], &min[..dim], &step[..dim])
}

/// Batched SQ8 asymmetric squared-L2 over contiguous codes of `query.len()`
/// bytes each (dispatched); the inner loop of IVF-SQ list scans.
pub fn sq8_l2_sq_batch(query: &[f32], codes: &[u8], min: &[f32], step: &[f32], out: &mut [f32]) {
    let dim = query.len().min(min.len()).min(step.len());
    debug_assert_eq!(dim, query.len(), "kernel length mismatch");
    debug_assert_eq!(codes.len(), dim * out.len(), "kernel length mismatch");
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    let n = out.len().min(codes.len() / dim);
    (kernels().sq8_l2_batch)(
        &query[..dim],
        &codes[..n * dim],
        &min[..dim],
        &step[..dim],
        &mut out[..n],
    );
}

// ---------------------------------------------------------------------------
// Portable kernels without a dispatched backend
// ---------------------------------------------------------------------------

/// Blocked L1 distance.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    scalar::l1(a, b)
}

/// L∞ (Chebyshev) distance.
#[inline]
pub fn linf(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let mut m = 0.0f32;
    for i in 0..a.len() {
        m = m.max((a[i] - b[i]).abs());
    }
    m
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Minkowski distance of order `p` (supports fractional p > 0).
#[inline]
pub fn minkowski(a: &[f32], b: &[f32], p: f32) -> f32 {
    debug_assert!(p > 0.0);
    let (a, b) = pair(a, b);
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += (a[i] - b[i]).abs().powf(p);
    }
    acc.powf(1.0 / p)
}

/// Hamming distance over the signs of the components (the standard way to
/// apply Hamming to real-valued embeddings: binarize at zero).
#[inline]
pub fn hamming_sign(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = pair(a, b);
    let mut acc = 0u32;
    for i in 0..a.len() {
        acc += ((a[i] >= 0.0) != (b[i] >= 0.0)) as u32;
    }
    acc as f32
}

/// Hamming distance between packed 64-bit binary codes.
#[inline]
pub fn hamming_codes(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "kernel length mismatch");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Weighted squared Euclidean distance (used by learned diagonal metrics).
#[inline]
pub fn weighted_l2_sq(a: &[f32], b: &[f32], w: &[f32]) -> f32 {
    let n = a.len().min(b.len()).min(w.len());
    debug_assert_eq!(n, a.len(), "kernel length mismatch");
    let (a, b, w) = (&a[..n], &b[..n], &w[..n]);
    let mut acc = 0.0f32;
    for i in 0..n {
        let d = a[i] - b[i];
        acc += w[i] * d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// Length-policy helpers
// ---------------------------------------------------------------------------

/// Trim a pairwise kernel's operands to their common prefix.
#[inline]
fn pair<'a>(a: &'a [f32], b: &'a [f32]) -> (&'a [f32], &'a [f32]) {
    debug_assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let n = a.len().min(b.len());
    (&a[..n], &b[..n])
}

/// Trim batch-kernel operands: the query to `dim` and `out` to the number
/// of whole rows actually present in `rows`. Returns the trimmed query and
/// output plus the row count.
#[inline]
fn batch_args<'a, 'b>(
    q: &'a [f32],
    rows: &[f32],
    dim: usize,
    out: &'b mut [f32],
) -> (&'a [f32], &'b mut [f32], usize) {
    debug_assert_eq!(q.len(), dim, "kernel length mismatch");
    debug_assert_eq!(rows.len(), dim * out.len(), "kernel length mismatch");
    if dim == 0 {
        out.fill(0.0);
        return (q, &mut [], 0);
    }
    let q = &q[..q.len().min(dim)];
    let n = out.len().min(rows.len() / dim);
    (q, &mut out[..n], n)
}

/// Validate ADC-scan operands; returns the number of scannable codes.
#[inline]
fn adc_rows(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) -> usize {
    debug_assert!(table.len() >= m * ksub, "kernel length mismatch");
    debug_assert_eq!(codes.len(), m * out.len(), "kernel length mismatch");
    if m == 0 || ksub == 0 {
        out.fill(0.0);
        return 0;
    }
    if table.len() < m * ksub {
        out.fill(0.0);
        return 0;
    }
    out.len().min(codes.len() / m)
}

/// Common prefix length of the four SQ8 operands.
#[inline]
fn sq8_dim(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> usize {
    let dim = query.len().min(code.len()).min(min.len()).min(step.len());
    debug_assert_eq!(dim, query.len(), "kernel length mismatch");
    dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_pair(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        (a, b)
    }

    #[test]
    fn dispatched_matches_scalar_l2() {
        for dim in [1, 3, 7, 8, 9, 16, 63, 64, 65, 128, 300] {
            let (a, b) = random_pair(dim, dim as u64);
            let fast = l2_sq(&a, &b);
            let slow = l2_sq_scalar(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                "dim {dim}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn dispatched_matches_scalar_dot() {
        for dim in [1, 5, 8, 17, 96, 257] {
            let (a, b) = random_pair(dim, 100 + dim as u64);
            let fast = dot(&a, &b);
            let slow = dot_scalar(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.abs().max(1.0),
                "dim {dim}"
            );
        }
    }

    #[test]
    fn blocked_matches_scalar_l1() {
        for dim in [1, 8, 33, 100] {
            let (a, b) = random_pair(dim, 200 + dim as u64);
            assert!((l1(&a, &b) - l1_scalar(&a, &b)).abs() < 1e-3);
        }
    }

    #[test]
    fn known_values() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(l2_sq(&a, &b), 25.0);
        assert_eq!(dot(&a, &b), 25.0);
        assert_eq!(l1(&a, &b), 7.0);
        assert_eq!(linf(&a, &b), 4.0);
        assert!((minkowski(&a, &b, 2.0) - 5.0).abs() < 1e-6);
        assert!((minkowski(&a, &b, 1.0) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        assert!(
            cosine_distance(&a, &[2.0, 0.0]).abs() < 1e-6,
            "parallel => 0"
        );
        assert!(
            (cosine_distance(&a, &[0.0, 3.0]) - 1.0).abs() < 1e-6,
            "orthogonal => 1"
        );
        assert!(
            (cosine_distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6,
            "opposite => 2"
        );
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0, "zero vector => 1");
    }

    #[test]
    fn hamming_variants() {
        assert_eq!(hamming_sign(&[1.0, -1.0, 1.0], &[1.0, 1.0, -1.0]), 2.0);
        assert_eq!(hamming_codes(&[0b1011], &[0b0110]), 3);
    }

    #[test]
    fn weighted_l2_reduces_to_l2_with_unit_weights() {
        let (a, b) = random_pair(16, 7);
        let w = vec![1.0f32; 16];
        assert!((weighted_l2_sq(&a, &b, &w) - l2_sq(&a, &b)).abs() < 1e-4);
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = Rng::seed_from_u64(9);
        let dim = 24;
        let n = 17;
        let q: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let rows: Vec<f32> = (0..dim * n).map(|_| rng.normal_f32()).collect();
        let mut out = vec![0.0; n];
        l2_sq_batch(&q, &rows, dim, &mut out);
        for i in 0..n {
            let expect = l2_sq(&q, &rows[i * dim..(i + 1) * dim]);
            assert!((out[i] - expect).abs() < 1e-4);
        }
        dot_batch(&q, &rows, dim, &mut out);
        for i in 0..n {
            let expect = dot(&q, &rows[i * dim..(i + 1) * dim]);
            assert!((out[i] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn x4_matches_singles() {
        let mut rng = Rng::seed_from_u64(10);
        let dim = 37;
        let q: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..dim).map(|_| rng.normal_f32()).collect())
            .collect();
        let got = l2_sq_x4(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        for i in 0..4 {
            let want = l2_sq_scalar(&q, &rows[i]);
            assert!((got[i] - want).abs() <= 1e-4 * want.max(1.0));
        }
        let got = dot_x4(&q, &rows[0], &rows[1], &rows[2], &rows[3]);
        for i in 0..4 {
            let want = dot_scalar(&q, &rows[i]);
            assert!((got[i] - want).abs() <= 1e-4 * want.abs().max(1.0));
        }
    }

    #[test]
    fn dispatch_is_stable_and_named() {
        let name = dispatch_name();
        assert!(!name.is_empty());
        assert_eq!(dispatch_name(), name, "cached selection never changes");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_mode_truncates_mismatched_lengths() {
        // Documented policy: compute over the common prefix.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.0f32, 2.0];
        assert_eq!(l2_sq(&a, &b), 0.0);
        assert_eq!(dot(&a, &b), 5.0);
        assert_eq!(l1(&a, &b), 0.0);
        assert_eq!(weighted_l2_sq(&a, &b, &[1.0, 1.0, 1.0]), 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "kernel length mismatch")]
    fn debug_mode_asserts_on_mismatch() {
        let _ = l2_sq(&[1.0, 2.0], &[1.0]);
    }
}
