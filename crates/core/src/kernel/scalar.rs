//! Portable blocked kernels: the dispatch fallback on hosts without a
//! supported SIMD extension, and the force-scalar escape hatch's target.
//!
//! These use the standard trick that lets LLVM emit SIMD from stable Rust:
//! process `chunks_exact(LANES)` with `LANES` independent accumulators,
//! breaking the loop-carried dependency chain. Contracts (operand lengths)
//! are enforced by the wrappers in the parent module; implementations here
//! assume trimmed, agreeing slices.

use super::finish_cosine;

/// Number of parallel accumulator lanes in the blocked kernels.
const LANES: usize = 8;

/// Blocked squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        let d = a_tail[i] - b_tail[i];
        acc += d * d;
    }
    acc
}

/// Blocked dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        acc += a_tail[i] * b_tail[i];
    }
    acc
}

/// Blocked L1 distance.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] += (ca[l] - cb[l]).abs();
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        acc += (a_tail[i] - b_tail[i]).abs();
    }
    acc
}

/// Blocked fused cosine distance: one pass accumulating `a·b`, `‖a‖²`,
/// `‖b‖²` in independent lanes.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dd = [0.0f32; LANES];
    let mut na = [0.0f32; LANES];
    let mut nb = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            dd[l] += ca[l] * cb[l];
            na[l] += ca[l] * ca[l];
            nb[l] += cb[l] * cb[l];
        }
    }
    let (mut sd, mut sa, mut sb) = (
        dd.iter().sum::<f32>(),
        na.iter().sum::<f32>(),
        nb.iter().sum::<f32>(),
    );
    for i in 0..a_tail.len() {
        sd += a_tail[i] * b_tail[i];
        sa += a_tail[i] * a_tail[i];
        sb += b_tail[i] * b_tail[i];
    }
    finish_cosine(sd, sa, sb)
}

/// Four-row squared L2: the portable version simply runs the pairwise
/// kernel per row (the SIMD backends interleave the four accumulator
/// chains instead).
#[inline]
pub fn l2_sq_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    [l2_sq(q, r0), l2_sq(q, r1), l2_sq(q, r2), l2_sq(q, r3)]
}

/// Four-row dot product; see [`l2_sq_x4`].
#[inline]
pub fn dot_x4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    [dot(q, r0), dot(q, r1), dot(q, r2), dot(q, r3)]
}

/// Batched squared L2 over contiguous rows.
pub fn l2_sq_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
        *o = l2_sq(q, row);
    }
}

/// Batched dot products over contiguous rows.
pub fn dot_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
        *o = dot(q, row);
    }
}

/// Blocked ADC scan: four codes per iteration with independent
/// accumulators, so the table lookups of different codes pipeline instead
/// of serializing on one accumulator chain. Out-of-range sub-codes
/// (corrupted data with `ksub < 256`) are clamped to `ksub - 1`, matching
/// the SIMD backends. Callers guarantee `ksub >= 1` when `out` is
/// non-empty (the dispatch wrapper zeroes degenerate scans).
pub fn adc_scan(table: &[f32], ksub: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let top = ksub - 1;
    let mut i = 0;
    while i + 4 <= n {
        let c0 = &codes[i * m..(i + 1) * m];
        let c1 = &codes[(i + 1) * m..(i + 2) * m];
        let c2 = &codes[(i + 2) * m..(i + 3) * m];
        let c3 = &codes[(i + 3) * m..(i + 4) * m];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for sub in 0..m {
            let row = &table[sub * ksub..(sub + 1) * ksub];
            a0 += row[(c0[sub] as usize).min(top)];
            a1 += row[(c1[sub] as usize).min(top)];
            a2 += row[(c2[sub] as usize).min(top)];
            a3 += row[(c3[sub] as usize).min(top)];
        }
        out[i] = a0;
        out[i + 1] = a1;
        out[i + 2] = a2;
        out[i + 3] = a3;
        i += 4;
    }
    while i < n {
        let code = &codes[i * m..(i + 1) * m];
        let mut acc = 0.0f32;
        for (sub, &c) in code.iter().enumerate() {
            acc += table[sub * ksub + (c as usize).min(top)];
        }
        out[i] = acc;
        i += 1;
    }
}

/// Blocked SQ8 asymmetric squared-L2.
#[inline]
pub fn sq8_l2(query: &[f32], code: &[u8], min: &[f32], step: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = query.len() / LANES;
    let main = chunks * LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            let i = base + l;
            let decoded = min[i] + code[i] as f32 * step[i];
            let d = query[i] - decoded;
            lanes[l] += d * d;
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in main..query.len() {
        let decoded = min[i] + code[i] as f32 * step[i];
        let d = query[i] - decoded;
        acc += d * d;
    }
    acc
}

/// Batched SQ8 asymmetric squared-L2 over contiguous codes.
pub fn sq8_l2_batch(query: &[f32], codes: &[u8], min: &[f32], step: &[f32], out: &mut [f32]) {
    let dim = query.len();
    if dim == 0 {
        out.fill(0.0);
        return;
    }
    for (o, code) in out.iter_mut().zip(codes.chunks_exact(dim)) {
        *o = sq8_l2(query, code, min, step);
    }
}
