//! Minimal dense linear algebra for the workspace.
//!
//! Needed by: PCA trees (principal axes), OPQ (orthonormal rotations),
//! Mahalanobis distance (inverse covariance). Sizes are small (d ≤ ~1k),
//! so simple O(d³) routines suffice; no external BLAS.

use crate::error::{Error, Result};
use crate::rng::Rng;
use crate::vector::Vectors;

/// A dense row-major matrix of `f64` (double precision keeps the iterative
/// eigen routines stable).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::InvalidParameter(format!(
                "matrix buffer has {} entries, expected {}",
                data.len(),
                rows * cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Apply the matrix to an `f32` vector (rotations in PQ/OPQ paths).
    pub fn apply_f32(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(self.cols, v.len());
        assert_eq!(self.rows, out.len());
        for r in 0..self.rows {
            let mut acc = 0.0f64;
            for (a, &b) in self.row(r).iter().zip(v) {
                acc += a * b as f64;
            }
            out[r] = acc as f32;
        }
    }

    /// Invert via Gauss-Jordan with partial pivoting. Errors on singular
    /// matrices.
    pub fn inverse(&self) -> Result<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-12 {
                return Err(Error::InvalidParameter("singular matrix".into()));
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)];
            for c in 0..n {
                a[(col, c)] /= p;
                inv[(col, c)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for c in 0..n {
                    a[(r, c)] -= f * a[(col, c)];
                    inv[(r, c)] -= f * inv[(col, c)];
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }

    /// A random orthonormal matrix (QR of a Gaussian matrix via
    /// Gram-Schmidt). Used to initialize OPQ rotations.
    pub fn random_rotation(n: usize, rng: &mut Rng) -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.normal()).collect())
            .collect();
        gram_schmidt(&mut rows);
        let mut m = Matrix::zeros(n, n);
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Orthonormalize a set of row vectors in place (modified Gram-Schmidt).
/// Rows that become numerically zero are re-randomized deterministically.
fn gram_schmidt(rows: &mut [Vec<f64>]) {
    let n = rows.len();
    for i in 0..n {
        for j in 0..i {
            let dot: f64 = rows[i].iter().zip(&rows[j]).map(|(a, b)| a * b).sum();
            let (head, tail) = rows.split_at_mut(i);
            for (a, b) in tail[0].iter_mut().zip(&head[j]) {
                *a -= dot * b;
            }
        }
        let norm: f64 = rows[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in &mut rows[i] {
                *x /= norm;
            }
        } else {
            // Degenerate: replace with a unit basis vector not yet used.
            let len = rows[i].len();
            for x in rows[i].iter_mut() {
                *x = 0.0;
            }
            rows[i][i % len] = 1.0;
        }
    }
}

/// Covariance matrix (d×d) of a vector collection around its mean.
pub fn covariance(vectors: &Vectors) -> Result<Matrix> {
    if vectors.is_empty() {
        return Err(Error::EmptyCollection);
    }
    let d = vectors.dim();
    let mean = vectors.centroid()?;
    let mut cov = Matrix::zeros(d, d);
    for row in vectors.iter() {
        for i in 0..d {
            let di = (row[i] - mean[i]) as f64;
            for j in i..d {
                let dj = (row[j] - mean[j]) as f64;
                cov[(i, j)] += di * dj;
            }
        }
    }
    let n = vectors.len() as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / n;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// Top-`k` principal components of a collection, returned as rows of a
/// `k × d` matrix, computed by power iteration with deflation.
pub fn principal_components(vectors: &Vectors, k: usize, rng: &mut Rng) -> Result<Matrix> {
    let d = vectors.dim();
    let k = k.min(d);
    let mut cov = covariance(vectors)?;
    let mut out = Matrix::zeros(k, d);
    for comp in 0..k {
        let mut v: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
        let mut lambda = 0.0;
        for _ in 0..100 {
            let mut w = cov.matvec(&v);
            let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-15 {
                break;
            }
            for x in &mut w {
                *x /= norm;
            }
            lambda = norm;
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = w;
            if delta < 1e-10 {
                break;
            }
        }
        for (c, &x) in v.iter().enumerate() {
            out[(comp, c)] = x;
        }
        // Deflate: cov -= lambda * v v^T
        for i in 0..d {
            for j in 0..d {
                cov[(i, j)] -= lambda * v[i] * v[j];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![7.0, -1.0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Matrix::from_rows(3, 3, vec![2.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 3.0, 1.0]).unwrap();
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(m.inverse().is_err());
    }

    #[test]
    fn random_rotation_is_orthonormal() {
        let mut rng = Rng::seed_from_u64(5);
        let r = Matrix::random_rotation(8, &mut rng);
        let prod = r.matmul(&r.transpose());
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod[(i, j)] - expect).abs() < 1e-8,
                    "({i},{j}) = {}",
                    prod[(i, j)]
                );
            }
        }
    }

    #[test]
    fn covariance_of_axis_aligned_data() {
        // Points spread along x only: variance on x, none on y.
        let v = Vectors::from_flat(2, vec![-1.0, 0.0, 1.0, 0.0, 3.0, 0.0, -3.0, 0.0]).unwrap();
        let cov = covariance(&v).unwrap();
        assert!(cov[(0, 0)] > 1.0);
        assert!(cov[(1, 1)].abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn principal_component_finds_dominant_axis() {
        // Data varies strongly along (1,1)/sqrt(2), weakly orthogonal.
        let mut rng = Rng::seed_from_u64(42);
        let mut v = Vectors::new(2);
        for _ in 0..500 {
            let t = rng.normal_f32() * 10.0;
            let s = rng.normal_f32() * 0.1;
            v.push(&[t + s, t - s]).unwrap();
        }
        let pc = principal_components(&v, 1, &mut rng).unwrap();
        let (a, b) = (pc[(0, 0)], pc[(0, 1)]);
        // Should be parallel to (1,1): components nearly equal in magnitude.
        assert!((a.abs() - b.abs()).abs() < 0.05, "pc = ({a}, {b})");
        assert!((a * a + b * b - 1.0).abs() < 1e-6, "unit norm");
    }

    #[test]
    fn apply_f32_matches_matvec() {
        let m = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let mut out = [0.0f32; 2];
        m.apply_f32(&[3.0, 4.0], &mut out);
        assert_eq!(out, [4.0, 3.0]);
    }
}
