//! Exact brute-force index ("flat" scan).
//!
//! This is the baseline every approximate index is judged against, the
//! ground-truth generator for recall measurements, and the executor's
//! fallback plan for tiny collections or ultra-selective predicates
//! (where the paper notes single-stage brute-force scan wins).

use crate::context::SearchContext;
use crate::error::{Error, Result};
use crate::index::{
    check_query, DynamicIndex, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use crate::metric::Metric;
use crate::topk::Neighbor;
use crate::vector::Vectors;

/// Exact nearest-neighbor index by linear scan (similarity projection over
/// the whole collection).
#[derive(Debug, Clone)]
pub struct FlatIndex {
    vectors: Vectors,
    metric: Metric,
    /// Tombstoned rows (`deleted[id]`); ids stay allocated so row ids
    /// remain aligned with the owning collection's storage.
    deleted: Vec<bool>,
    removed: usize,
}

impl FlatIndex {
    /// Build over an owned copy of the vectors.
    pub fn build(vectors: Vectors, metric: Metric) -> Result<Self> {
        metric.validate(vectors.dim())?;
        let n = vectors.len();
        Ok(FlatIndex {
            vectors,
            metric,
            deleted: vec![false; n],
            removed: 0,
        })
    }

    /// Borrow the underlying vectors.
    pub fn vectors(&self) -> &Vectors {
        &self.vectors
    }

    /// Exact range search by linear scan.
    pub fn range_scan(&self, query: &[f32], radius: f32) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        let mut out: Vec<Neighbor> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(id, _)| !self.deleted[*id])
            .map(|(id, row)| Neighbor::new(id, self.metric.distance(query, row)))
            .filter(|n| n.dist <= radius)
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl VectorIndex for FlatIndex {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        _params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if self.vectors.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        ctx.pool.reset(k);
        // Score in fixed-size blocks through the batched SIMD kernels,
        // reusing the context's distance buffer as the output block.
        const BLOCK: usize = 256;
        let dim = self.vectors.dim();
        let flat = self.vectors.as_flat();
        let n = self.vectors.len();
        let mut base = 0;
        while base < n {
            let rows = (n - base).min(BLOCK);
            ctx.dists.resize(rows, 0.0);
            self.metric.distance_batch(
                query,
                &flat[base * dim..(base + rows) * dim],
                dim,
                &mut ctx.dists,
            );
            for (off, &d) in ctx.dists.iter().enumerate() {
                if self.removed == 0 || !self.deleted[base + off] {
                    ctx.pool.push(Neighbor::new(base + off, d));
                }
            }
            base += rows;
        }
        Ok(ctx.pool.drain_sorted())
    }

    /// Single-stage filtered scan: evaluate the predicate while scanning,
    /// computing distances only for surviving rows (exact pre-filtering).
    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        _params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if self.vectors.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        ctx.pool.reset(k);
        for (id, row) in self.vectors.iter().enumerate() {
            if self.deleted[id] || !filter.accept(id) {
                continue;
            }
            ctx.pool
                .push(Neighbor::new(id, self.metric.distance(query, row)));
        }
        Ok(ctx.pool.drain_sorted())
    }

    fn range_search(
        &self,
        query: &[f32],
        radius: f32,
        _params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        self.range_scan(query, radius)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.vectors.memory_bytes(),
            structure_entries: self.vectors.len(),
            detail: String::new(),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        Some(self)
    }
}

impl DynamicIndex for FlatIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        MutableIndex::insert(self, vector)
    }
}

impl MutableIndex for FlatIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let id = self.vectors.push(vector)?;
        self.deleted.push(false);
        Ok(id)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.vectors.len() {
            return Err(Error::NotFound(format!("flat row {id} out of range")));
        }
        if self.deleted[id] {
            return Ok(false);
        }
        self.deleted[id] = true;
        self.removed += 1;
        Ok(true)
    }

    fn live(&self) -> usize {
        self.vectors.len() - self.removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::rng::Rng;

    fn grid_index() -> FlatIndex {
        // Points at x = 0, 1, ..., 9 on a line.
        let mut v = Vectors::new(2);
        for i in 0..10 {
            v.push(&[i as f32, 0.0]).unwrap();
        }
        FlatIndex::build(v, Metric::Euclidean).unwrap()
    }

    #[test]
    fn exact_nearest() {
        let idx = grid_index();
        let hits = idx
            .search(&[3.2, 0.0], 3, &SearchParams::default())
            .unwrap();
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 4, 2]);
        assert!((hits[0].dist - 0.2).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let idx = grid_index();
        let hits = idx
            .search(&[0.0, 0.0], 100, &SearchParams::default())
            .unwrap();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn k_zero_and_empty() {
        let idx = grid_index();
        assert!(idx
            .search(&[0.0, 0.0], 0, &SearchParams::default())
            .unwrap()
            .is_empty());
        let empty = FlatIndex::build(Vectors::new(2), Metric::Euclidean).unwrap();
        assert!(empty
            .search(&[0.0, 0.0], 5, &SearchParams::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn filtered_scan_respects_predicate() {
        let idx = grid_index();
        let even = |id: usize| id.is_multiple_of(2);
        let hits = idx
            .search_filtered(&[3.0, 0.0], 3, &SearchParams::default(), &even)
            .unwrap();
        assert!(hits.iter().all(|n| n.id % 2 == 0));
        assert_eq!(hits[0].id, 2, "closest even id to x=3");
    }

    #[test]
    fn range_scan_inclusive() {
        let idx = grid_index();
        let hits = idx.range_scan(&[5.0, 0.0], 1.0).unwrap();
        assert_eq!(hits.iter().map(|n| n.id).collect::<Vec<_>>(), vec![5, 4, 6]);
    }

    #[test]
    fn insert_then_search_finds_new_vector() {
        let mut idx = grid_index();
        let id = DynamicIndex::insert(&mut idx, &[100.0, 0.0]).unwrap();
        let hits = idx
            .search(&[99.0, 0.0], 1, &SearchParams::default())
            .unwrap();
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn removed_rows_never_surface() {
        let mut idx = grid_index();
        assert!(MutableIndex::remove(&mut idx, 3).unwrap());
        assert!(!MutableIndex::remove(&mut idx, 3).unwrap(), "idempotent");
        assert_eq!(idx.live(), 9);
        assert_eq!(idx.len(), 10, "ids stay allocated");
        let hits = idx
            .search(&[3.0, 0.0], 10, &SearchParams::default())
            .unwrap();
        assert!(hits.iter().all(|n| n.id != 3));
        assert_eq!(hits.len(), 9);
        let filtered = idx
            .search_filtered(&[3.0, 0.0], 10, &SearchParams::default(), &|_id: usize| {
                true
            })
            .unwrap();
        assert!(filtered.iter().all(|n| n.id != 3));
        let ranged = idx.range_scan(&[3.0, 0.0], 2.0).unwrap();
        assert!(ranged.iter().all(|n| n.id != 3));
        assert!(MutableIndex::remove(&mut idx, 99).is_err());
        // Re-inserting after removals keeps ids dense.
        let id = MutableIndex::insert(&mut idx, &[42.0, 0.0]).unwrap();
        assert_eq!(id, 10);
        assert_eq!(idx.live(), 10);
    }

    #[test]
    fn rejects_bad_queries() {
        let idx = grid_index();
        assert!(idx.search(&[1.0], 1, &SearchParams::default()).is_err());
        assert!(idx
            .search(&[1.0, f32::NAN], 1, &SearchParams::default())
            .is_err());
    }

    #[test]
    fn inner_product_prefers_large_dot() {
        let mut v = Vectors::new(2);
        v.push(&[1.0, 0.0]).unwrap();
        v.push(&[10.0, 0.0]).unwrap();
        let idx = FlatIndex::build(v, Metric::InnerProduct).unwrap();
        let hits = idx
            .search(&[1.0, 0.0], 1, &SearchParams::default())
            .unwrap();
        assert_eq!(hits[0].id, 1, "IP favors the longer parallel vector");
    }

    #[test]
    fn default_range_search_matches_exact_on_random_data() {
        let mut rng = Rng::seed_from_u64(3);
        let data = dataset::gaussian(200, 8, &mut rng);
        let idx = FlatIndex::build(data, Metric::Euclidean).unwrap();
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32()).collect();
        let exact = idx.range_scan(&q, 3.0).unwrap();
        let via_default = idx.range_search(&q, 3.0, &SearchParams::default()).unwrap();
        assert_eq!(exact, via_default);
    }
}
