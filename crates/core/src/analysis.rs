//! Instrumentation for the curse of dimensionality (§2.1).
//!
//! As dimensionality grows, the gap between the nearest and farthest
//! neighbor shrinks relative to the nearest distance, making distance-based
//! scores less informative (Beyer et al.; Aggarwal et al.). Experiment F8
//! uses [`distance_contrast`] to reproduce that collapse and its dependence
//! on the Minkowski order.

use crate::metric::Metric;
use crate::rng::Rng;
use crate::vector::Vectors;

/// Summary of the distance distribution from sample queries to a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ContrastReport {
    /// Mean over queries of `(d_max - d_min) / d_min` — the "relative
    /// contrast". High contrast = nearest neighbors are meaningful.
    pub relative_contrast: f64,
    /// Mean nearest distance.
    pub mean_min: f64,
    /// Mean farthest distance.
    pub mean_max: f64,
}

/// Measure relative distance contrast of `metric` on `data` using
/// `n_queries` fresh random queries from the same distribution generator.
pub fn distance_contrast(data: &Vectors, queries: &Vectors, metric: &Metric) -> ContrastReport {
    assert!(!data.is_empty() && !queries.is_empty());
    let mut sum_contrast = 0.0;
    let mut sum_min = 0.0;
    let mut sum_max = 0.0;
    for q in queries.iter() {
        let mut dmin = f64::INFINITY;
        let mut dmax = f64::NEG_INFINITY;
        for row in data.iter() {
            let d = metric.distance(q, row) as f64;
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        if dmin > 0.0 {
            sum_contrast += (dmax - dmin) / dmin;
        }
        sum_min += dmin;
        sum_max += dmax;
    }
    let nq = queries.len() as f64;
    ContrastReport {
        relative_contrast: sum_contrast / nq,
        mean_min: sum_min / nq,
        mean_max: sum_max / nq,
    }
}

/// Convenience driver for F8: contrast of uniform data at dimension `dim`.
pub fn contrast_at_dim(
    dim: usize,
    n: usize,
    n_queries: usize,
    metric: &Metric,
    seed: u64,
) -> ContrastReport {
    let mut rng = Rng::seed_from_u64(seed);
    let data = crate::dataset::uniform_cube(n, dim, &mut rng);
    let queries = crate::dataset::uniform_cube(n_queries, dim, &mut rng);
    distance_contrast(&data, &queries, metric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_collapses_with_dimension() {
        let lo = contrast_at_dim(2, 500, 10, &Metric::Euclidean, 42);
        let hi = contrast_at_dim(256, 500, 10, &Metric::Euclidean, 42);
        assert!(
            lo.relative_contrast > 4.0 * hi.relative_contrast,
            "contrast should collapse: d=2 gives {}, d=256 gives {}",
            lo.relative_contrast,
            hi.relative_contrast
        );
    }

    #[test]
    fn lower_order_norms_retain_more_contrast_in_high_dim() {
        // Aggarwal et al.: fractional norms degrade more slowly. At d=128
        // the L1 (and fractional) contrast should exceed L-infinity.
        let l1 = contrast_at_dim(128, 400, 10, &Metric::Manhattan, 7);
        let linf = contrast_at_dim(128, 400, 10, &Metric::Chebyshev, 7);
        assert!(
            l1.relative_contrast > linf.relative_contrast,
            "L1 {} vs Linf {}",
            l1.relative_contrast,
            linf.relative_contrast
        );
    }

    #[test]
    fn report_fields_consistent() {
        let r = contrast_at_dim(8, 200, 5, &Metric::Euclidean, 1);
        assert!(r.mean_min > 0.0);
        assert!(r.mean_max > r.mean_min);
        assert!(r.relative_contrast > 0.0);
    }
}
