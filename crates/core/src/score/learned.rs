//! Learned similarity scores (§2.1 "metric learning").
//!
//! A deliberately small instance of metric learning: fit per-dimension
//! weights `w ≥ 0` for a weighted squared-Euclidean distance from labelled
//! pairs, by stochastic gradient descent on a margin loss that pushes
//! similar pairs below a threshold and dissimilar pairs above it. This
//! exercises the "learned score" code path end-to-end (training, the
//! `Metric::WeightedL2` integration, and selection experiments) without
//! pretending to be a deep model.

use crate::error::{Error, Result};
use crate::metric::Metric;
use std::sync::Arc;

/// A labelled training pair: two vectors plus whether they are similar.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// First vector.
    pub a: Vec<f32>,
    /// Second vector.
    pub b: Vec<f32>,
    /// True if the pair should score as similar (small distance).
    pub similar: bool,
}

/// Training configuration for [`LearnedWeights::fit`].
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Number of passes over the training pairs.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f32,
    /// Margin threshold separating similar from dissimilar distances.
    pub threshold: f32,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            epochs: 50,
            learning_rate: 0.05,
            threshold: 1.0,
        }
    }
}

/// Per-dimension weights defining a learned diagonal Mahalanobis metric.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedWeights {
    weights: Vec<f32>,
}

impl LearnedWeights {
    /// Fit weights from labelled pairs.
    pub fn fit(pairs: &[LabeledPair], dim: usize, cfg: &LearnConfig) -> Result<Self> {
        if pairs.is_empty() {
            return Err(Error::InvalidParameter(
                "need at least one training pair".into(),
            ));
        }
        for p in pairs {
            if p.a.len() != dim || p.b.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    actual: if p.a.len() != dim {
                        p.a.len()
                    } else {
                        p.b.len()
                    },
                });
            }
        }
        let mut w = vec![1.0f32; dim];
        let mut sq_diff = vec![0.0f32; dim];
        for _ in 0..cfg.epochs {
            for p in pairs {
                for i in 0..dim {
                    let d = p.a[i] - p.b[i];
                    sq_diff[i] = d * d;
                }
                let dist: f32 = w.iter().zip(&sq_diff).map(|(w, s)| w * s).sum();
                // Hinge: similar pairs want dist < threshold, dissimilar
                // pairs want dist > threshold.
                let violated = if p.similar {
                    dist > cfg.threshold
                } else {
                    dist < cfg.threshold
                };
                if !violated {
                    continue;
                }
                let sign = if p.similar { -1.0 } else { 1.0 };
                for i in 0..dim {
                    w[i] = (w[i] + sign * cfg.learning_rate * sq_diff[i]).max(1e-4);
                }
            }
        }
        Ok(LearnedWeights { weights: w })
    }

    /// Borrow the learned weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Convert into a [`Metric`] usable by any index.
    pub fn into_metric(self) -> Metric {
        Metric::WeightedL2(Arc::new(self.weights))
    }

    /// Training accuracy: fraction of pairs classified on the correct side
    /// of the threshold.
    pub fn accuracy(&self, pairs: &[LabeledPair], threshold: f32) -> f64 {
        if pairs.is_empty() {
            return 1.0;
        }
        let metric = Metric::WeightedL2(Arc::new(self.weights.clone()));
        let correct = pairs
            .iter()
            .filter(|p| {
                let d = metric.distance(&p.a, &p.b);
                if p.similar {
                    d <= threshold
                } else {
                    d > threshold
                }
            })
            .count();
        correct as f64 / pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Build pairs where only the first `signal` dimensions matter:
    /// similar pairs agree there, dissimilar pairs differ there, and all
    /// remaining dimensions are pure noise.
    fn signal_noise_pairs(n: usize, dim: usize, signal: usize, rng: &mut Rng) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| {
                let similar = i % 2 == 0;
                let base: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
                let mut other = base.clone();
                for (j, o) in other.iter_mut().enumerate() {
                    if j < signal {
                        if !similar {
                            *o += 3.0; // strong signal separation
                        }
                    } else {
                        *o += rng.normal_f32() * 2.0; // noise everywhere
                    }
                }
                LabeledPair {
                    a: base,
                    b: other,
                    similar,
                }
            })
            .collect()
    }

    #[test]
    fn learns_to_upweight_signal_dimensions() {
        let mut rng = Rng::seed_from_u64(8);
        let pairs = signal_noise_pairs(400, 8, 2, &mut rng);
        let lw = LearnedWeights::fit(&pairs, 8, &LearnConfig::default()).unwrap();
        let w = lw.weights();
        let signal_avg = (w[0] + w[1]) / 2.0;
        let noise_avg = w[2..].iter().sum::<f32>() / 6.0;
        assert!(
            signal_avg > noise_avg,
            "signal dims should outweigh noise dims: {w:?}"
        );
    }

    #[test]
    fn learned_metric_beats_plain_l2_on_held_out_pairs() {
        let mut rng = Rng::seed_from_u64(9);
        let train = signal_noise_pairs(400, 8, 2, &mut rng);
        let test = signal_noise_pairs(200, 8, 2, &mut rng);
        let cfg = LearnConfig::default();
        let lw = LearnedWeights::fit(&train, 8, &cfg).unwrap();
        let learned_acc = lw.accuracy(&test, cfg.threshold);
        let unit = LearnedWeights {
            weights: vec![1.0; 8],
        };
        let plain_acc = unit.accuracy(&test, cfg.threshold);
        assert!(
            learned_acc >= plain_acc,
            "learned {learned_acc} vs plain {plain_acc}"
        );
        assert!(learned_acc > 0.7, "learned accuracy too low: {learned_acc}");
    }

    #[test]
    fn validates_inputs() {
        assert!(LearnedWeights::fit(&[], 4, &LearnConfig::default()).is_err());
        let bad = vec![LabeledPair {
            a: vec![0.0; 3],
            b: vec![0.0; 4],
            similar: true,
        }];
        assert!(LearnedWeights::fit(&bad, 4, &LearnConfig::default()).is_err());
    }

    #[test]
    fn weights_stay_positive() {
        let mut rng = Rng::seed_from_u64(10);
        let pairs = signal_noise_pairs(200, 4, 1, &mut rng);
        let lw = LearnedWeights::fit(
            &pairs,
            4,
            &LearnConfig {
                epochs: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(lw.weights().iter().all(|&w| w > 0.0));
    }
}
