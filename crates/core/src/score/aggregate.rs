//! Aggregate scores (§2.1): combine multiple per-vector scores for an
//! entity represented by several feature vectors into one scalar.

use crate::error::{Error, Result};

/// How to fold a list of per-vector distances into one entity-level
/// distance. All variants preserve the lower-is-better convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregator {
    /// Arithmetic mean of the distances.
    Mean,
    /// Minimum distance (entity matches if *any* of its vectors matches —
    /// the usual choice for facial recognition galleries).
    Min,
    /// Maximum distance (entity matches only if *all* vectors match).
    Max,
    /// Weighted sum with fixed weights (must match the number of scores).
    WeightedSum(Vec<f32>),
}

impl Aggregator {
    /// Fold per-vector distances into an entity distance.
    pub fn combine(&self, distances: &[f32]) -> Result<f32> {
        if distances.is_empty() {
            return Err(Error::InvalidParameter(
                "cannot aggregate zero scores".into(),
            ));
        }
        match self {
            Aggregator::Mean => Ok(distances.iter().sum::<f32>() / distances.len() as f32),
            Aggregator::Min => Ok(distances.iter().copied().fold(f32::INFINITY, f32::min)),
            Aggregator::Max => Ok(distances.iter().copied().fold(f32::NEG_INFINITY, f32::max)),
            Aggregator::WeightedSum(w) => {
                if w.len() != distances.len() {
                    return Err(Error::InvalidParameter(format!(
                        "weighted sum has {} weights but {} scores",
                        w.len(),
                        distances.len()
                    )));
                }
                Ok(distances.iter().zip(w).map(|(d, w)| d * w).sum())
            }
        }
    }

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregator::Mean => "mean",
            Aggregator::Min => "min",
            Aggregator::Max => "max",
            Aggregator::WeightedSum(_) => "weighted_sum",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_aggregates() {
        let d = [1.0, 3.0, 2.0];
        assert_eq!(Aggregator::Mean.combine(&d).unwrap(), 2.0);
        assert_eq!(Aggregator::Min.combine(&d).unwrap(), 1.0);
        assert_eq!(Aggregator::Max.combine(&d).unwrap(), 3.0);
        assert_eq!(
            Aggregator::WeightedSum(vec![1.0, 0.0, 0.5])
                .combine(&d)
                .unwrap(),
            2.0
        );
    }

    #[test]
    fn empty_and_mismatched_inputs_rejected() {
        assert!(Aggregator::Mean.combine(&[]).is_err());
        assert!(Aggregator::WeightedSum(vec![1.0])
            .combine(&[1.0, 2.0])
            .is_err());
    }

    #[test]
    fn min_le_mean_le_max() {
        let d = [0.5, 9.0, 4.0, 2.0];
        let min = Aggregator::Min.combine(&d).unwrap();
        let mean = Aggregator::Mean.combine(&d).unwrap();
        let max = Aggregator::Max.combine(&d).unwrap();
        assert!(min <= mean && mean <= max);
    }
}
