//! Similarity-score selection (§2.1 "score selection", §2.6(1)).
//!
//! The paper lists automatic score selection as an open problem and cites
//! EuclidesDB's pragmatic approach: evaluate many scores and let evidence
//! decide. This module implements that evaluation loop: rank candidate
//! metrics by how well their distances separate labelled similar from
//! dissimilar pairs, scored by ROC-AUC (threshold-free, scale-invariant —
//! so metrics with incomparable ranges compete fairly).

use crate::error::{Error, Result};
use crate::metric::Metric;
use crate::score::learned::LabeledPair;

/// Evaluation of one candidate metric.
#[derive(Debug, Clone)]
pub struct ScoreEvaluation {
    /// The candidate metric.
    pub metric: Metric,
    /// ROC-AUC of `-distance` as a similarity classifier (1.0 = perfect
    /// separation, 0.5 = chance).
    pub auc: f64,
}

/// Rank `candidates` on labelled pairs, best first.
pub fn select_score(candidates: &[Metric], pairs: &[LabeledPair]) -> Result<Vec<ScoreEvaluation>> {
    if candidates.is_empty() {
        return Err(Error::InvalidParameter("no candidate metrics".into()));
    }
    if pairs.iter().all(|p| p.similar) || pairs.iter().all(|p| !p.similar) {
        return Err(Error::InvalidParameter(
            "score selection needs both similar and dissimilar pairs".into(),
        ));
    }
    let mut out: Vec<ScoreEvaluation> = candidates
        .iter()
        .map(|metric| ScoreEvaluation {
            metric: metric.clone(),
            auc: auc(metric, pairs),
        })
        .collect();
    out.sort_by(|a, b| b.auc.total_cmp(&a.auc));
    Ok(out)
}

/// ROC-AUC via the rank-sum (Mann-Whitney) formulation: the probability
/// that a random similar pair scores closer than a random dissimilar one.
fn auc(metric: &Metric, pairs: &[LabeledPair]) -> f64 {
    let mut scored: Vec<(f32, bool)> = pairs
        .iter()
        .map(|p| (metric.distance(&p.a, &p.b), p.similar))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n_pos = scored.iter().filter(|(_, s)| *s).count() as f64;
    let n_neg = scored.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    // Sum of ranks of the positive (similar) class, with midranks for ties.
    let mut rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < scored.len() {
        let mut j = i;
        while j < scored.len() && scored[j].0 == scored[i].0 {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for e in &scored[i..j] {
            if e.1 {
                rank_sum += midrank;
            }
        }
        i = j;
    }
    // Similar pairs should have *small* distances => small ranks => low U.
    let u = rank_sum - n_pos * (n_pos + 1.0) / 2.0;
    1.0 - u / (n_pos * n_neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Pairs where cosine is the right score: similar pairs are scaled
    /// copies (same direction, different magnitude), dissimilar pairs are
    /// random directions.
    fn direction_pairs(n: usize, dim: usize, rng: &mut Rng) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| {
                let a: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
                let similar = i % 2 == 0;
                let b: Vec<f32> = if similar {
                    let scale = 0.5 + rng.f32() * 4.0;
                    a.iter()
                        .map(|x| x * scale + rng.normal_f32() * 0.01)
                        .collect()
                } else {
                    (0..dim).map(|_| rng.normal_f32()).collect()
                };
                LabeledPair { a, b, similar }
            })
            .collect()
    }

    /// Pairs where plain L2 is right: similar = small offset.
    fn offset_pairs(n: usize, dim: usize, rng: &mut Rng) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| {
                let a: Vec<f32> = (0..dim).map(|_| rng.normal_f32() * 5.0).collect();
                let similar = i % 2 == 0;
                let noise = if similar { 0.1 } else { 5.0 };
                let b: Vec<f32> = a.iter().map(|x| x + rng.normal_f32() * noise).collect();
                LabeledPair { a, b, similar }
            })
            .collect()
    }

    fn candidates() -> Vec<Metric> {
        vec![
            Metric::Euclidean,
            Metric::Cosine,
            Metric::Manhattan,
            Metric::InnerProduct,
        ]
    }

    #[test]
    fn picks_cosine_for_direction_data() {
        let mut rng = Rng::seed_from_u64(1);
        let pairs = direction_pairs(400, 16, &mut rng);
        let ranked = select_score(&candidates(), &pairs).unwrap();
        assert_eq!(
            ranked[0].metric.name(),
            "cosine",
            "{:?}",
            ranked
                .iter()
                .map(|e| (e.metric.name(), e.auc))
                .collect::<Vec<_>>()
        );
        assert!(ranked[0].auc > 0.95);
    }

    #[test]
    fn picks_a_distance_metric_for_offset_data() {
        let mut rng = Rng::seed_from_u64(2);
        let pairs = offset_pairs(400, 16, &mut rng);
        let ranked = select_score(&candidates(), &pairs).unwrap();
        assert!(
            matches!(ranked[0].metric.name(), "l2" | "l1"),
            "best = {}",
            ranked[0].metric.name()
        );
        assert!(ranked[0].auc > 0.95);
    }

    #[test]
    fn auc_is_half_for_uninformative_labels() {
        let mut rng = Rng::seed_from_u64(3);
        // Random labels: nothing separates the classes.
        let pairs: Vec<LabeledPair> = (0..300)
            .map(|i| LabeledPair {
                a: (0..8).map(|_| rng.normal_f32()).collect(),
                b: (0..8).map(|_| rng.normal_f32()).collect(),
                similar: i % 2 == 0,
            })
            .collect();
        let ranked = select_score(&[Metric::Euclidean], &pairs).unwrap();
        assert!((ranked[0].auc - 0.5).abs() < 0.1, "auc {}", ranked[0].auc);
    }

    #[test]
    fn validates_inputs() {
        let mut rng = Rng::seed_from_u64(4);
        let pairs = offset_pairs(10, 4, &mut rng);
        assert!(select_score(&[], &pairs).is_err());
        let all_similar: Vec<LabeledPair> = pairs
            .iter()
            .cloned()
            .map(|mut p| {
                p.similar = true;
                p
            })
            .collect();
        assert!(select_score(&candidates(), &all_similar).is_err());
    }

    #[test]
    fn tied_distances_get_midranks() {
        // All distances identical => AUC exactly 0.5.
        let pairs: Vec<LabeledPair> = (0..10)
            .map(|i| LabeledPair {
                a: vec![0.0, 0.0],
                b: vec![1.0, 0.0],
                similar: i % 2 == 0,
            })
            .collect();
        let ranked = select_score(&[Metric::Euclidean], &pairs).unwrap();
        assert!((ranked[0].auc - 0.5).abs() < 1e-12);
    }
}
