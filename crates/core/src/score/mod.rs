//! Score composition beyond basic metrics: aggregate scores for
//! multi-vector entities and learned scores (§2.1 of the paper).

pub mod aggregate;
pub mod learned;
pub mod selection;

pub use aggregate::Aggregator;
pub use learned::LearnedWeights;
pub use selection::{select_score, ScoreEvaluation};
