//! Structured attribute values and types.
//!
//! Hybrid queries (§2.1, §2.3) combine vector similarity with boolean
//! predicates over per-entity attributes. These types are shared by the
//! storage layer (attribute columns) and the query layer (predicates).

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// The type of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string (categorical or free-form).
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
            AttrType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single attribute value. `Null` represents a missing value; any
/// comparison against `Null` is false (SQL-like three-valued logic
/// collapsed to false at the predicate boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl AttrValue {
    /// The type of this value, or `None` for `Null`.
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            AttrValue::Null => None,
            AttrValue::Int(_) => Some(AttrType::Int),
            AttrValue::Float(_) => Some(AttrType::Float),
            AttrValue::Str(_) => Some(AttrType::Str),
            AttrValue::Bool(_) => Some(AttrType::Bool),
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, AttrValue::Null)
    }

    /// Ordering comparison. Numeric types compare across Int/Float;
    /// comparisons involving `Null` or mismatched types return `None`.
    pub fn compare(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality under the same coercion rules as [`AttrValue::compare`].
    pub fn loosely_equals(&self, other: &AttrValue) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Check that the value is storable in a column of `ty` (Null always is).
    pub fn check_type(&self, ty: AttrType) -> Result<()> {
        match self.attr_type() {
            None => Ok(()),
            Some(t) if t == ty => Ok(()),
            Some(t) => Err(Error::InvalidParameter(format!(
                "attribute value of type {t} does not fit column of type {ty}"
            ))),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Null => write!(f, "NULL"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "'{v}'"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            AttrValue::Int(3).compare(&AttrValue::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            AttrValue::Float(2.5).compare(&AttrValue::Int(3)),
            Some(Ordering::Less)
        );
        assert!(AttrValue::Int(1).loosely_equals(&AttrValue::Float(1.0)));
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(AttrValue::Null.compare(&AttrValue::Int(1)), None);
        assert_eq!(AttrValue::Int(1).compare(&AttrValue::Null), None);
        assert!(!AttrValue::Null.loosely_equals(&AttrValue::Null));
    }

    #[test]
    fn mismatched_types_incomparable() {
        assert_eq!(AttrValue::Str("a".into()).compare(&AttrValue::Int(1)), None);
        assert_eq!(AttrValue::Bool(true).compare(&AttrValue::Int(1)), None);
    }

    #[test]
    fn type_checking() {
        assert!(AttrValue::Int(1).check_type(AttrType::Int).is_ok());
        assert!(AttrValue::Int(1).check_type(AttrType::Float).is_err());
        assert!(AttrValue::Null.check_type(AttrType::Str).is_ok());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrValue::Str("x".into()).to_string(), "'x'");
        assert_eq!(AttrValue::Null.to_string(), "NULL");
        assert_eq!(AttrType::Float.to_string(), "float");
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from(3i32), AttrValue::Int(3));
        assert_eq!(AttrValue::from("hi"), AttrValue::Str("hi".into()));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }
}
