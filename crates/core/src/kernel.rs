//! Distance kernels: scalar reference implementations and blocked,
//! auto-vectorizing implementations.
//!
//! The paper (§2.3, hardware acceleration) identifies similarity projection
//! as the dominant cost of vector search and surveys SIMD techniques
//! (QuickADC/Quicker ADC). Stable Rust has no portable SIMD, so the
//! "accelerated" kernels here use the standard trick that lets LLVM emit
//! SIMD: process `chunks_exact(8)` with eight independent accumulators,
//! breaking the loop-carried dependency chain. The `*_scalar` variants are
//! the naive reference used both for correctness tests and as the baseline
//! in experiment T5.

/// Number of parallel accumulator lanes in the blocked kernels.
const LANES: usize = 8;

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Naive squared Euclidean distance.
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Naive dot product.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Naive L1 (Manhattan) distance.
#[inline]
pub fn l1_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += (a[i] - b[i]).abs();
    }
    acc
}

// ---------------------------------------------------------------------------
// Blocked (auto-vectorizing) kernels
// ---------------------------------------------------------------------------

/// Blocked squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        let d = a_tail[i] - b_tail[i];
        acc += d * d;
    }
    acc
}

/// Blocked dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        acc += a_tail[i] * b_tail[i];
    }
    acc
}

/// Blocked L1 distance.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    let (a_main, a_tail) = a.split_at(chunks * LANES);
    let (b_main, b_tail) = b.split_at(chunks * LANES);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] += (ca[l] - cb[l]).abs();
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for i in 0..a_tail.len() {
        acc += (a_tail[i] - b_tail[i]).abs();
    }
    acc
}

/// Blocked L∞ (Chebyshev) distance.
#[inline]
pub fn linf(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut m = 0.0f32;
    for i in 0..a.len() {
        m = m.max((a[i] - b[i]).abs());
    }
    m
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine *distance* `1 - cos(a, b)`. Zero vectors are treated as maximally
/// dissimilar (distance 1) to keep the result finite.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let (mut dd, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for i in 0..a.len() {
        dd += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    let denom = (na * nb).sqrt();
    if denom == 0.0 {
        1.0
    } else {
        1.0 - dd / denom
    }
}

/// Minkowski distance of order `p` (supports fractional p > 0).
#[inline]
pub fn minkowski(a: &[f32], b: &[f32], p: f32) -> f32 {
    debug_assert!(p > 0.0);
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += (a[i] - b[i]).abs().powf(p);
    }
    acc.powf(1.0 / p)
}

/// Hamming distance over the signs of the components (the standard way to
/// apply Hamming to real-valued embeddings: binarize at zero).
#[inline]
pub fn hamming_sign(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0u32;
    for i in 0..a.len() {
        acc += ((a[i] >= 0.0) != (b[i] >= 0.0)) as u32;
    }
    acc as f32
}

/// Hamming distance between packed 64-bit binary codes.
#[inline]
pub fn hamming_codes(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Weighted squared Euclidean distance (used by learned diagonal metrics).
#[inline]
pub fn weighted_l2_sq(a: &[f32], b: &[f32], w: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += w[i] * d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// Batched kernels: one query against many contiguous rows
// ---------------------------------------------------------------------------

/// Compute squared L2 from `q` to each row of the row-major `rows` buffer,
/// writing into `out`. This is the similarity-projection inner loop: keeping
/// it batched lets the compiler keep `q` in registers across rows.
pub fn l2_sq_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    debug_assert_eq!(q.len(), dim);
    debug_assert_eq!(rows.len(), dim * out.len());
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
        *o = l2_sq(q, row);
    }
}

/// Batched dot products.
pub fn dot_batch(q: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
    debug_assert_eq!(q.len(), dim);
    debug_assert_eq!(rows.len(), dim * out.len());
    for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
        *o = dot(q, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_pair(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        (a, b)
    }

    #[test]
    fn blocked_matches_scalar_l2() {
        for dim in [1, 3, 7, 8, 9, 16, 63, 64, 65, 128, 300] {
            let (a, b) = random_pair(dim, dim as u64);
            let fast = l2_sq(&a, &b);
            let slow = l2_sq_scalar(&a, &b);
            assert!((fast - slow).abs() <= 1e-3 * slow.max(1.0), "dim {dim}: {fast} vs {slow}");
        }
    }

    #[test]
    fn blocked_matches_scalar_dot() {
        for dim in [1, 5, 8, 17, 96, 257] {
            let (a, b) = random_pair(dim, 100 + dim as u64);
            let fast = dot(&a, &b);
            let slow = dot_scalar(&a, &b);
            assert!((fast - slow).abs() <= 1e-3 * slow.abs().max(1.0), "dim {dim}");
        }
    }

    #[test]
    fn blocked_matches_scalar_l1() {
        for dim in [1, 8, 33, 100] {
            let (a, b) = random_pair(dim, 200 + dim as u64);
            assert!((l1(&a, &b) - l1_scalar(&a, &b)).abs() < 1e-3);
        }
    }

    #[test]
    fn known_values() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(l2_sq(&a, &b), 25.0);
        assert_eq!(dot(&a, &b), 25.0);
        assert_eq!(l1(&a, &b), 7.0);
        assert_eq!(linf(&a, &b), 4.0);
        assert!((minkowski(&a, &b, 2.0) - 5.0).abs() < 1e-6);
        assert!((minkowski(&a, &b, 1.0) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        assert!(cosine_distance(&a, &[2.0, 0.0]).abs() < 1e-6, "parallel => 0");
        assert!((cosine_distance(&a, &[0.0, 3.0]) - 1.0).abs() < 1e-6, "orthogonal => 1");
        assert!((cosine_distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6, "opposite => 2");
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0, "zero vector => 1");
    }

    #[test]
    fn hamming_variants() {
        assert_eq!(hamming_sign(&[1.0, -1.0, 1.0], &[1.0, 1.0, -1.0]), 2.0);
        assert_eq!(hamming_codes(&[0b1011], &[0b0110]), 3);
    }

    #[test]
    fn weighted_l2_reduces_to_l2_with_unit_weights() {
        let (a, b) = random_pair(16, 7);
        let w = vec![1.0f32; 16];
        assert!((weighted_l2_sq(&a, &b, &w) - l2_sq(&a, &b)).abs() < 1e-4);
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = Rng::seed_from_u64(9);
        let dim = 24;
        let n = 17;
        let q: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let rows: Vec<f32> = (0..dim * n).map(|_| rng.normal_f32()).collect();
        let mut out = vec![0.0; n];
        l2_sq_batch(&q, &rows, dim, &mut out);
        for i in 0..n {
            let expect = l2_sq(&q, &rows[i * dim..(i + 1) * dim]);
            assert!((out[i] - expect).abs() < 1e-4);
        }
        dot_batch(&q, &rows, dim, &mut out);
        for i in 0..n {
            let expect = dot(&q, &rows[i * dim..(i + 1) * dim]);
            assert!((out[i] - expect).abs() < 1e-4);
        }
    }
}
