//! Similarity score design (§2.1 of the paper).
//!
//! All scores are exposed under a single *distance* convention
//! (lower = more similar) so that indexes, heaps, and plans compose without
//! per-score special cases. Similarity-flavoured scores (inner product,
//! cosine) are mapped to distances by an order-reversing transform;
//! [`Metric::similarity`] recovers the natural orientation for users.

use crate::error::{Error, Result};
use crate::kernel;
use crate::linalg::Matrix;
use crate::vector::Vectors;
use std::sync::Arc;

/// A similarity score from the paper's "basic scores" taxonomy, plus the
/// learned diagonal metric (§2.1 score design).
#[derive(Debug, Clone)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in L2; cheaper — no sqrt).
    SquaredEuclidean,
    /// Euclidean (L2 / Minkowski p=2) distance.
    Euclidean,
    /// Manhattan (L1 / Minkowski p=1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
    /// Minkowski distance of arbitrary order `p > 0` (fractional allowed;
    /// see the curse-of-dimensionality discussion, §2.1).
    Minkowski(f32),
    /// Negated inner product: `-(a·b)` so that larger dot products sort
    /// first under the distance convention.
    InnerProduct,
    /// Cosine distance `1 - cos(a,b)`.
    Cosine,
    /// Hamming distance over component signs.
    Hamming,
    /// Mahalanobis distance with a precomputed inverse covariance matrix.
    Mahalanobis(Arc<Matrix>),
    /// Learned diagonal metric: weighted squared Euclidean with
    /// per-dimension weights (see `score::learned`).
    WeightedL2(Arc<Vec<f32>>),
}

impl Metric {
    /// Distance between two vectors; **lower is more similar** for every
    /// variant.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredEuclidean => kernel::l2_sq(a, b),
            Metric::Euclidean => kernel::l2_sq(a, b).sqrt(),
            Metric::Manhattan => kernel::l1(a, b),
            Metric::Chebyshev => kernel::linf(a, b),
            Metric::Minkowski(p) => kernel::minkowski(a, b, *p),
            Metric::InnerProduct => -kernel::dot(a, b),
            Metric::Cosine => kernel::cosine_distance(a, b),
            Metric::Hamming => kernel::hamming_sign(a, b),
            Metric::Mahalanobis(inv_cov) => {
                let d = a.len();
                debug_assert_eq!(inv_cov.rows(), d);
                let diff: Vec<f64> = (0..d).map(|i| (a[i] - b[i]) as f64).collect();
                let md = inv_cov.matvec(&diff);
                let q: f64 = diff.iter().zip(&md).map(|(x, y)| x * y).sum();
                q.max(0.0).sqrt() as f32
            }
            Metric::WeightedL2(w) => kernel::weighted_l2_sq(a, b, w),
        }
    }

    /// Distances from `query` to every `dim`-wide row of the contiguous
    /// `rows` buffer, written into `out` (one entry per row).
    ///
    /// The L2-family and inner-product variants route through the
    /// dispatched multi-row SIMD kernels ([`kernel::l2_sq_batch`] /
    /// [`kernel::dot_batch`]); the remaining variants fall back to per-row
    /// [`Metric::distance`]. Results are identical to calling `distance`
    /// row by row.
    pub fn distance_batch(&self, query: &[f32], rows: &[f32], dim: usize, out: &mut [f32]) {
        match self {
            Metric::SquaredEuclidean => kernel::l2_sq_batch(query, rows, dim, out),
            Metric::Euclidean => {
                kernel::l2_sq_batch(query, rows, dim, out);
                for d in out.iter_mut() {
                    *d = d.sqrt();
                }
            }
            Metric::InnerProduct => {
                kernel::dot_batch(query, rows, dim, out);
                for d in out.iter_mut() {
                    *d = -*d;
                }
            }
            Metric::Cosine => {
                for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
                    *o = kernel::cosine_distance(query, row);
                }
            }
            _ => {
                for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
                    *o = self.distance(query, row);
                }
            }
        }
    }

    /// Distances from `query` to the rows of `vectors` named by `ids`,
    /// written into `out` (parallel to `ids`).
    ///
    /// The gathered rows are not contiguous, so the L2/IP variants use the
    /// four-row kernels ([`kernel::l2_sq_x4`] / [`kernel::dot_x4`]) that
    /// share one query load across four independent accumulator chains —
    /// the scoring shape of IVF list scans and graph neighbor expansion.
    pub fn distance_gather(&self, query: &[f32], vectors: &Vectors, ids: &[u32], out: &mut [f32]) {
        debug_assert_eq!(ids.len(), out.len());
        let n = ids.len().min(out.len());
        match self {
            Metric::SquaredEuclidean | Metric::Euclidean | Metric::InnerProduct => {
                let mut i = 0;
                while i + 4 <= n {
                    let r0 = vectors.get(ids[i] as usize);
                    let r1 = vectors.get(ids[i + 1] as usize);
                    let r2 = vectors.get(ids[i + 2] as usize);
                    let r3 = vectors.get(ids[i + 3] as usize);
                    let d = match self {
                        Metric::InnerProduct => {
                            let mut d = kernel::dot_x4(query, r0, r1, r2, r3);
                            for v in d.iter_mut() {
                                *v = -*v;
                            }
                            d
                        }
                        Metric::Euclidean => {
                            let mut d = kernel::l2_sq_x4(query, r0, r1, r2, r3);
                            for v in d.iter_mut() {
                                *v = v.sqrt();
                            }
                            d
                        }
                        _ => kernel::l2_sq_x4(query, r0, r1, r2, r3),
                    };
                    out[i..i + 4].copy_from_slice(&d);
                    i += 4;
                }
                while i < n {
                    out[i] = self.distance(query, vectors.get(ids[i] as usize));
                    i += 1;
                }
            }
            _ => {
                for i in 0..n {
                    out[i] = self.distance(query, vectors.get(ids[i] as usize));
                }
            }
        }
    }

    /// The natural similarity orientation of this score: higher is more
    /// similar. For distance-flavoured scores this is the negated distance.
    #[inline]
    pub fn similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::InnerProduct => kernel::dot(a, b),
            Metric::Cosine => 1.0 - kernel::cosine_distance(a, b),
            _ => -self.distance(a, b),
        }
    }

    /// Whether this score satisfies the metric axioms (identity, symmetry,
    /// triangle inequality). Graph indexes with pruning rules that assume
    /// the triangle inequality can still be *used* with non-metric scores,
    /// but lose their theoretical guarantees — callers can check this.
    pub fn is_true_metric(&self) -> bool {
        match self {
            Metric::Euclidean
            | Metric::Manhattan
            | Metric::Chebyshev
            | Metric::Hamming
            | Metric::Mahalanobis(_) => true,
            Metric::Minkowski(p) => *p >= 1.0,
            Metric::SquaredEuclidean
            | Metric::InnerProduct
            | Metric::Cosine
            | Metric::WeightedL2(_) => false,
        }
    }

    /// Validate parameters (e.g. Minkowski order, Mahalanobis shape).
    pub fn validate(&self, dim: usize) -> Result<()> {
        match self {
            Metric::Minkowski(p) if p.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) => {
                Err(Error::InvalidParameter(format!(
                    "Minkowski order must be > 0, got {p}"
                )))
            }
            Metric::Mahalanobis(m) if m.rows() != dim || m.cols() != dim => {
                Err(Error::InvalidParameter(format!(
                    "Mahalanobis matrix is {}x{}, data dimension is {dim}",
                    m.rows(),
                    m.cols()
                )))
            }
            Metric::WeightedL2(w) if w.len() != dim => Err(Error::InvalidParameter(format!(
                "weight vector has {} entries, data dimension is {dim}",
                w.len()
            ))),
            _ => Ok(()),
        }
    }

    /// Short stable name (used in experiment output and VQL).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::SquaredEuclidean => "l2sq",
            Metric::Euclidean => "l2",
            Metric::Manhattan => "l1",
            Metric::Chebyshev => "linf",
            Metric::Minkowski(_) => "minkowski",
            Metric::InnerProduct => "ip",
            Metric::Cosine => "cosine",
            Metric::Hamming => "hamming",
            Metric::Mahalanobis(_) => "mahalanobis",
            Metric::WeightedL2(_) => "weighted_l2",
        }
    }

    /// Parse a metric by name (the forms without parameters).
    pub fn parse(name: &str) -> Result<Metric> {
        match name {
            "l2sq" => Ok(Metric::SquaredEuclidean),
            "l2" | "euclidean" => Ok(Metric::Euclidean),
            "l1" | "manhattan" => Ok(Metric::Manhattan),
            "linf" | "chebyshev" => Ok(Metric::Chebyshev),
            "ip" | "dot" | "inner_product" => Ok(Metric::InnerProduct),
            "cosine" | "cos" => Ok(Metric::Cosine),
            "hamming" => Ok(Metric::Hamming),
            other => Err(Error::Parse(format!("unknown metric `{other}`"))),
        }
    }
}

impl PartialEq for Metric {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Metric::Minkowski(a), Metric::Minkowski(b)) => a == b,
            (Metric::Mahalanobis(a), Metric::Mahalanobis(b)) => Arc::ptr_eq(a, b) || a == b,
            (Metric::WeightedL2(a), Metric::WeightedL2(b)) => a == b,
            _ => std::mem::discriminant(self) == std::mem::discriminant(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;
    use crate::rng::Rng;
    use crate::vector::Vectors;

    #[test]
    fn lower_is_more_similar_for_all_variants() {
        // q is closer to a than to b in every reasonable sense.
        let q = [1.0, 1.0, 0.0, 0.0];
        let a = [1.1, 0.9, 0.0, 0.0];
        let b = [-1.0, -1.0, 5.0, 5.0];
        let metrics = [
            Metric::SquaredEuclidean,
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(0.5),
            Metric::InnerProduct,
            Metric::Cosine,
            Metric::Hamming,
        ];
        for m in metrics {
            assert!(
                m.distance(&q, &a) < m.distance(&q, &b),
                "{} ordered wrong",
                m.name()
            );
        }
    }

    #[test]
    fn similarity_reverses_distance_order() {
        let q = [1.0, 2.0];
        let a = [1.0, 2.1];
        let b = [9.0, -4.0];
        for m in [Metric::Euclidean, Metric::InnerProduct, Metric::Cosine] {
            assert!(m.similarity(&q, &a) > m.similarity(&q, &b));
        }
    }

    #[test]
    fn mahalanobis_with_identity_is_euclidean() {
        let inv = Arc::new(Matrix::identity(3));
        let m = Metric::Mahalanobis(inv);
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((m.distance(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mahalanobis_downweights_high_variance_axes() {
        // Covariance with large variance on axis 0.
        let mut rng = Rng::seed_from_u64(1);
        let mut v = Vectors::new(2);
        for _ in 0..1000 {
            v.push(&[rng.normal_f32() * 10.0, rng.normal_f32() * 0.5])
                .unwrap();
        }
        let cov = linalg::covariance(&v).unwrap();
        let inv = Arc::new(cov.inverse().unwrap());
        let m = Metric::Mahalanobis(inv);
        // A 1-unit offset along the high-variance axis should count less
        // than along the low-variance axis.
        let o = [0.0, 0.0];
        assert!(m.distance(&o, &[1.0, 0.0]) < m.distance(&o, &[0.0, 1.0]));
    }

    #[test]
    fn metric_axioms_flags() {
        assert!(Metric::Euclidean.is_true_metric());
        assert!(!Metric::SquaredEuclidean.is_true_metric());
        assert!(!Metric::Minkowski(0.5).is_true_metric());
        assert!(Metric::Minkowski(3.0).is_true_metric());
        assert!(!Metric::InnerProduct.is_true_metric());
    }

    #[test]
    fn validate_catches_bad_params() {
        assert!(Metric::Minkowski(0.0).validate(4).is_err());
        assert!(Metric::Minkowski(-1.0).validate(4).is_err());
        let m = Metric::Mahalanobis(Arc::new(Matrix::identity(3)));
        assert!(m.validate(4).is_err());
        assert!(m.validate(3).is_ok());
        let w = Metric::WeightedL2(Arc::new(vec![1.0; 2]));
        assert!(w.validate(3).is_err());
    }

    #[test]
    fn batch_and_gather_match_pairwise_distance() {
        let mut rng = Rng::seed_from_u64(42);
        let dim = 19;
        let n = 13;
        let mut v = Vectors::new(dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
            v.push(&row).unwrap();
        }
        let q: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
        let ids: Vec<u32> = (0..n as u32).rev().collect();
        let metrics = [
            Metric::SquaredEuclidean,
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::InnerProduct,
            Metric::Cosine,
        ];
        for m in metrics {
            let mut batch = vec![0.0; n];
            m.distance_batch(&q, v.as_flat(), dim, &mut batch);
            for i in 0..n {
                let want = m.distance(&q, v.get(i));
                assert!(
                    (batch[i] - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{} batch row {i}: {} vs {want}",
                    m.name(),
                    batch[i]
                );
            }
            let mut gathered = vec![0.0; n];
            m.distance_gather(&q, &v, &ids, &mut gathered);
            for i in 0..n {
                let want = m.distance(&q, v.get(ids[i] as usize));
                assert!(
                    (gathered[i] - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{} gather slot {i}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for name in ["l2", "l2sq", "l1", "linf", "ip", "cosine", "hamming"] {
            let m = Metric::parse(name).unwrap();
            assert!(Metric::parse(m.name()).is_ok());
        }
        assert!(Metric::parse("nope").is_err());
    }
}
