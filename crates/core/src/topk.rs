//! Top-k selection under the distance convention (lower = better).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A search hit: internal row id plus distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row id within the collection.
    pub id: usize,
    /// Distance to the query (lower = more similar).
    pub dist: f32,
}

impl Neighbor {
    /// Construct a neighbor.
    #[inline]
    pub fn new(id: usize, dist: f32) -> Self {
        Neighbor { id, dist }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Total order by distance (via `total_cmp`, so NaN cannot poison the
    /// heap), then by id for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded max-heap keeping the `k` smallest-distance neighbors seen.
///
/// `push` is O(log k); the common rejection path (candidate worse than the
/// current k-th best) is O(1) via [`TopK::threshold`].
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl Default for TopK {
    /// A width-1 selector; reusable holders call [`TopK::reset`] with the
    /// real width before use.
    fn default() -> Self {
        TopK::new(1)
    }
}

impl TopK {
    /// Create a selector for the `k` best neighbors.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Empty the selector and set a new width, retaining the heap's
    /// allocation. This is how a pooled [`crate::context::SearchContext`]
    /// reuses one selector across queries of different widths.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self.heap.clear();
    }

    /// Current selection width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Offer a candidate. Returns true if it entered the top-k.
    #[inline]
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(n);
            true
        } else if n < *self.heap.peek().expect("non-empty") {
            self.heap.pop();
            self.heap.push(n);
            true
        } else {
            false
        }
    }

    /// Current worst (largest) retained distance, or `f32::INFINITY` while
    /// fewer than `k` candidates have been seen. Useful as a pruning bound.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map(|n| n.dist).unwrap_or(f32::INFINITY)
        }
    }

    /// Number of candidates currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the selector holds `k` candidates.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Consume into neighbors sorted best-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Empty the selector into a best-first sorted vector, keeping the
    /// heap's allocation for the next query (the reusable counterpart of
    /// [`TopK::into_sorted`]).
    pub fn drain_sorted(&mut self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.drain().collect();
        v.sort_unstable();
        v
    }
}

/// Exact top-k by full sort (oracle for tests, and the brute-force scan's
/// final step when `k` is close to `n`).
pub fn top_k_by_sort(mut candidates: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    candidates.sort_unstable();
    candidates.truncate(k);
    candidates
}

/// Merge several already-sorted neighbor lists into a single sorted top-k
/// (the scatter-gather reduce step). Deduplicates by id, keeping the best
/// distance.
pub fn merge_sorted_topk(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut out = TopK::new(k.max(1));
    let mut seen = std::collections::HashMap::new();
    for list in lists {
        for &n in list {
            match seen.get(&n.id) {
                Some(&d) if d <= n.dist => continue,
                _ => {
                    seen.insert(n.id, n.dist);
                }
            }
        }
    }
    for (id, dist) in seen {
        out.push(Neighbor::new(id, dist));
    }
    out.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            t.push(Neighbor::new(id, d));
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn threshold_tracks_worst_retained() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(Neighbor::new(0, 2.0));
        assert_eq!(t.threshold(), f32::INFINITY, "not yet full");
        t.push(Neighbor::new(1, 1.0));
        assert_eq!(t.threshold(), 2.0);
        t.push(Neighbor::new(2, 0.5));
        assert_eq!(t.threshold(), 1.0);
        assert!(!t.push(Neighbor::new(3, 9.0)), "worse candidate rejected");
    }

    #[test]
    fn fewer_than_k_candidates() {
        let mut t = TopK::new(10);
        t.push(Neighbor::new(7, 1.5));
        let out = t.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut t = TopK::new(2);
        for id in [5, 3, 9, 1] {
            t.push(Neighbor::new(id, 1.0));
        }
        let ids: Vec<usize> = t.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn matches_sort_oracle_on_random_input() {
        let mut rng = Rng::seed_from_u64(21);
        for _ in 0..20 {
            let n = rng.range(1, 200);
            let k = rng.range(1, 50);
            let cands: Vec<Neighbor> = (0..n).map(|id| Neighbor::new(id, rng.f32())).collect();
            let mut t = TopK::new(k);
            for &c in &cands {
                t.push(c);
            }
            assert_eq!(t.into_sorted(), top_k_by_sort(cands, k));
        }
    }

    #[test]
    fn merge_dedupes_keeping_best() {
        let a = vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.0)];
        let b = vec![Neighbor::new(1, 0.2), Neighbor::new(3, 0.8)];
        let merged = merge_sorted_topk(&[a, b], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0], Neighbor::new(1, 0.2));
        assert_eq!(merged[1], Neighbor::new(3, 0.8));
        assert_eq!(merged[2], Neighbor::new(2, 1.0));
    }

    #[test]
    fn nan_distance_does_not_poison_order() {
        // NaN sorts last under total_cmp; a NaN candidate never displaces
        // finite ones.
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, f32::NAN));
        t.push(Neighbor::new(1, 1.0));
        t.push(Neighbor::new(2, 2.0));
        let ids: Vec<usize> = t.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
