//! Dense vector storage: a row-major `f32` matrix with validation.

use crate::error::{Error, Result};

/// A collection of fixed-dimension `f32` vectors stored contiguously in
/// row-major order.
///
/// This is the in-memory representation every index builds from. Vectors
/// are validated on insert: components must be finite (NaN would poison
/// similarity comparisons and heap ordering downstream).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Vectors {
    dim: usize,
    data: Vec<f32>,
}

impl Vectors {
    /// Create an empty collection of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Vectors {
            dim,
            data: Vec::new(),
        }
    }

    /// Create with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Vectors {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Build from a flat row-major buffer. `data.len()` must be a multiple
    /// of `dim` and every component must be finite.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidParameter("dimension must be positive".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::DimensionMismatch {
                expected: dim,
                actual: data.len() % dim,
            });
        }
        if let Some(pos) = data.iter().position(|x| !x.is_finite()) {
            return Err(Error::NonFiniteVector {
                position: pos % dim,
            });
        }
        Ok(Vectors { dim, data })
    }

    /// Dimensionality of every vector in the collection.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the collection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a vector, validating dimension and finiteness. Returns the
    /// new vector's position.
    pub fn push(&mut self, v: &[f32]) -> Result<usize> {
        if v.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: v.len(),
            });
        }
        if let Some(pos) = v.iter().position(|x| !x.is_finite()) {
            return Err(Error::NonFiniteVector { position: pos });
        }
        self.data.extend_from_slice(v);
        Ok(self.len() - 1)
    }

    /// Borrow vector `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow vector `i`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The underlying flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterate over all vectors in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Copy out a subset of rows as a new `Vectors` (used by partitioners).
    pub fn select(&self, rows: &[usize]) -> Vectors {
        let mut out = Vectors::with_capacity(self.dim, rows.len());
        for &r in rows {
            out.data.extend_from_slice(self.get(r));
        }
        out
    }

    /// L2-normalize every vector in place. Zero vectors are left unchanged.
    pub fn normalize(&mut self) {
        let dim = self.dim;
        for row in self.data.chunks_exact_mut(dim) {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Component-wise mean of all vectors.
    pub fn centroid(&self) -> Result<Vec<f32>> {
        if self.is_empty() {
            return Err(Error::EmptyCollection);
        }
        let mut c = vec![0.0f64; self.dim];
        for row in self.iter() {
            for (a, &b) in c.iter_mut().zip(row) {
                *a += b as f64;
            }
        }
        let n = self.len() as f64;
        Ok(c.into_iter().map(|x| (x / n) as f32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut v = Vectors::new(3);
        assert_eq!(v.push(&[1.0, 2.0, 3.0]).unwrap(), 0);
        assert_eq!(v.push(&[4.0, 5.0, 6.0]).unwrap(), 1);
        assert_eq!(v.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.dim(), 3);
    }

    #[test]
    fn rejects_wrong_dimension() {
        let mut v = Vectors::new(3);
        assert!(matches!(
            v.push(&[1.0, 2.0]),
            Err(Error::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut v = Vectors::new(2);
        assert!(matches!(
            v.push(&[1.0, f32::NAN]),
            Err(Error::NonFiniteVector { position: 1 })
        ));
        assert!(matches!(
            v.push(&[f32::INFINITY, 0.0]),
            Err(Error::NonFiniteVector { position: 0 })
        ));
        assert!(v.is_empty());
    }

    #[test]
    fn from_flat_validates() {
        assert!(Vectors::from_flat(3, vec![1.0; 7]).is_err());
        assert!(Vectors::from_flat(0, vec![]).is_err());
        assert!(Vectors::from_flat(2, vec![0.0, f32::NAN]).is_err());
        let v = Vectors::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn select_copies_rows() {
        let v = Vectors::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]).unwrap();
        let s = v.select(&[2, 0]);
        assert_eq!(s.get(0), &[2.0, 2.0]);
        assert_eq!(s.get(1), &[0.0, 0.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = Vectors::from_flat(2, vec![3.0, 4.0, 0.0, 0.0]).unwrap();
        v.normalize();
        assert!((v.get(0)[0] - 0.6).abs() < 1e-6);
        assert!((v.get(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(v.get(1), &[0.0, 0.0], "zero vector untouched");
    }

    #[test]
    fn centroid_of_points() {
        let v = Vectors::from_flat(2, vec![0.0, 0.0, 2.0, 4.0]).unwrap();
        assert_eq!(v.centroid().unwrap(), vec![1.0, 2.0]);
        assert!(matches!(
            Vectors::new(2).centroid(),
            Err(Error::EmptyCollection)
        ));
    }

    #[test]
    fn iter_matches_get() {
        let v = Vectors::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let rows: Vec<&[f32]> = v.iter().collect();
        assert_eq!(rows, vec![v.get(0), v.get(1)]);
    }
}
