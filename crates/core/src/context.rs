//! Reusable per-query search scratch (the §2.3 execution arena).
//!
//! Every index search needs the same transient state: an epoch-stamped
//! visited set, a candidate frontier, bounded result pools, and small
//! scratch buffers (PQ residuals, probe orderings, candidate id lists).
//! Allocating these from cold on every query costs O(n) zeroing plus
//! allocator round-trips — exactly the per-query overhead the paper's
//! batched-execution argument (§2.3) says real systems amortize away.
//!
//! A [`SearchContext`] owns all of that state and is reused across
//! queries: the visited set resets by epoch bump (O(1)), pools and
//! buffers by `clear` (capacity retained), so a *warm* context performs
//! zero allocations for state that survives between queries. Batched
//! paths keep one context per worker thread ([`ContextPool`]); the
//! legacy single-shot `search()` wrappers fall back to a thread-local
//! context ([`with_local`]) so even context-unaware callers get reuse.

use crate::bitset::VisitedSet;
use crate::sync::Mutex;
use crate::topk::{Neighbor, TopK};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::ops::{Deref, DerefMut};

/// Reusable scratch arena for index searches.
///
/// Fields are public and deliberately generic: each index family borrows
/// the pieces it needs (a graph search uses `visited`/`frontier`/`pool`/
/// `bound_pool`; IVF-PQ uses `order`/`scratch`/`pool`/`rerank`; trees use
/// `frontier`/`visited`/`pool`). Index-specific typed scratch that core
/// cannot name (e.g. ADC tables) lives in the [`SearchContext::ext`]
/// slot, keyed by type.
///
/// A context is *not* tied to one index: sizes grow on demand and the
/// visited set is epoch-reset, so one context can serve interleaved
/// searches over different indexes, as the plan executor does.
#[derive(Debug, Default)]
pub struct SearchContext {
    /// Epoch-stamped visited set (graph traversal, replica dedup).
    pub visited: VisitedSet,
    /// Min-heap candidate frontier (graph beam search, forest best-first).
    pub frontier: BinaryHeap<Reverse<Neighbor>>,
    /// Primary bounded result pool.
    pub pool: TopK,
    /// Secondary pool: the beam-search termination bound over all
    /// visited nodes (kept separate so filtering cannot reshape the
    /// traversal frontier).
    pub bound_pool: TopK,
    /// Rerank/refine pool for quantized indexes.
    pub rerank: TopK,
    /// `f32` scratch (PQ residuals, decoded vectors).
    pub scratch: Vec<f32>,
    /// `(score, id)` scratch (probe orderings, scored candidate lists).
    pub order: Vec<(f32, u32)>,
    /// Plain id scratch (LSH candidate collection, batched neighbor
    /// gathering in graph expansion).
    pub ids: Vec<u32>,
    /// Distance scratch parallel to a candidate list; the output buffer of
    /// the batched scoring kernels (flat scans, IVF list scans, graph
    /// neighbor expansion).
    pub dists: Vec<f32>,
    /// Contiguous row-matrix scratch for frontier/page batches: disk
    /// indexes decode a whole page (or expansion batch) of page-resident
    /// vectors here and score them in one `distance_batch` kernel call
    /// instead of per-float scalar loops.
    pub rows: Vec<f32>,
    /// Index-specific typed scratch, keyed by type (see [`Self::ext`]).
    ext: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl SearchContext {
    /// An empty context; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context pre-sized for an index over `n` rows (avoids the one
    /// growth allocation on the first query).
    pub fn for_index(n: usize) -> Self {
        let mut ctx = Self::new();
        ctx.visited.grow(n);
        ctx
    }

    /// Prepare for a search over `n` rows: grow and epoch-reset the
    /// visited set, clear the frontier. Pools are reset by the search
    /// routine itself, which knows its widths.
    #[inline]
    pub fn begin(&mut self, n: usize) {
        self.visited.grow(n);
        self.visited.reset();
        self.frontier.clear();
    }

    /// Typed extension scratch: returns (creating on first use) the
    /// unique `T` slot of this context. Index crates use this for
    /// scratch whose type core cannot know, e.g. reusable ADC tables.
    pub fn ext<T: Default + Send + 'static>(&mut self) -> &mut T {
        self.ext
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("ext slot is keyed by its own TypeId")
    }
}

/// A shared pool of [`SearchContext`]s for concurrent callers.
///
/// `acquire` pops a warm context (or creates one if the pool is dry) and
/// returns it on drop, so N concurrent searchers stabilize at N contexts
/// total regardless of how many queries they serve. Used by the
/// distributed scatter workers and the collection facade, whose callers
/// hold `&self`.
#[derive(Debug, Default)]
pub struct ContextPool {
    free: Mutex<Vec<SearchContext>>,
}

impl ContextPool {
    /// An empty pool.
    pub const fn new() -> Self {
        ContextPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Check out a context; it returns to the pool when the guard drops.
    pub fn acquire(&self) -> PooledContext<'_> {
        let ctx = self.free.lock().pop().unwrap_or_default();
        PooledContext {
            pool: self,
            ctx: Some(ctx),
        }
    }

    /// Number of idle contexts currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// RAII guard over a pooled [`SearchContext`]; derefs to the context and
/// returns it to its [`ContextPool`] on drop.
#[derive(Debug)]
pub struct PooledContext<'a> {
    pool: &'a ContextPool,
    ctx: Option<SearchContext>,
}

impl Deref for PooledContext<'_> {
    type Target = SearchContext;
    fn deref(&self) -> &SearchContext {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut SearchContext {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.pool.free.lock().push(ctx);
        }
    }
}

thread_local! {
    static LOCAL_CONTEXT: RefCell<SearchContext> = RefCell::new(SearchContext::new());
}

/// Run `f` with this thread's shared [`SearchContext`].
///
/// The context-free `search()`-style trait wrappers route through here,
/// so legacy callers still reuse scratch across queries on the same
/// thread. Re-entrant use (an index searching inside another index's
/// search, e.g. SPANN probing its centroid index) falls back to a fresh
/// context instead of aliasing the borrowed one.
pub fn with_local<R>(f: impl FnOnce(&mut SearchContext) -> R) -> R {
    LOCAL_CONTEXT.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ctx) => f(&mut ctx),
        Err(_) => f(&mut SearchContext::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_grows_and_resets() {
        let mut ctx = SearchContext::new();
        ctx.begin(100);
        assert!(ctx.visited.visit(42));
        assert!(!ctx.visited.visit(42));
        ctx.begin(100);
        assert!(ctx.visited.visit(42), "epoch reset forgets prior visits");
        ctx.begin(200);
        assert!(ctx.visited.visit(199), "grown to the larger index");
    }

    #[test]
    fn ext_slots_are_typed_and_persistent() {
        #[derive(Default)]
        struct Scratch(Vec<u8>);
        let mut ctx = SearchContext::new();
        ctx.ext::<Scratch>().0.push(7);
        assert_eq!(ctx.ext::<Scratch>().0, vec![7], "same slot on re-access");
    }

    #[test]
    fn pool_recycles_contexts() {
        let pool = ContextPool::new();
        {
            let mut a = pool.acquire();
            a.scratch.resize(128, 0.0);
        }
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert_eq!(b.scratch.len(), 128, "warm context came back");
        assert_eq!(pool.idle(), 0);
        drop(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn with_local_reuses_and_tolerates_reentry() {
        with_local(|ctx| ctx.scratch.push(1.0));
        with_local(|outer| {
            assert_eq!(outer.scratch.len(), 1, "thread-local persisted");
            // Nested call must not alias the outer borrow.
            with_local(|inner| assert!(inner.scratch.is_empty()));
        });
    }
}
