//! Deterministic, seedable random number generation.
//!
//! Index construction in a VDBMS must be reproducible: two builds from the
//! same data and seed should produce byte-identical indexes so that
//! experiments, regression tests, and distributed replicas agree. To
//! guarantee bit-stability across platforms and dependency upgrades we
//! vendor a small generator (SplitMix64 for seeding, xoshiro256★★ for the
//! stream) instead of depending on `rand`.
//!
//! # Stream splitting for parallel builds
//!
//! Multi-threaded builders must not thread one shared `&mut Rng` through
//! their insert loops — the interleaving (and therefore the build) would
//! depend on scheduling. Two splitting schemes are used instead, both
//! independent of thread count:
//!
//! - [`Rng::stream`]`(seed, id)` derives the `id`-th generator from a
//!   base seed *without* consuming any parent state: the pair is folded
//!   as `seed XOR (id + 1) · GOLDEN_GAMMA` and pushed through one extra
//!   SplitMix64 scramble before the usual four-word state expansion, so
//!   adjacent ids (and the unsplit `seed_from_u64(seed)` stream itself)
//!   are decorrelated. Use one stream per logical unit of work — per
//!   node, per subspace, per shard — keyed by the unit's index, never by
//!   the worker's.
//! - [`Rng::fork`] consumes one parent draw to seed a child. It is
//!   sequential by nature, so parallel builders pre-fork their children
//!   serially (e.g. one generator per tree of a forest, forked in tree
//!   order) and hand the children to workers; the forked sequence is
//!   then identical to the serial build's.

/// SplitMix64: used to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256★★ pseudo-random generator with convenience methods for the
/// distributions the workspace needs (uniform, normal, shuffle, sampling).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child stream; useful for giving each worker or
    /// each tree in a forest its own deterministic generator.
    pub fn fork(&mut self) -> Self {
        Rng::seed_from_u64(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Derive the `stream`-th independent generator from a base `seed`
    /// without consuming any parent state (see the module docs on
    /// stream splitting). The same `(seed, stream)` pair always yields
    /// the same generator, regardless of how many threads a build uses
    /// or in what order streams are created — the determinism anchor
    /// for per-node / per-subspace randomness in parallel builds.
    pub fn stream(seed: u64, stream: u64) -> Self {
        // Fold the pair and scramble once so stream ids that differ in
        // few bits (0, 1, 2, ...) land on unrelated seeds; `stream + 1`
        // keeps stream 0 distinct from the plain `seed_from_u64(seed)`.
        let mut folded = seed ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mixed = splitmix64(&mut folded);
        Rng::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        let bound = bound as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via the Box-Muller transform (cached spare).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Rejection-free polar-less form: u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Standard normal as `f32`.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal() as f32
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)`. Uses a partial
    /// Fisher-Yates over an index table when `k` is a large fraction of `n`,
    /// and rejection sampling otherwise.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 3 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.range(i, n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.below(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }

    /// Choose one element of a slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }

    /// Geometric-like level draw used by HNSW: `floor(-ln(U) * mult)`.
    pub fn hnsw_level(&mut self, mult: f64) -> usize {
        let u = 1.0 - self.f64(); // in (0, 1]
        ((-u.ln()) * mult).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(c.abs_diff(expected) < expected / 5, "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(3);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::seed_from_u64(11);
        for &(n, k) in &[(10, 10), (100, 5), (100, 90), (1, 1), (50, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(1234);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_splitting_is_stable_and_decorrelated() {
        // Same (seed, stream) pair → same generator.
        let mut a = Rng::stream(42, 7);
        let mut b = Rng::stream(42, 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent streams, and the base stream, are unrelated.
        let mut base = Rng::seed_from_u64(42);
        let mut s0 = Rng::stream(42, 0);
        let mut s1 = Rng::stream(42, 1);
        let mut same_base = 0;
        let mut same_adjacent = 0;
        for _ in 0..64 {
            let x0 = s0.next_u64();
            if x0 == base.next_u64() {
                same_base += 1;
            }
            if x0 == s1.next_u64() {
                same_adjacent += 1;
            }
        }
        assert!(same_base < 4, "stream 0 collides with the unsplit seed");
        assert!(same_adjacent < 4, "adjacent streams collide");
    }

    #[test]
    fn hnsw_level_distribution_decays() {
        let mut r = Rng::seed_from_u64(77);
        let mult = 1.0 / (16f64).ln();
        let mut level_counts = [0usize; 8];
        for _ in 0..100_000 {
            let l = r.hnsw_level(mult).min(7);
            level_counts[l] += 1;
        }
        // Each successive level should hold roughly 1/16 of the previous.
        assert!(level_counts[0] > level_counts[1] * 8);
        assert!(level_counts[1] > level_counts[2] * 8);
    }
}
