//! Dependency-free parallel build layer.
//!
//! Search went multi-threaded (batched executor) and SIMD-fast (kernel
//! layer) in earlier iterations; this module gives *construction* the
//! same treatment without pulling in rayon — the workspace builds fully
//! offline, so everything here is scoped `std::thread` fork/join.
//!
//! Three primitives cover every builder in the workspace:
//!
//! - [`parallel_for`] — split `[0, n)` into one contiguous chunk per
//!   worker and run a closure over each chunk (static partitioning;
//!   right when per-item cost is uniform, e.g. k-means assignment or
//!   bulk PQ encoding),
//! - [`parallel_map_chunks`] — the same partitioning, but each worker
//!   returns a value and the caller receives them **in chunk order**,
//!   so order-sensitive reductions (partial centroid sums, per-row
//!   scatter) stay deterministic for a fixed thread count,
//! - [`parallel_queue`] — a chunked work queue over an atomic cursor
//!   (dynamic load balancing; right when per-item cost varies wildly,
//!   e.g. graph inserts whose beam searches differ in length).
//!
//! All three run the closure inline on the calling thread when the
//! effective thread count is 1, so a serial [`BuildOptions`] never pays
//! for a thread spawn and — more importantly — never changes behavior.
//!
//! The determinism contract lives in [`BuildOptions`]: `deterministic:
//! true` (or `threads: 1`) must reproduce the historical serial build
//! bit-for-bit, so every index keeps its serial code path and switches
//! on [`BuildOptions::is_serial`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options controlling how an index build uses threads.
///
/// The default is the machine's available parallelism, overridable with
/// the `VDB_BUILD_THREADS` environment variable (mirroring the kernel
/// layer's `VDB_FORCE_SCALAR` escape hatch) so CI and EXPERIMENTS runs
/// are reproducible on any host.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker threads (1 = serial). Always clamped to at least 1 and to
    /// the amount of work available, so small builds never spawn idle
    /// workers.
    pub threads: usize,
    /// When true, force the exact historical serial code path so the
    /// build is bit-for-bit reproducible regardless of `threads`.
    pub deterministic: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: env_threads(),
            deterministic: false,
        }
    }
}

impl BuildOptions {
    /// A serial, bit-deterministic build — the historical behavior of
    /// every `build()` constructor in the workspace.
    pub fn serial() -> Self {
        BuildOptions {
            threads: 1,
            deterministic: true,
        }
    }

    /// A parallel build with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        BuildOptions {
            threads: threads.max(1),
            deterministic: false,
        }
    }

    /// The thread count a builder should actually use: 1 when the build
    /// must be deterministic, the configured count otherwise.
    pub fn effective_threads(&self) -> usize {
        if self.deterministic {
            1
        } else {
            self.threads.max(1)
        }
    }

    /// Whether the builder must take its serial (bit-deterministic)
    /// code path.
    pub fn is_serial(&self) -> bool {
        self.effective_threads() == 1
    }
}

/// Thread count from `VDB_BUILD_THREADS` if set and valid, else the
/// machine's available parallelism.
fn env_threads() -> usize {
    if let Ok(s) = std::env::var("VDB_BUILD_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamp a requested thread count to the work size (never zero).
pub fn clamp_threads(threads: usize, n: usize) -> usize {
    threads.max(1).min(n.max(1))
}

/// Run `f(worker, range)` over `[0, n)` split into one contiguous chunk
/// per worker. Runs inline (worker 0) when one thread suffices. Panics
/// in workers propagate to the caller.
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let threads = clamp_threads(threads, n);
    if threads == 1 {
        f(0, 0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || f(t, lo..hi)));
        }
        for h in handles {
            h.join().expect("parallel_for worker panicked");
        }
    });
}

/// Like [`parallel_for`], but each worker's closure returns a value and
/// the results come back **in chunk order** (worker `t` covered rows
/// `[t * ceil(n/threads), ...)`), so reductions over them are
/// deterministic for a fixed thread count.
pub fn parallel_map_chunks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let threads = clamp_threads(threads, n);
    if threads == 1 {
        return vec![f(0, 0..n)];
    }
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(threads, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (t, slot) in slots.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || *slot = Some(f(t, lo..hi))));
        }
        for h in handles {
            h.join().expect("parallel_map_chunks worker panicked");
        }
    });
    slots.into_iter().flatten().collect()
}

/// Chunked dynamic work queue: workers repeatedly claim `grain`-sized
/// ranges of `[0, n)` from an atomic cursor until the queue drains.
/// Use when per-item cost varies (graph inserts), where static chunks
/// would leave threads idle behind one slow chunk.
pub fn parallel_queue<F>(n: usize, threads: usize, grain: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let threads = clamp_threads(threads, n);
    if threads == 1 {
        f(0, 0..n);
        return;
    }
    let grain = grain.max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let f = &f;
            let cursor = &cursor;
            handles.push(scope.spawn(move || loop {
                let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                if lo >= n {
                    break;
                }
                let hi = (lo + grain).min(n);
                f(t, lo..hi);
            }));
        }
        for h in handles {
            h.join().expect("parallel_queue worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_options_are_serial() {
        let opts = BuildOptions::serial();
        assert_eq!(opts.effective_threads(), 1);
        assert!(opts.is_serial());
        let det = BuildOptions {
            threads: 8,
            deterministic: true,
        };
        assert!(det.is_serial(), "deterministic forces the serial path");
        assert!(!BuildOptions::with_threads(4).is_serial());
    }

    #[test]
    fn default_threads_at_least_one() {
        assert!(BuildOptions::default().threads >= 1);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for &(n, threads) in &[(0, 4), (1, 4), (7, 3), (100, 4), (5, 16)] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(n, threads, |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let out = parallel_map_chunks(100, 4, |_, range| range.clone());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_serial_single_chunk() {
        let out = parallel_map_chunks(10, 1, |worker, range| (worker, range.len()));
        assert_eq!(out, vec![(0, 10)]);
    }

    #[test]
    fn queue_covers_every_index_once() {
        for &(n, threads, grain) in &[(0, 4, 8), (100, 4, 7), (33, 8, 1), (10, 2, 64)] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_queue(n, threads, grain, |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} threads={threads} grain={grain}"
            );
        }
    }

    #[test]
    fn reduction_matches_serial_sum() {
        let n = 1000usize;
        let partials = parallel_map_chunks(n, 5, |_, range| range.map(|i| i as u64).sum::<u64>());
        let total: u64 = partials.iter().sum();
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        let hits = AtomicU64::new(0);
        parallel_for(n, 3, |_, range| {
            hits.fetch_add(range.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), total);
    }
}
