//! The uniform index interface every vector index in the workspace
//! implements, plus search-time parameters.

use crate::context::{self, SearchContext};
use crate::error::{Error, Result};
use crate::metric::Metric;
use crate::topk::Neighbor;

/// Search-time knobs. Each index interprets the fields relevant to its
/// structure and ignores the rest, so one parameter struct can drive the
/// whole benchmark matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// Beam width for graph best-first search (HNSW `efSearch`, NSG/Vamana
    /// candidate pool `L`). Clamped to at least `k` by implementations.
    pub beam_width: usize,
    /// Number of buckets/partitions probed by table-based indexes (IVF
    /// `nprobe`, number of LSH tables consulted).
    pub nprobe: usize,
    /// For quantized indexes: how many quantized candidates to re-rank with
    /// exact distances (0 = no re-ranking, return ADC estimates).
    pub rerank: usize,
    /// For tree-based indexes: maximum number of leaf points to examine
    /// across the forest (ANNOY `search_k` analogue).
    pub max_leaf_points: usize,
    /// Over-fetch factor used by post-filter fallbacks: fetch `alpha * k`
    /// candidates before applying a predicate (§2.6(3) of the paper).
    pub overfetch: f32,
    /// Soft deadline for the whole search. In-process indexes ignore it
    /// (their latency is bounded by structure size); transports honor it:
    /// a distributed scatter-gather stops waiting for shards at the
    /// deadline and returns a *partial* result, and a remote-shard client
    /// uses it as its socket read timeout. `None` = wait indefinitely.
    pub timeout: Option<std::time::Duration>,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            beam_width: 64,
            nprobe: 8,
            rerank: 128,
            max_leaf_points: 512,
            overfetch: 3.0,
            timeout: None,
        }
    }
}

impl SearchParams {
    /// Builder-style setter for `beam_width`.
    pub fn with_beam_width(mut self, v: usize) -> Self {
        self.beam_width = v;
        self
    }
    /// Builder-style setter for `nprobe`.
    pub fn with_nprobe(mut self, v: usize) -> Self {
        self.nprobe = v;
        self
    }
    /// Builder-style setter for `rerank`.
    pub fn with_rerank(mut self, v: usize) -> Self {
        self.rerank = v;
        self
    }
    /// Builder-style setter for `max_leaf_points`.
    pub fn with_max_leaf_points(mut self, v: usize) -> Self {
        self.max_leaf_points = v;
        self
    }
    /// Builder-style setter for `overfetch`.
    pub fn with_overfetch(mut self, v: f32) -> Self {
        self.overfetch = v;
        self
    }
    /// Builder-style setter for `timeout`.
    pub fn with_timeout(mut self, v: std::time::Duration) -> Self {
        self.timeout = Some(v);
        self
    }
    /// The instant at which this search should give up, if a timeout is
    /// set, measured from `start`.
    pub fn deadline_from(&self, start: std::time::Instant) -> Option<std::time::Instant> {
        self.timeout.map(|t| start + t)
    }
}

/// Structural statistics reported by indexes for experiment T1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Approximate heap footprint of the index structure itself
    /// (excluding the raw vectors unless the index owns a copy).
    pub memory_bytes: usize,
    /// Graph indexes: total directed edges. Tables: total bucket entries.
    /// Trees: total tree nodes.
    pub structure_entries: usize,
    /// Free-form extra info (e.g. "layers=4").
    pub detail: String,
}

/// A membership predicate over internal row ids, used by filtered
/// (visit-first) search. Kept as a trait object so operators built from
/// attribute predicates, bitmasks, or closures all fit.
pub trait RowFilter: Sync {
    /// Whether row `id` passes the filter.
    fn accept(&self, id: usize) -> bool;
    /// Optional selectivity hint in `[0,1]`, if known.
    fn selectivity_hint(&self) -> Option<f64> {
        None
    }
}

impl<F: Fn(usize) -> bool + Sync> RowFilter for F {
    fn accept(&self, id: usize) -> bool {
        self(id)
    }
}

/// Blanket filter backed by a bitset (block-first bitmask scans).
impl RowFilter for crate::bitset::BitSet {
    fn accept(&self, id: usize) -> bool {
        self.contains(id)
    }
    fn selectivity_hint(&self) -> Option<f64> {
        if self.capacity() == 0 {
            None
        } else {
            Some(self.count() as f64 / self.capacity() as f64)
        }
    }
}

/// The interface shared by every vector index in the workspace.
pub trait VectorIndex: Send + Sync {
    /// Short stable name ("hnsw", "ivf_pq", ...).
    fn name(&self) -> &'static str;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// The similarity score the index was built for.
    fn metric(&self) -> &Metric;

    /// Approximate k-nearest-neighbor search using caller-provided scratch;
    /// returns up to `k` neighbors sorted best-first.
    ///
    /// This is the primitive every index implements. `ctx` supplies the
    /// visited set, candidate pools, and scratch buffers; after the first
    /// query on a warm context, no per-query scratch allocation occurs.
    /// Results are identical whether the context is fresh or reused.
    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>>;

    /// Approximate k-nearest-neighbor search; returns up to `k` neighbors
    /// sorted best-first. Thin wrapper over [`VectorIndex::search_with`]
    /// borrowing the thread-local scratch context.
    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<Vec<Neighbor>> {
        context::with_local(|ctx| self.search_with(ctx, query, k, params))
    }

    /// Batched k-nearest-neighbor search: run every query through one
    /// scratch context, returning one result list per query (in order).
    /// The default is a serial loop over [`VectorIndex::search_with`];
    /// after the first query the context is warm, so the whole batch
    /// amortizes scratch setup (§2.3 "batched queries").
    fn search_batch(
        &self,
        ctx: &mut SearchContext,
        queries: &[&[f32]],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        queries
            .iter()
            .map(|q| self.search_with(ctx, q, k, params))
            .collect()
    }

    /// Predicated search using caller-provided scratch: only rows accepted
    /// by `filter` may appear in the result. The default implements the
    /// *post-filtering* strategy from §2.3 — over-fetch `overfetch * k`,
    /// filter, and double the fetch until `k` survivors are found or the
    /// whole collection has been considered. Indexes with native
    /// block-first or visit-first support override this.
    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        let n = self.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut fetch = ((k as f32 * params.overfetch).ceil() as usize).clamp(k, n);
        loop {
            let cands = self.search_with(ctx, query, fetch, params)?;
            let got = cands.len();
            let mut out: Vec<Neighbor> =
                cands.into_iter().filter(|c| filter.accept(c.id)).collect();
            if out.len() >= k || fetch >= n || got < fetch {
                out.truncate(k);
                return Ok(out);
            }
            fetch = (fetch * 2).min(n);
        }
    }

    /// Predicated search; thin wrapper over
    /// [`VectorIndex::search_filtered_with`] borrowing the thread-local
    /// scratch context.
    fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        context::with_local(|ctx| self.search_filtered_with(ctx, query, k, params, filter))
    }

    /// Block-first predicated search (§2.3(1)) using caller-provided
    /// scratch: the filter *blocks* parts of the index from exploration
    /// entirely. For bucket indexes this is identical to
    /// [`VectorIndex::search_filtered_with`] (blocked rows are skipped
    /// during list scans); graph indexes override it with a masked
    /// traversal that never enters blocked nodes — which is cheaper than
    /// visit-first but can strand the search when blocking disconnects the
    /// graph, the failure mode §2.3 discusses.
    fn search_blocked_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        self.search_filtered_with(ctx, query, k, params, filter)
    }

    /// Block-first predicated search; thin wrapper over
    /// [`VectorIndex::search_blocked_with`] borrowing the thread-local
    /// scratch context.
    fn search_blocked(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        context::with_local(|ctx| self.search_blocked_with(ctx, query, k, params, filter))
    }

    /// Range search: every vector within `radius` of the query (under the
    /// index metric's distance convention). Default: iterative-deepening
    /// k-NN, doubling k until the worst retained hit exceeds the radius.
    fn range_search(
        &self,
        query: &[f32],
        radius: f32,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        let n = self.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut k = 16.min(n);
        loop {
            let hits = self.search(query, k, params)?;
            let saturated = hits.len() == k && hits.last().is_some_and(|h| h.dist <= radius);
            if !saturated || k >= n {
                return Ok(hits.into_iter().filter(|h| h.dist <= radius).collect());
            }
            k = (k * 2).min(n);
        }
    }

    /// Structural statistics for reporting.
    fn stats(&self) -> IndexStats {
        IndexStats::default()
    }

    /// The optional mutable capability: `Some` when this index supports
    /// in-place insert *and* remove (tombstone + repair), `None` for
    /// static structures that must be rebuilt out-of-place. Collections
    /// use this to choose between incremental maintenance and a full
    /// background rebuild.
    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        None
    }
}

/// Indexes supporting in-place insertion (LSH, IVF variants, NSW, HNSW).
/// Static graph/tree indexes are updated out-of-place via the LSM path
/// instead (§2.3 out-of-place updates).
pub trait DynamicIndex: VectorIndex {
    /// Insert a vector, returning its new row id.
    fn insert(&mut self, vector: &[f32]) -> Result<usize>;
}

/// The full mutable capability (§2.3 in-place updates): insertion plus
/// removal. Removal is tombstone-based — the row id stays allocated (so
/// ids remain stable and aligned with the owner's row storage) but the
/// row stops surfacing in search results; graph indexes additionally
/// patch neighbor edges and periodically re-prune so recall does not
/// decay (the EXPERIMENTS.md §Vamana disconnection lesson).
pub trait MutableIndex: VectorIndex {
    /// Insert a vector, returning its new row id. Ids are dense and
    /// include tombstoned rows: the id equals the pre-insert capacity.
    fn insert(&mut self, vector: &[f32]) -> Result<usize>;

    /// Tombstone row `id`. Returns `true` if the row was live, `false`
    /// if it was already removed. `Err` only for out-of-range ids.
    fn remove(&mut self, id: usize) -> Result<bool>;

    /// Number of live (non-tombstoned) rows; `len()` keeps counting
    /// tombstones because ids stay allocated.
    fn live(&self) -> usize;
}

/// Validate a query vector against an index before searching.
pub fn check_query(dim: usize, query: &[f32]) -> Result<()> {
    if query.len() != dim {
        return Err(Error::DimensionMismatch {
            expected: dim,
            actual: query.len(),
        });
    }
    if let Some(pos) = query.iter().position(|x| !x.is_finite()) {
        return Err(Error::NonFiniteVector { position: pos });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;

    #[test]
    fn check_query_validates() {
        assert!(check_query(3, &[1.0, 2.0, 3.0]).is_ok());
        assert!(check_query(3, &[1.0, 2.0]).is_err());
        assert!(check_query(2, &[1.0, f32::NAN]).is_err());
    }

    #[test]
    fn bitset_filter_reports_selectivity() {
        let mut b = BitSet::new(100);
        for i in 0..25 {
            b.insert(i);
        }
        assert!(b.accept(3));
        assert!(!b.accept(99));
        assert_eq!(b.selectivity_hint(), Some(0.25));
    }

    #[test]
    fn closure_filter_works() {
        let f = |id: usize| id.is_multiple_of(2);
        assert!(RowFilter::accept(&f, 4));
        assert!(!RowFilter::accept(&f, 5));
        assert_eq!(RowFilter::selectivity_hint(&f), None);
    }

    #[test]
    fn default_params_sane() {
        let p = SearchParams::default()
            .with_beam_width(10)
            .with_nprobe(2)
            .with_rerank(5)
            .with_max_leaf_points(7)
            .with_overfetch(1.5)
            .with_timeout(std::time::Duration::from_millis(250));
        assert_eq!(p.beam_width, 10);
        assert_eq!(p.nprobe, 2);
        assert_eq!(p.rerank, 5);
        assert_eq!(p.max_leaf_points, 7);
        assert_eq!(p.overfetch, 1.5);
        assert_eq!(p.timeout, Some(std::time::Duration::from_millis(250)));
        assert_eq!(SearchParams::default().timeout, None);
    }

    #[test]
    fn deadline_measured_from_start() {
        let start = std::time::Instant::now();
        assert_eq!(SearchParams::default().deadline_from(start), None);
        let p = SearchParams::default().with_timeout(std::time::Duration::from_secs(1));
        assert_eq!(
            p.deadline_from(start),
            Some(start + std::time::Duration::from_secs(1))
        );
    }
}
