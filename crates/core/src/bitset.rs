//! Fixed-capacity bitsets.
//!
//! Two use cases in a VDBMS: (1) *visited sets* during graph traversal,
//! which are cleared and reused across queries, and (2) *blocking bitmasks*
//! for block-first hybrid scans, built once per query from attribute
//! predicates (§2.3 of the paper).

/// A fixed-capacity bitset over `usize` ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create a bitset able to hold ids in `[0, capacity)`, all unset.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Create a bitset with every bit in `[0, capacity)` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        // Clear the tail beyond `capacity`.
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Number of ids this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set bit `i`. Returns whether the bit was previously unset.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let was_unset = self.words[w] & mask == 0;
        self.words[w] |= mask;
        was_unset
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clear all bits, keeping capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with another set of the same capacity.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with another set of the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement (within capacity).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Iterate over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Approximate heap size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A visited-set that supports O(1) reset via generation stamping.
///
/// Graph search visits a small fraction of a large collection; zeroing a
/// whole `BitSet` per query would dominate cheap queries. `VisitedSet`
/// stores a `u32` epoch per slot and bumps the epoch to reset.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl Default for VisitedSet {
    /// An empty set; [`VisitedSet::grow`] sizes it lazily.
    fn default() -> Self {
        VisitedSet::new(0)
    }
}

impl VisitedSet {
    /// Create a visited set over ids `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        VisitedSet {
            stamps: vec![0; capacity],
            epoch: 1,
        }
    }

    /// Reset in O(1) (amortized; full clear every 2^32 - 1 resets).
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            for s in &mut self.stamps {
                *s = 0;
            }
            self.epoch = 1;
        }
    }

    /// Mark `i` visited; returns true if it was not yet visited this epoch.
    #[inline]
    pub fn visit(&mut self, i: usize) -> bool {
        if self.stamps[i] == self.epoch {
            false
        } else {
            self.stamps[i] = self.epoch;
            true
        }
    }

    /// Whether `i` was visited this epoch.
    #[inline]
    pub fn is_visited(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Grow capacity to at least `capacity`.
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.stamps.len() {
            self.stamps.resize(capacity, 0);
        }
    }

    /// Capacity in ids.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0), "double insert reports already-set");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_respects_capacity_tail() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
    }

    #[test]
    fn negate_within_capacity() {
        let mut s = BitSet::new(70);
        s.insert(3);
        s.negate();
        assert_eq!(s.count(), 69);
        assert!(!s.contains(3));
        assert!(s.contains(69));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in (0..100).step_by(2) {
            a.insert(i);
        }
        for i in (0..100).step_by(3) {
            b.insert(i);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(
            inter.iter().collect::<Vec<_>>(),
            (0..100).step_by(6).collect::<Vec<_>>()
        );
        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.count(), 50 + 34 - 17);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for &i in &[5usize, 64, 65, 199, 0] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn visited_set_reset_is_cheap_and_correct() {
        let mut v = VisitedSet::new(10);
        assert!(v.visit(3));
        assert!(!v.visit(3));
        v.reset();
        assert!(!v.is_visited(3));
        assert!(v.visit(3));
    }

    #[test]
    fn visited_set_epoch_wrap() {
        let mut v = VisitedSet::new(4);
        v.visit(1);
        // Force the epoch all the way around.
        v.epoch = u32::MAX;
        v.reset(); // wraps to 0 -> full clear -> epoch 1
        assert!(!v.is_visited(1));
        assert!(v.visit(1));
    }

    #[test]
    fn visited_set_grow() {
        let mut v = VisitedSet::new(2);
        v.visit(1);
        v.grow(10);
        assert!(v.is_visited(1));
        assert!(v.visit(9));
    }
}
