//! Seeded synthetic dataset generators.
//!
//! Substitutes for the real image/text/audio collections used by the
//! benchmarks the paper surveys (§2.5). The generators control the two
//! properties that shape recall/QPS curves — cluster structure and
//! intrinsic dimensionality — and the attribute generators produce the
//! structured columns hybrid-query experiments sweep over.

use crate::attr::AttrValue;
use crate::rng::Rng;
use crate::vector::Vectors;

/// Uniform vectors in the unit hypercube `[0, 1)^dim`.
pub fn uniform_cube(n: usize, dim: usize, rng: &mut Rng) -> Vectors {
    let mut v = Vectors::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.f32();
        }
        v.push(&row).expect("generated vector is valid");
    }
    v
}

/// Isotropic standard Gaussian vectors.
pub fn gaussian(n: usize, dim: usize, rng: &mut Rng) -> Vectors {
    let mut v = Vectors::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.normal_f32();
        }
        v.push(&row).expect("generated vector is valid");
    }
    v
}

/// A Gaussian-mixture dataset with labelled cluster assignments.
#[derive(Debug, Clone)]
pub struct Clustered {
    /// The generated vectors.
    pub vectors: Vectors,
    /// Cluster id of each vector (aligned with `vectors`).
    pub assignments: Vec<usize>,
    /// The mixture centers.
    pub centers: Vectors,
}

/// Gaussian mixture: `n` points around `n_clusters` centers drawn uniformly
/// in `[0, spread)^dim`, with per-cluster standard deviation `std`.
/// Clustered data is the regime where IVF-style partitioning shines and
/// where real embedding collections live.
pub fn clustered(n: usize, dim: usize, n_clusters: usize, std: f32, rng: &mut Rng) -> Clustered {
    assert!(n_clusters > 0, "need at least one cluster");
    let spread = 10.0f32;
    let mut centers = Vectors::with_capacity(dim, n_clusters);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n_clusters {
        for x in &mut row {
            *x = rng.f32() * spread;
        }
        centers.push(&row).expect("center is valid");
    }
    let mut vectors = Vectors::with_capacity(dim, n);
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.below(n_clusters);
        let center = centers.get(c);
        for (x, &m) in row.iter_mut().zip(center) {
            *x = m + rng.normal_f32() * std;
        }
        vectors.push(&row).expect("point is valid");
        assignments.push(c);
    }
    Clustered {
        vectors,
        assignments,
        centers,
    }
}

/// Vectors with low intrinsic dimensionality: points on a random
/// `intrinsic`-dimensional linear subspace embedded in `dim` dimensions,
/// plus small ambient noise. Tree indexes that adapt to intrinsic
/// dimensionality (RP-trees) are motivated by exactly this structure.
pub fn low_intrinsic_dim(
    n: usize,
    dim: usize,
    intrinsic: usize,
    noise: f32,
    rng: &mut Rng,
) -> Vectors {
    assert!(intrinsic <= dim);
    // Random basis (not orthonormalized; fine for generating structure).
    let basis: Vec<Vec<f32>> = (0..intrinsic)
        .map(|_| (0..dim).map(|_| rng.normal_f32()).collect())
        .collect();
    let mut v = Vectors::with_capacity(dim, n);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.normal_f32() * noise;
        }
        for b in &basis {
            let coef = rng.normal_f32();
            for (x, &bv) in row.iter_mut().zip(b) {
                *x += coef * bv;
            }
        }
        v.push(&row).expect("point is valid");
    }
    v
}

/// Hold out `n_queries` rows of a generated set as queries, perturbing each
/// by Gaussian noise of scale `jitter` so queries are near but not identical
/// to database points.
pub fn split_queries(data: &Vectors, n_queries: usize, jitter: f32, rng: &mut Rng) -> Vectors {
    let n = data.len();
    assert!(n_queries <= n, "cannot hold out more queries than points");
    let picks = rng.sample_indices(n, n_queries);
    let mut q = Vectors::with_capacity(data.dim(), n_queries);
    let mut row = vec![0.0f32; data.dim()];
    for &p in &picks {
        for (x, &v) in row.iter_mut().zip(data.get(p)) {
            *x = v + rng.normal_f32() * jitter;
        }
        q.push(&row).expect("query is valid");
    }
    q
}

// ---------------------------------------------------------------------------
// Attribute generators (for hybrid-query experiments)
// ---------------------------------------------------------------------------

/// Uniform integer column over `[lo, hi)`.
pub fn int_column(n: usize, lo: i64, hi: i64, rng: &mut Rng) -> Vec<AttrValue> {
    assert!(lo < hi);
    (0..n)
        .map(|_| AttrValue::Int(lo + rng.below((hi - lo) as usize) as i64))
        .collect()
}

/// Uniform float column over `[lo, hi)`.
pub fn float_column(n: usize, lo: f64, hi: f64, rng: &mut Rng) -> Vec<AttrValue> {
    (0..n)
        .map(|_| AttrValue::Float(lo + (hi - lo) * rng.f64()))
        .collect()
}

/// Categorical column with Zipf-distributed label frequencies (skew `s`).
/// Labels are `"cat_0"` (most frequent) through `"cat_{k-1}"`.
pub fn zipf_category_column(n: usize, k: usize, s: f64, rng: &mut Rng) -> Vec<AttrValue> {
    assert!(k > 0);
    // Precompute the CDF of the Zipf pmf.
    let weights: Vec<f64> = (1..=k).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u = rng.f64();
            let idx = cdf.partition_point(|&c| c < u).min(k - 1);
            AttrValue::Str(format!("cat_{idx}"))
        })
        .collect()
}

/// Boolean column where each row is true with probability `p`.
pub fn bool_column(n: usize, p: f64, rng: &mut Rng) -> Vec<AttrValue> {
    (0..n).map(|_| AttrValue::Bool(rng.chance(p))).collect()
}

/// Integer column correlated with cluster assignment (attribute value =
/// cluster id). Used to study index-guided partitioning and offline
/// blocking, where attributes align with vector locality.
pub fn cluster_correlated_column(assignments: &[usize]) -> Vec<AttrValue> {
    assignments
        .iter()
        .map(|&c| AttrValue::Int(c as i64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_shape() {
        let mut rng = Rng::seed_from_u64(1);
        let u = uniform_cube(50, 7, &mut rng);
        assert_eq!((u.len(), u.dim()), (50, 7));
        let g = gaussian(30, 4, &mut rng);
        assert_eq!((g.len(), g.dim()), (30, 4));
        assert!(u.as_flat().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian(20, 5, &mut Rng::seed_from_u64(9));
        let b = gaussian(20, 5, &mut Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_points_near_their_centers() {
        let mut rng = Rng::seed_from_u64(2);
        let c = clustered(500, 8, 5, 0.1, &mut rng);
        assert_eq!(c.vectors.len(), 500);
        assert_eq!(c.assignments.len(), 500);
        assert_eq!(c.centers.len(), 5);
        // Each point should be far closer to its own center than the
        // typical inter-center distance.
        for i in 0..c.vectors.len() {
            let own = crate::kernel::l2_sq(c.vectors.get(i), c.centers.get(c.assignments[i]));
            assert!(
                own < 8.0 * 8.0 * 0.1 * 0.1 * 50.0,
                "point {i} too far: {own}"
            );
        }
    }

    #[test]
    fn low_intrinsic_dim_lives_near_subspace() {
        let mut rng = Rng::seed_from_u64(3);
        let v = low_intrinsic_dim(100, 32, 2, 0.01, &mut rng);
        assert_eq!((v.len(), v.dim()), (100, 32));
        // Covariance should be dominated by ~2 directions: top-2 eigenvalues
        // should dwarf the rest. Use principal_components' deflation.
        let pcs = crate::linalg::principal_components(&v, 4, &mut rng).unwrap();
        assert_eq!(pcs.rows(), 4);
    }

    #[test]
    fn split_queries_shape_and_jitter() {
        let mut rng = Rng::seed_from_u64(4);
        let data = gaussian(100, 6, &mut rng);
        let q = split_queries(&data, 10, 0.0, &mut rng);
        assert_eq!(q.len(), 10);
        // With jitter 0 every query equals some data row.
        for qi in q.iter() {
            assert!(data.iter().any(|row| row == qi));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = Rng::seed_from_u64(5);
        let col = zipf_category_column(10_000, 10, 1.2, &mut rng);
        let count = |label: &str| {
            col.iter()
                .filter(|v| **v == AttrValue::Str(label.into()))
                .count()
        };
        assert!(
            count("cat_0") > 3 * count("cat_5"),
            "head should dominate tail"
        );
        assert_eq!(col.len(), 10_000);
    }

    #[test]
    fn attribute_columns_have_right_types_and_ranges() {
        let mut rng = Rng::seed_from_u64(6);
        for v in int_column(100, -5, 5, &mut rng) {
            match v {
                AttrValue::Int(x) => assert!((-5..5).contains(&x)),
                _ => panic!("wrong type"),
            }
        }
        for v in float_column(100, 0.0, 2.0, &mut rng) {
            match v {
                AttrValue::Float(x) => assert!((0.0..2.0).contains(&x)),
                _ => panic!("wrong type"),
            }
        }
        let bools = bool_column(10_000, 0.25, &mut rng);
        let trues = bools
            .iter()
            .filter(|v| **v == AttrValue::Bool(true))
            .count();
        assert!(
            (1_800..3_200).contains(&trues),
            "p=0.25 gives ~2500, got {trues}"
        );
    }

    #[test]
    fn cluster_correlated_column_mirrors_assignments() {
        let col = cluster_correlated_column(&[0, 2, 1]);
        assert_eq!(
            col,
            vec![AttrValue::Int(0), AttrValue::Int(2), AttrValue::Int(1)]
        );
    }
}
