//! Locality-sensitive hashing (§2.2(1)).
//!
//! `L` hash tables, each keyed by a concatenation of `K` hash functions
//! from a family. Two families are provided:
//!
//! - [`HashFamily::RandomHyperplane`] — sign of a random projection
//!   (angular/cosine similarity; the IndexLSH-style binary projection),
//! - [`HashFamily::PStable`] — quantized random projection
//!   `floor((a·v + b) / w)` with Gaussian `a` (the E2LSH family for
//!   Euclidean distance).
//!
//! Candidates colliding with the query in any probed table are re-ranked
//! with exact distances.

use std::collections::HashMap;
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, DynamicIndex, IndexStats, SearchParams, VectorIndex};
use vdb_core::kernel;
use vdb_core::metric::Metric;
use vdb_core::rng::Rng;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// The hash family used by every table of an [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HashFamily {
    /// Sign-of-projection bits; locality-sensitive for angular distance.
    RandomHyperplane,
    /// p-stable (Gaussian) projections quantized with bucket width `w`;
    /// locality-sensitive for Euclidean distance.
    PStable {
        /// Bucket width (larger = coarser buckets, higher collision rate).
        w: f32,
    },
}

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct LshConfig {
    /// Number of hash tables (higher = better recall, more memory/probes).
    pub l: usize,
    /// Hash functions concatenated per table key (higher = more selective
    /// buckets, lower collision rate).
    pub k: usize,
    /// The hash family.
    pub family: HashFamily,
    /// RNG seed for the random projections.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        // Moderately coarse buckets: k=8 concatenated hashes keeps bucket
        // sizes useful at laptop scale, and 16 tables recover recall (F2
        // sweeps both knobs). `w = 0` auto-calibrates the bucket width to
        // the data's neighbor-distance scale at build time.
        LshConfig {
            l: 16,
            k: 8,
            family: HashFamily::PStable { w: 0.0 },
            seed: 0x15A4,
        }
    }
}

/// Estimate a p-stable bucket width from the data: roughly the distance
/// between near neighbors, measured on a sample. Buckets of this width
/// give near neighbors a high per-hash collision probability while still
/// separating the bulk of the collection.
fn calibrate_width(vectors: &Vectors, rng: &mut Rng) -> f32 {
    let n = vectors.len();
    if n < 2 {
        return 1.0;
    }
    let sample = rng.sample_indices(n, 256.min(n));
    let mut nn_dists = Vec::with_capacity(sample.len());
    for (i, &a) in sample.iter().enumerate() {
        let mut best = f32::INFINITY;
        for (j, &b) in sample.iter().enumerate() {
            if i != j {
                best = best.min(kernel::l2_sq(vectors.get(a), vectors.get(b)));
            }
        }
        if best.is_finite() {
            nn_dists.push(best.sqrt());
        }
    }
    nn_dists.sort_unstable_by(f32::total_cmp);
    let median = nn_dists.get(nn_dists.len() / 2).copied().unwrap_or(1.0);
    // With K concatenated hashes per table, a neighbor must collide in all
    // K of them; the per-hash collision probability at distance d is high
    // only when w is a small multiple of d. w = 4·d_nn gives p ≈ 0.8 per
    // hash (≈ 0.17 at K = 8), which L = 16 tables lift to ~95% recall.
    (4.0 * median).max(1e-6)
}

/// One table's hash function: K projection vectors (+ offsets for p-stable).
struct TableHash {
    /// K × dim projection directions, flattened.
    projections: Vec<f32>,
    /// K offsets (p-stable only).
    offsets: Vec<f32>,
    k: usize,
    dim: usize,
}

impl TableHash {
    fn new(dim: usize, k: usize, family: HashFamily, rng: &mut Rng) -> Self {
        let projections = (0..k * dim).map(|_| rng.normal_f32()).collect();
        let offsets = match family {
            HashFamily::RandomHyperplane => vec![0.0; k],
            HashFamily::PStable { w } => (0..k).map(|_| rng.f32() * w).collect(),
        };
        TableHash {
            projections,
            offsets,
            k,
            dim,
        }
    }

    /// Hash a vector to a 64-bit table key.
    fn key(&self, v: &[f32], family: HashFamily) -> u64 {
        // FNV-style mix of the K per-function values.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..self.k {
            let proj = kernel::dot(v, &self.projections[i * self.dim..(i + 1) * self.dim]);
            let val: i64 = match family {
                HashFamily::RandomHyperplane => (proj >= 0.0) as i64,
                HashFamily::PStable { w } => ((proj + self.offsets[i]) / w).floor() as i64,
            };
            h ^= val as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Multi-table LSH index over an owned vector collection.
pub struct LshIndex {
    vectors: Vectors,
    metric: Metric,
    cfg: LshConfig,
    hashes: Vec<TableHash>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
}

impl LshIndex {
    /// Build the index. A p-stable width of `0` is auto-calibrated to the
    /// data's neighbor-distance scale.
    pub fn build(vectors: Vectors, metric: Metric, mut cfg: LshConfig) -> Result<Self> {
        if cfg.l == 0 || cfg.k == 0 {
            return Err(Error::InvalidParameter(
                "LSH needs l >= 1 and k >= 1".into(),
            ));
        }
        metric.validate(vectors.dim())?;
        let dim = vectors.dim();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        if let HashFamily::PStable { w } = cfg.family {
            if w < 0.0 {
                return Err(Error::InvalidParameter(
                    "p-stable bucket width must be >= 0".into(),
                ));
            }
            if w == 0.0 {
                cfg.family = HashFamily::PStable {
                    w: calibrate_width(&vectors, &mut rng),
                };
            }
        }
        let hashes: Vec<TableHash> = (0..cfg.l)
            .map(|_| TableHash::new(dim, cfg.k, cfg.family, &mut rng))
            .collect();
        let mut tables: Vec<HashMap<u64, Vec<u32>>> = (0..cfg.l).map(|_| HashMap::new()).collect();
        for (row, v) in vectors.iter().enumerate() {
            for (t, h) in hashes.iter().enumerate() {
                tables[t]
                    .entry(h.key(v, cfg.family))
                    .or_default()
                    .push(row as u32);
            }
        }
        Ok(LshIndex {
            vectors,
            metric,
            cfg,
            hashes,
            tables,
        })
    }

    /// Collect candidate rows colliding with the query in up to `probes`
    /// tables (all tables if `probes >= l`) into the context's id buffer,
    /// deduplicated through its visited set.
    fn candidates_into(&self, ctx: &mut SearchContext, query: &[f32], probes: usize) {
        let probes = probes.clamp(1, self.cfg.l);
        ctx.begin(self.vectors.len());
        ctx.ids.clear();
        let SearchContext {
            visited: seen,
            ids: out,
            ..
        } = ctx;
        for t in 0..probes {
            let key = self.hashes[t].key(query, self.cfg.family);
            if let Some(bucket) = self.tables[t].get(&key) {
                for &row in bucket {
                    if seen.visit(row as usize) {
                        out.push(row);
                    }
                }
            }
        }
    }

    /// Number of distinct candidates the query would generate (bucket-size
    /// diagnostics for experiment F2).
    pub fn candidate_count(&self, query: &[f32]) -> usize {
        context::with_local(|ctx| {
            self.candidates_into(ctx, query, self.cfg.l);
            ctx.ids.len()
        })
    }

    /// The build configuration.
    pub fn config(&self) -> &LshConfig {
        &self.cfg
    }
}

impl VectorIndex for LshIndex {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        self.candidates_into(ctx, query, params.nprobe.max(self.cfg.l));
        ctx.pool.reset(k);
        for &row in &ctx.ids {
            let d = self.metric.distance(query, self.vectors.get(row as usize));
            ctx.pool.push(Neighbor::new(row as usize, d));
        }
        Ok(ctx.pool.drain_sorted())
    }

    fn stats(&self) -> IndexStats {
        let entries: usize = self
            .tables
            .iter()
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum();
        let buckets: usize = self.tables.iter().map(HashMap::len).sum();
        IndexStats {
            memory_bytes: entries * 4
                + buckets * 16
                + self.hashes.len() * self.cfg.k * (self.dim() + 1) * 4,
            structure_entries: entries,
            detail: format!("l={} k={} buckets={buckets}", self.cfg.l, self.cfg.k),
        }
    }
}

impl DynamicIndex for LshIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let row = self.vectors.push(vector)?;
        let v = self.vectors.get(row);
        for (t, h) in self.hashes.iter().enumerate() {
            self.tables[t]
                .entry(h.key(v, self.cfg.family))
                .or_default()
                .push(row as u32);
        }
        Ok(row)
    }
}

impl std::fmt::Debug for LshIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LshIndex(n={}, l={}, k={})",
            self.len(),
            self.cfg.l,
            self.cfg.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;

    fn build_on_clusters(cfg: LshConfig) -> (LshIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(100);
        let data = dataset::clustered(2000, 16, 10, 0.3, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 30, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = LshIndex::build(data.clone(), Metric::Euclidean, cfg).unwrap();
        (idx, queries, gt)
    }

    fn mean_recall(idx: &LshIndex, queries: &Vectors, gt: &GroundTruth) -> f64 {
        let params = SearchParams::default();
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn pstable_reaches_reasonable_recall() {
        let (idx, queries, gt) = build_on_clusters(LshConfig {
            l: 16,
            k: 8,
            family: HashFamily::PStable { w: 8.0 },
            seed: 7,
        });
        let r = mean_recall(&idx, &queries, &gt);
        assert!(r > 0.6, "recall {r}");
    }

    #[test]
    fn more_tables_raise_recall() {
        let mk = |l| LshConfig {
            l,
            k: 10,
            family: HashFamily::PStable { w: 4.0 },
            seed: 7,
        };
        let (idx2, q2, gt2) = build_on_clusters(mk(2));
        let (idx16, q16, gt16) = build_on_clusters(mk(16));
        let r2 = mean_recall(&idx2, &q2, &gt2);
        let r16 = mean_recall(&idx16, &q16, &gt16);
        assert!(r16 >= r2, "L=16 ({r16}) should not lose to L=2 ({r2})");
    }

    #[test]
    fn larger_k_shrinks_buckets() {
        let mk = |k| LshConfig {
            l: 4,
            k,
            family: HashFamily::PStable { w: 4.0 },
            seed: 7,
        };
        let (idx_small_k, queries, _) = build_on_clusters(mk(4));
        let (idx_big_k, _, _) = build_on_clusters(mk(16));
        let q = queries.get(0);
        assert!(
            idx_big_k.candidate_count(q) <= idx_small_k.candidate_count(q),
            "more concatenated hashes must not enlarge buckets"
        );
    }

    #[test]
    fn hyperplane_family_works_for_cosine() {
        let mut rng = Rng::seed_from_u64(5);
        let mut data = dataset::gaussian(1000, 16, &mut rng);
        data.normalize();
        let queries = dataset::split_queries(&data, 20, 0.01, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Cosine, 10).unwrap();
        let idx = LshIndex::build(
            data,
            Metric::Cosine,
            LshConfig {
                l: 16,
                k: 8,
                family: HashFamily::RandomHyperplane,
                seed: 3,
            },
        )
        .unwrap();
        let params = SearchParams::default();
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.35, "angular recall {r}");
    }

    #[test]
    fn insert_is_searchable() {
        let (mut idx, _, _) = build_on_clusters(LshConfig::default());
        let v = vec![500.0f32; 16];
        let row = idx.insert(&v).unwrap();
        let hits = idx.search(&v, 1, &SearchParams::default()).unwrap();
        assert_eq!(hits[0].id, row);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = dataset::gaussian(10, 4, &mut Rng::seed_from_u64(1));
        assert!(LshIndex::build(
            data.clone(),
            Metric::Euclidean,
            LshConfig {
                l: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            data.clone(),
            Metric::Euclidean,
            LshConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            data.clone(),
            Metric::Euclidean,
            LshConfig {
                family: HashFamily::PStable { w: -1.0 },
                ..Default::default()
            }
        )
        .is_err());
        // w = 0 auto-calibrates rather than failing.
        let auto = LshIndex::build(
            data,
            Metric::Euclidean,
            LshConfig {
                family: HashFamily::PStable { w: 0.0 },
                ..Default::default()
            },
        )
        .unwrap();
        match auto.config().family {
            HashFamily::PStable { w } => assert!(w > 0.0, "calibrated width {w}"),
            _ => panic!("family preserved"),
        }
    }

    #[test]
    fn may_return_fewer_than_k_but_sorted() {
        // With very selective hashes some queries find few candidates —
        // the result must still be sorted and contain no duplicates.
        let (idx, queries, _) = build_on_clusters(LshConfig {
            l: 1,
            k: 24,
            family: HashFamily::PStable { w: 0.5 },
            seed: 11,
        });
        for q in queries.iter() {
            let hits = idx.search(q, 10, &SearchParams::default()).unwrap();
            assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
            let ids: std::collections::HashSet<_> = hits.iter().map(|n| n.id).collect();
            assert_eq!(ids.len(), hits.len());
        }
    }

    #[test]
    fn stats_entries_equal_l_times_n() {
        let (idx, _, _) = build_on_clusters(LshConfig {
            l: 4,
            k: 8,
            ..Default::default()
        });
        assert_eq!(idx.stats().structure_entries, 4 * idx.len());
    }
}
