//! Per-list centroid-drift detection for the IVF family.
//!
//! Out-of-place merges rebuild the whole coarse quantizer; online list
//! appends cannot. Instead each list accumulates a running sum of the
//! vectors appended since its centroid was last set. When a list has
//! absorbed enough appends *and* their mean sits far from the list's
//! centroid — measured against the mean inter-centroid spacing fixed at
//! build time — the list is flagged for targeted re-clustering: its
//! centroid is recomputed as the mean of its current members and rows
//! that now sit closer to a sibling centroid are re-homed. Only drifted
//! lists pay; undisturbed lists are never touched.

use vdb_core::kernel;
use vdb_quant::KMeans;

/// Appends required before a list is even considered drifted.
const MIN_APPENDS: u32 = 8;
/// Appended mass must rival this fraction of the settled mass.
const APPEND_FRACTION: f32 = 0.5;
/// Drift fires when the appended mean is this fraction of the mean
/// nearest-centroid spacing away from the list's centroid.
const SPACING_FRACTION: f32 = 0.5;

/// Per-list drift accounting (see module docs).
pub(crate) struct DriftTracker {
    dim: usize,
    /// Appends per list since its centroid was last (re)set.
    appended: Vec<u32>,
    /// Running sum of appended vectors (allocated on first append).
    sums: Vec<Vec<f32>>,
    /// List length at the last (re)cluster.
    base_len: Vec<u32>,
    /// Mean L2 distance from each centroid to its nearest sibling.
    spacing: f32,
}

impl DriftTracker {
    pub(crate) fn new(coarse: &KMeans, lists: &[Vec<u32>], dim: usize) -> Self {
        let k = coarse.k();
        let cents = coarse.centroids();
        let mut spacing = 0.0f64;
        if k > 1 {
            for i in 0..k {
                let mut best = f32::INFINITY;
                for j in 0..k {
                    if i != j {
                        best = best.min(kernel::l2_sq(cents.get(i), cents.get(j)));
                    }
                }
                spacing += (best as f64).sqrt();
            }
            spacing /= k as f64;
        }
        DriftTracker {
            dim,
            appended: vec![0; k],
            sums: vec![Vec::new(); k],
            base_len: lists.iter().map(|l| l.len() as u32).collect(),
            spacing: spacing as f32,
        }
    }

    /// Account one append of `v` to list `c`.
    pub(crate) fn record_append(&mut self, c: usize, v: &[f32]) {
        if self.sums[c].is_empty() {
            self.sums[c] = vec![0.0; self.dim];
        }
        for (s, &x) in self.sums[c].iter_mut().zip(v) {
            *s += x;
        }
        self.appended[c] += 1;
    }

    /// Whether list `c` has drifted away from `centroid`.
    pub(crate) fn drifted(&self, c: usize, centroid: &[f32]) -> bool {
        let a = self.appended[c];
        if a < MIN_APPENDS
            || (a as f32) < APPEND_FRACTION * self.base_len[c] as f32
            || self.spacing <= 0.0
        {
            return false;
        }
        let inv = 1.0 / a as f32;
        let mut d = 0.0f32;
        for (s, &cc) in self.sums[c].iter().zip(centroid) {
            let diff = s * inv - cc;
            d += diff * diff;
        }
        d.sqrt() > SPACING_FRACTION * self.spacing
    }

    /// Reset list `c`'s accounting after its centroid was recomputed.
    pub(crate) fn reset(&mut self, c: usize, new_len: usize) {
        self.appended[c] = 0;
        self.sums[c].clear();
        self.base_len[c] = new_len as u32;
    }
}
