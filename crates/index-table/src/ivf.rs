//! IVF-Flat: inverted-file index with exact in-list distances (§2.2(2)).
//!
//! The collection is bucketed by a k-means coarse quantizer ("learning to
//! hash" via clustering); a query probes the `nprobe` nearest buckets and
//! scans them exactly. This is also the workspace's reference *block-first*
//! hybrid scanner: filtered rows are skipped during the list scan, and a
//! cluster-aligned attribute can prune whole lists (offline blocking).

use crate::coarse::{assign_rows, scatter_lists, train_coarse_with};
use crate::drift::DriftTracker;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{
    check_query, DynamicIndex, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use vdb_core::metric::Metric;
use vdb_core::parallel::BuildOptions;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_quant::KMeans;

/// Build-time configuration for IVF indexes.
#[derive(Debug, Clone)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means centroids).
    pub nlist: usize,
    /// k-means iterations for the coarse quantizer.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IvfConfig {
    /// Default configuration with `nlist` lists.
    pub fn new(nlist: usize) -> Self {
        IvfConfig {
            nlist,
            train_iters: 15,
            seed: 0x1F1F,
        }
    }
}

/// IVF with full-precision vectors in the lists.
pub struct IvfFlatIndex {
    vectors: Vectors,
    metric: Metric,
    coarse: KMeans,
    /// `lists[c]` = row ids assigned to centroid `c`.
    lists: Vec<Vec<u32>>,
    /// Row -> list id; `u32::MAX` marks a removed row.
    assigns: Vec<u32>,
    removed: usize,
    drift: DriftTracker,
    reclusters: usize,
}

/// Sentinel list id for removed rows.
pub(crate) const REMOVED: u32 = u32::MAX;

impl IvfFlatIndex {
    /// Build over an owned collection (serial, bit-deterministic).
    pub fn build(vectors: Vectors, metric: Metric, cfg: &IvfConfig) -> Result<Self> {
        IvfFlatIndex::build_with(vectors, metric, cfg, &BuildOptions::serial())
    }

    /// Build with explicit [`BuildOptions`]: coarse training fans Lloyd
    /// iterations out over row chunks, and assignment is a pure per-row
    /// map scattered in ascending row order — so for a fixed quantizer
    /// the list layout is bit-identical for any thread count.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: &IvfConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        metric.validate(vectors.dim())?;
        let coarse = train_coarse_with(&vectors, cfg.nlist, cfg.train_iters, cfg.seed, opts)?;
        let assigns = assign_rows(&coarse, &vectors, opts);
        let lists = scatter_lists(&assigns, coarse.k());
        let drift = DriftTracker::new(&coarse, &lists, vectors.dim());
        Ok(IvfFlatIndex {
            assigns: assigns.iter().map(|&c| c as u32).collect(),
            vectors,
            metric,
            coarse,
            lists,
            removed: 0,
            drift,
            reclusters: 0,
        })
    }

    /// The coarse quantizer (exposed for index-guided sharding and
    /// offline-blocking experiments).
    pub fn coarse(&self) -> &KMeans {
        &self.coarse
    }

    /// Rows in list `c`.
    pub fn list(&self, c: usize) -> &[u32] {
        &self.lists[c]
    }

    /// Number of lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Targeted re-clusterings performed so far (drift repairs).
    pub fn reclusters(&self) -> usize {
        self.reclusters
    }

    /// Re-cluster list `c` if its appended mass has drifted: recompute
    /// the centroid as the mean of current members and re-home members
    /// that now sit closer to a sibling centroid (drifted lists only —
    /// the targeted alternative to retraining the coarse quantizer).
    fn maybe_recluster(&mut self, c: usize) {
        if !self.drift.drifted(c, self.coarse.centroids().get(c)) {
            return;
        }
        let members = std::mem::take(&mut self.lists[c]);
        if members.is_empty() {
            self.drift.reset(c, 0);
            return;
        }
        let mut mean = vec![0.0f32; self.vectors.dim()];
        for &row in &members {
            for (m, &x) in mean.iter_mut().zip(self.vectors.get(row as usize)) {
                *m += x;
            }
        }
        let inv = 1.0 / members.len() as f32;
        for m in &mut mean {
            *m *= inv;
        }
        self.coarse.set_centroid(c, &mean);
        let mut keep = Vec::with_capacity(members.len());
        for &row in &members {
            let c2 = self.coarse.assign(self.vectors.get(row as usize)).0;
            if c2 == c {
                keep.push(row);
            } else {
                self.lists[c2].push(row);
                self.assigns[row as usize] = c2 as u32;
            }
        }
        let kept = keep.len();
        self.lists[c] = keep;
        self.drift.reset(c, kept);
        self.reclusters += 1;
    }

    /// Probe the `nprobe` nearest lists into the context's probe buffer,
    /// then scan them through the context's result pool — no per-query
    /// allocation once the context is warm.
    fn scan_lists(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Vec<Neighbor> {
        self.coarse
            .assign_multi_into(query, params.nprobe.max(1), &mut ctx.order, &mut ctx.ids);
        let SearchContext {
            ids, dists, pool, ..
        } = ctx;
        pool.reset(k);
        for &c in ids.iter() {
            let list = &self.lists[c as usize];
            match filter {
                // Unfiltered probe: score the whole posting list through the
                // gathered multi-row kernel, then push.
                None => {
                    dists.resize(list.len(), 0.0);
                    self.metric
                        .distance_gather(query, &self.vectors, list, dists);
                    for (&row, &d) in list.iter().zip(dists.iter()) {
                        pool.push(Neighbor::new(row as usize, d));
                    }
                }
                // Filtered probe: evaluate the predicate first so blocked
                // rows never incur a distance computation.
                Some(f) => {
                    for &row in list {
                        if !f.accept(row as usize) {
                            continue;
                        }
                        let d = self.metric.distance(query, self.vectors.get(row as usize));
                        pool.push(Neighbor::new(row as usize, d));
                    }
                }
            }
        }
        pool.drain_sorted()
    }
}

impl VectorIndex for IvfFlatIndex {
    fn name(&self) -> &'static str {
        "ivf_flat"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.scan_lists(ctx, query, k, params, None))
    }

    /// Block-first scan: the filter is consulted *inside* the list scan, so
    /// blocked vectors never incur a distance computation.
    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.scan_lists(ctx, query, k, params, Some(filter)))
    }

    fn stats(&self) -> IndexStats {
        let entries: usize = self.lists.iter().map(Vec::len).sum();
        IndexStats {
            memory_bytes: entries * 4 + self.coarse.k() * self.dim() * 4,
            structure_entries: entries,
            detail: format!(
                "nlist={} removed={} reclusters={}",
                self.lists.len(),
                self.removed,
                self.reclusters
            ),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        Some(self)
    }
}

impl DynamicIndex for IvfFlatIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        MutableIndex::insert(self, vector)
    }
}

impl MutableIndex for IvfFlatIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let row = self.vectors.push(vector)?;
        let c = self.coarse.assign(self.vectors.get(row)).0;
        self.lists[c].push(row as u32);
        self.assigns.push(c as u32);
        let v = self.vectors.get(row).to_vec();
        self.drift.record_append(c, &v);
        self.maybe_recluster(c);
        Ok(row)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.assigns.len() {
            return Err(Error::NotFound(format!("ivf row {id} out of range")));
        }
        let c = self.assigns[id];
        if c == REMOVED {
            return Ok(false);
        }
        let list = &mut self.lists[c as usize];
        let pos = list
            .iter()
            .position(|&r| r == id as u32)
            .expect("assigned row is in its list");
        list.swap_remove(pos);
        self.assigns[id] = REMOVED;
        self.removed += 1;
        Ok(true)
    }

    fn live(&self) -> usize {
        self.vectors.len() - self.removed
    }
}

impl std::fmt::Debug for IvfFlatIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IvfFlatIndex(n={}, nlist={})",
            self.len(),
            self.lists.len()
        )
    }
}

/// Shared validation used by the IVF family.
pub(crate) fn check_ivf_params(nlist: usize) -> Result<()> {
    if nlist == 0 {
        return Err(Error::InvalidParameter("nlist must be positive".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;

    fn setup(nlist: usize) -> (IvfFlatIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(42);
        let data = dataset::clustered(3000, 16, 20, 0.4, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 30, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = IvfFlatIndex::build(data, Metric::Euclidean, &IvfConfig::new(nlist)).unwrap();
        (idx, queries, gt)
    }

    #[test]
    fn high_nprobe_reaches_high_recall() {
        let (idx, queries, gt) = setup(32);
        let params = SearchParams::default().with_nprobe(16);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.95, "recall {r}");
    }

    #[test]
    fn nprobe_equals_nlist_is_exact() {
        let (idx, queries, gt) = setup(16);
        let params = SearchParams::default().with_nprobe(16);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        assert!(
            (gt.recall_batch(&results) - 1.0).abs() < 1e-12,
            "probing all lists = exact"
        );
    }

    #[test]
    fn recall_monotone_in_nprobe() {
        let (idx, queries, gt) = setup(32);
        let mut last = 0.0;
        for nprobe in [1, 4, 16, 32] {
            let params = SearchParams::default().with_nprobe(nprobe);
            let results: Vec<_> = queries
                .iter()
                .map(|q| idx.search(q, 10, &params).unwrap())
                .collect();
            let r = gt.recall_batch(&results);
            assert!(r >= last - 1e-9, "nprobe={nprobe}: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn block_first_filtered_search_correct() {
        let (idx, queries, _) = setup(16);
        let filter = |id: usize| id.is_multiple_of(3);
        let params = SearchParams::default().with_nprobe(16);
        for q in queries.iter().take(5) {
            let hits = idx.search_filtered(q, 5, &params, &filter).unwrap();
            assert!(hits.iter().all(|n| n.id % 3 == 0));
            // With all lists probed, block-first equals exact filtered scan.
            let flat = vdb_core::FlatIndex::build(idx.vectors.clone(), Metric::Euclidean).unwrap();
            let oracle = flat.search_filtered(q, 5, &params, &filter).unwrap();
            assert_eq!(
                hits.iter().map(|n| n.id).collect::<Vec<_>>(),
                oracle.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn insert_goes_to_nearest_list() {
        let (mut idx, _, _) = setup(8);
        let v = vec![3.0f32; 16];
        let row = DynamicIndex::insert(&mut idx, &v).unwrap();
        let c = idx.coarse().assign(&v).0;
        assert!(idx.list(c).contains(&(row as u32)));
        let hits = idx
            .search(&v, 1, &SearchParams::default().with_nprobe(8))
            .unwrap();
        assert_eq!(hits[0].id, row);
    }

    #[test]
    fn every_row_in_exactly_one_list() {
        let (idx, _, _) = setup(16);
        let total: usize = (0..idx.nlist()).map(|c| idx.list(c).len()).sum();
        assert_eq!(total, idx.len());
    }

    #[test]
    fn removed_rows_leave_their_list_and_never_surface() {
        let (mut idx, queries, _) = setup(16);
        for id in (0..3000).step_by(4) {
            assert!(MutableIndex::remove(&mut idx, id).unwrap());
        }
        assert!(!MutableIndex::remove(&mut idx, 0).unwrap(), "idempotent");
        assert_eq!(idx.live(), 3000 - 750);
        let total: usize = (0..idx.nlist()).map(|c| idx.list(c).len()).sum();
        assert_eq!(total, idx.live(), "removed rows leave the lists");
        let params = SearchParams::default().with_nprobe(16);
        for q in queries.iter() {
            let hits = idx.search(q, 10, &params).unwrap();
            assert!(hits.iter().all(|n| n.id % 4 != 0), "tombstone surfaced");
        }
    }

    #[test]
    fn drifted_list_recluster_moves_centroid() {
        // Small uniform base, then a stream of appends far outside the
        // trained region: the receiving list's centroid must chase them.
        let mut rng = Rng::seed_from_u64(5);
        let data = dataset::gaussian(200, 8, &mut rng);
        let mut idx = IvfFlatIndex::build(data, Metric::Euclidean, &IvfConfig::new(4)).unwrap();
        let far = vec![50.0f32; 8];
        let c0 = idx.coarse().assign(&far).0;
        let before = idx.coarse().centroids().get(c0).to_vec();
        for i in 0..120 {
            let v: Vec<f32> = (0..8).map(|j| 50.0 + ((i + j) % 7) as f32 * 0.1).collect();
            DynamicIndex::insert(&mut idx, &v).unwrap();
        }
        assert!(idx.reclusters() > 0, "drift never fired");
        let c1 = idx.coarse().assign(&far).0;
        let after = idx.coarse().centroids().get(c1).to_vec();
        let d_before: f32 = far
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let d_after: f32 = far.iter().zip(&after).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(
            d_after < d_before,
            "recluster should pull a centroid toward the appended mass"
        );
        // Every live row is still in exactly one list, in the list its
        // assignment claims.
        let total: usize = (0..idx.nlist()).map(|c| idx.list(c).len()).sum();
        assert_eq!(total, idx.live());
        for c in 0..idx.nlist() {
            for &row in idx.list(c) {
                assert_eq!(idx.assigns[row as usize], c as u32);
            }
        }
    }

    #[test]
    fn rejects_zero_nlist() {
        let data = dataset::gaussian(10, 4, &mut Rng::seed_from_u64(1));
        assert!(IvfFlatIndex::build(data, Metric::Euclidean, &IvfConfig::new(0)).is_err());
    }
}
