//! IVFADC: inverted file with asymmetric distance computation over
//! product-quantized *residuals* (Jégou et al.; §2.2(3) of the paper).
//!
//! Each vector is stored in the list of its nearest coarse centroid as the
//! PQ code of its residual `v - centroid`. At query time, for each probed
//! list an ADC table is built from the query's residual against that
//! centroid; scanning the list is then `m` byte-indexed table lookups per
//! code — the loop SIMD-accelerated by QuickADC-style techniques (§2.3).

use crate::coarse::{assign_rows, scatter_lists, train_coarse_with};
use crate::drift::DriftTracker;
use crate::ivf::{IvfConfig, REMOVED};
use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{
    check_query, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use vdb_core::metric::Metric;
use vdb_core::parallel::BuildOptions;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_quant::{AdcTable, KMeans, PqConfig, ProductQuantizer};

/// Reusable ADC table kept in the [`SearchContext`] extension slot so a
/// warm context rebuilds per-list tables without reallocating.
#[derive(Debug, Default)]
struct PqScratch {
    table: AdcTable,
}

/// Build-time configuration for IVFADC.
#[derive(Debug, Clone)]
pub struct IvfPqConfig {
    /// Coarse quantizer configuration.
    pub ivf: IvfConfig,
    /// PQ configuration for the residual codes.
    pub pq: PqConfig,
    /// Keep originals for exact re-ranking.
    pub refine: bool,
}

impl IvfPqConfig {
    /// Default: `nlist` lists, `m` PQ subspaces, re-ranking on.
    pub fn new(nlist: usize, m: usize) -> Self {
        IvfPqConfig {
            ivf: IvfConfig::new(nlist),
            pq: PqConfig::new(m),
            refine: true,
        }
    }
}

/// The IVFADC index.
pub struct IvfPqIndex {
    dim: usize,
    n: usize,
    metric: Metric,
    coarse: KMeans,
    pq: ProductQuantizer,
    lists: Vec<Vec<u32>>,
    /// Per-list concatenated residual PQ codes.
    codes: Vec<Vec<u8>>,
    refine: Option<Arc<Vectors>>,
    /// Row -> list id; `REMOVED` marks a tombstoned row.
    assigns: Vec<u32>,
    removed: usize,
    drift: DriftTracker,
    reclusters: usize,
}

impl IvfPqIndex {
    /// Build the index (serial, bit-deterministic).
    pub fn build(vectors: Vectors, metric: Metric, cfg: &IvfPqConfig) -> Result<Self> {
        IvfPqIndex::build_with(vectors, metric, cfg, &BuildOptions::serial())
    }

    /// [`IvfPqIndex::build`] with explicit [`BuildOptions`]: coarse
    /// training, row assignment, residual-PQ training (per subspace), and
    /// residual encoding all fan out over threads. Assignment and encoding
    /// are pure per row and PQ subspaces train independently, so for a
    /// fixed coarse quantizer the whole index is bit-identical for any
    /// thread count.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: &IvfPqConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        metric.validate(vectors.dim())?;
        let coarse = train_coarse_with(
            &vectors,
            cfg.ivf.nlist,
            cfg.ivf.train_iters,
            cfg.ivf.seed,
            opts,
        )?;
        let dim = vectors.dim();
        let assigns = assign_rows(&coarse, &vectors, opts);
        // Residuals `v - centroid` (cheap, one pass; stays serial).
        let mut residuals = Vectors::with_capacity(dim, vectors.len());
        let mut buf = vec![0.0f32; dim];
        for (v, &c) in vectors.iter().zip(&assigns) {
            let centroid = coarse.centroids().get(c);
            for i in 0..dim {
                buf[i] = v[i] - centroid[i];
            }
            residuals.push(&buf)?;
        }
        let pq = ProductQuantizer::train_with(&residuals, &cfg.pq, opts)?;
        let m = pq.code_len();
        let flat = pq.encode_all(&residuals, opts)?;
        let lists = scatter_lists(&assigns, coarse.k());
        let codes: Vec<Vec<u8>> = lists
            .iter()
            .map(|rows| {
                let mut block = Vec::with_capacity(rows.len() * m);
                for &row in rows {
                    let row = row as usize;
                    block.extend_from_slice(&flat[row * m..(row + 1) * m]);
                }
                block
            })
            .collect();
        let n = vectors.len();
        let drift = DriftTracker::new(&coarse, &lists, dim);
        Ok(IvfPqIndex {
            dim,
            n,
            metric,
            assigns: assigns.iter().map(|&c| c as u32).collect(),
            coarse,
            pq,
            lists,
            codes,
            refine: cfg.refine.then(|| Arc::new(vectors)),
            removed: 0,
            drift,
            reclusters: 0,
        })
    }

    /// Targeted re-clusterings performed so far (drift repairs).
    pub fn reclusters(&self) -> usize {
        self.reclusters
    }

    /// Re-cluster list `c` if drifted. PQ codes quantize *residuals*
    /// against the list centroid, so unlike IVF-Flat/IVF-SQ every member
    /// is re-encoded: kept rows against the recomputed centroid, moved
    /// rows against their new home's centroid.
    fn maybe_recluster(&mut self, c: usize) {
        if !self.drift.drifted(c, self.coarse.centroids().get(c)) {
            return;
        }
        let full = match &self.refine {
            Some(full) => Arc::clone(full),
            None => return,
        };
        let members = std::mem::take(&mut self.lists[c]);
        self.codes[c].clear();
        if members.is_empty() {
            self.drift.reset(c, 0);
            return;
        }
        let mut mean = vec![0.0f32; self.dim];
        for &row in &members {
            for (m, &x) in mean.iter_mut().zip(full.get(row as usize)) {
                *m += x;
            }
        }
        let inv = 1.0 / members.len() as f32;
        for m in &mut mean {
            *m *= inv;
        }
        self.coarse.set_centroid(c, &mean);
        let m = self.pq.code_len();
        let mut residual = vec![0.0f32; self.dim];
        let mut code = vec![0u8; m];
        let mut kept = 0;
        for &row in &members {
            let v = full.get(row as usize);
            let c2 = self.coarse.assign(v).0;
            let centroid = self.coarse.centroids().get(c2);
            for i in 0..self.dim {
                residual[i] = v[i] - centroid[i];
            }
            self.pq
                .encode_into(&residual, &mut code)
                .expect("row dim matches quantizer dim");
            self.lists[c2].push(row);
            self.codes[c2].extend_from_slice(&code);
            self.assigns[row as usize] = c2 as u32;
            if c2 == c {
                kept += 1;
            }
        }
        self.drift.reset(c, kept);
        self.reclusters += 1;
    }

    /// Bytes of compressed code per vector.
    pub fn bytes_per_vector(&self) -> usize {
        self.pq.code_len()
    }

    fn scan(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Result<Vec<Neighbor>> {
        self.coarse
            .assign_multi_into(query, params.nprobe.max(1), &mut ctx.order, &mut ctx.ids);
        let m = self.pq.code_len();
        let pool = if self.refine.is_some() {
            params.rerank.max(k)
        } else {
            k
        };
        ctx.pool.reset(pool);
        ctx.scratch.clear();
        ctx.scratch.resize(self.dim, 0.0);
        let mut table = std::mem::take(&mut ctx.ext::<PqScratch>().table);
        for &c in &ctx.ids {
            let c = c as usize;
            let centroid = self.coarse.centroids().get(c);
            for i in 0..self.dim {
                ctx.scratch[i] = query[i] - centroid[i];
            }
            self.pq.adc_table_into(&ctx.scratch, &mut table)?;
            let rows = &self.lists[c];
            let codes = &self.codes[c];
            match filter {
                // Unfiltered probe: one dispatched ADC scan over the list's
                // contiguous code block (the AVX2 backend gathers eight
                // table entries per instruction).
                None => {
                    ctx.dists.resize(rows.len(), 0.0);
                    table.scan(codes, &mut ctx.dists);
                    for (&row, &d) in rows.iter().zip(ctx.dists.iter()) {
                        ctx.pool.push(Neighbor::new(row as usize, d));
                    }
                }
                Some(f) => {
                    for (i, &row) in rows.iter().enumerate() {
                        if !f.accept(row as usize) {
                            continue;
                        }
                        let d = table.distance(&codes[i * m..(i + 1) * m]);
                        ctx.pool.push(Neighbor::new(row as usize, d));
                    }
                }
            }
        }
        ctx.ext::<PqScratch>().table = table;
        let approx = ctx.pool.drain_sorted();
        Ok(match &self.refine {
            Some(full) => {
                ctx.rerank.reset(k);
                for n in approx {
                    ctx.rerank.push(Neighbor::new(
                        n.id,
                        self.metric.distance(query, full.get(n.id)),
                    ));
                }
                ctx.rerank.drain_sorted()
            }
            None => approx.into_iter().take(k).collect(),
        })
    }
}

impl VectorIndex for IvfPqIndex {
    fn name(&self) -> &'static str {
        "ivf_pq"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, None)
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, Some(filter))
    }

    fn stats(&self) -> IndexStats {
        let code_bytes: usize = self.codes.iter().map(Vec::len).sum();
        let ids: usize = self.lists.iter().map(Vec::len).sum();
        IndexStats {
            memory_bytes: code_bytes
                + ids * 4
                + self.coarse.k() * self.dim * 4
                + self.pq.memory_bytes(),
            structure_entries: ids,
            detail: format!(
                "nlist={} m={} removed={} reclusters={}",
                self.lists.len(),
                self.pq.m(),
                self.removed,
                self.reclusters
            ),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        // Mutability needs the full-precision originals: inserts must
        // encode fresh residuals and re-clustering re-encodes members.
        if self.refine.is_some() {
            Some(self)
        } else {
            None
        }
    }
}

impl MutableIndex for IvfPqIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let full = self.refine.as_mut().ok_or_else(|| {
            Error::Unsupported("ivf_pq without refine vectors is immutable".into())
        })?;
        let row = Arc::make_mut(full).push(vector)?;
        debug_assert_eq!(row, self.assigns.len());
        let c = self.coarse.assign(vector).0;
        let centroid = self.coarse.centroids().get(c);
        let residual: Vec<f32> = vector.iter().zip(centroid).map(|(v, cc)| v - cc).collect();
        let code = self.pq.encode(&residual)?;
        self.lists[c].push(row as u32);
        self.codes[c].extend_from_slice(&code);
        self.assigns.push(c as u32);
        self.n += 1;
        self.drift.record_append(c, vector);
        self.maybe_recluster(c);
        Ok(row)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.assigns.len() {
            return Err(Error::NotFound(format!("ivf_pq row {id} out of range")));
        }
        let c = self.assigns[id];
        if c == REMOVED {
            return Ok(false);
        }
        let c = c as usize;
        let pos = self.lists[c]
            .iter()
            .position(|&r| r == id as u32)
            .expect("assigned row is in its list");
        self.lists[c].swap_remove(pos);
        // Mirror the swap_remove on the aligned code block.
        let m = self.pq.code_len();
        let codes = &mut self.codes[c];
        let last = codes.len() - m;
        let start = pos * m;
        if start < last {
            let (head, tail) = codes.split_at_mut(last);
            head[start..start + m].copy_from_slice(tail);
        }
        codes.truncate(last);
        self.assigns[id] = REMOVED;
        self.removed += 1;
        Ok(true)
    }

    fn live(&self) -> usize {
        self.n - self.removed
    }
}

impl std::fmt::Debug for IvfPqIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IvfPqIndex(n={}, nlist={}, m={})",
            self.n,
            self.lists.len(),
            self.pq.m()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;

    fn setup(m: usize, refine: bool) -> (IvfPqIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(11);
        let data = dataset::clustered(2000, 16, 10, 0.4, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let mut cfg = IvfPqConfig::new(16, m);
        cfg.refine = refine;
        let idx = IvfPqIndex::build(data, Metric::Euclidean, &cfg).unwrap();
        (idx, queries, gt)
    }

    fn recall_at(idx: &IvfPqIndex, queries: &Vectors, gt: &GroundTruth, nprobe: usize) -> f64 {
        let params = SearchParams::default().with_nprobe(nprobe).with_rerank(100);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn ivfadc_with_rerank_high_recall() {
        let (idx, queries, gt) = setup(8, true);
        let r = recall_at(&idx, &queries, &gt, 16);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn rerank_recovers_quantization_loss() {
        let (with, queries, gt) = setup(4, true);
        let (without, _, _) = setup(4, false);
        let rw = recall_at(&with, &queries, &gt, 16);
        let ro = recall_at(&without, &queries, &gt, 16);
        assert!(rw > ro, "rerank {rw} should beat raw ADC {ro}");
    }

    #[test]
    fn more_subspaces_improve_raw_adc_recall() {
        let (m2, queries, gt) = setup(2, false);
        let (m16, _, _) = setup(16, false);
        let r2 = recall_at(&m2, &queries, &gt, 16);
        let r16 = recall_at(&m16, &queries, &gt, 16);
        assert!(r16 > r2, "m=16 ({r16}) vs m=2 ({r2})");
    }

    #[test]
    fn compression_accounting() {
        let (idx, _, _) = setup(8, false);
        assert_eq!(idx.bytes_per_vector(), 8);
        // 8 bytes vs 64 bytes raw = 8x compression.
        assert!(idx.stats().memory_bytes < idx.len() * 16 * 4);
    }

    #[test]
    fn removed_rows_leave_their_list_and_never_surface() {
        let (mut idx, queries, _) = setup(8, true);
        for id in (0..2000).step_by(4) {
            assert!(MutableIndex::remove(&mut idx, id).unwrap());
        }
        assert!(!MutableIndex::remove(&mut idx, 0).unwrap(), "idempotent");
        assert_eq!(idx.live(), 2000 - 500);
        let ids: usize = idx.lists.iter().map(Vec::len).sum();
        assert_eq!(ids, idx.live(), "removed rows leave the lists");
        let m = idx.pq.code_len();
        for (rows, codes) in idx.lists.iter().zip(&idx.codes) {
            assert_eq!(codes.len(), rows.len() * m, "codes track their list");
        }
        let params = SearchParams::default().with_nprobe(16);
        for q in queries.iter() {
            let hits = idx.search(q, 10, &params).unwrap();
            assert!(hits.iter().all(|n| n.id % 4 != 0), "tombstone surfaced");
        }
    }

    #[test]
    fn mutation_requires_refine_vectors() {
        let (mut idx, _, _) = setup(8, false);
        assert!(idx.as_mutable().is_none());
        assert!(MutableIndex::insert(&mut idx, &[0.0; 16]).is_err());
        let (mut idx, _, _) = setup(8, true);
        assert!(idx.as_mutable().is_some());
    }

    #[test]
    fn drifted_list_recluster_reencodes_residuals() {
        let mut rng = Rng::seed_from_u64(5);
        let data = dataset::gaussian(200, 8, &mut rng);
        let mut idx = IvfPqIndex::build(data, Metric::Euclidean, &IvfPqConfig::new(4, 4)).unwrap();
        let far = vec![50.0f32; 8];
        let before = idx
            .coarse
            .centroids()
            .get(idx.coarse.assign(&far).0)
            .to_vec();
        for i in 0..120 {
            let v: Vec<f32> = (0..8).map(|j| 50.0 + ((i + j) % 7) as f32 * 0.1).collect();
            MutableIndex::insert(&mut idx, &v).unwrap();
        }
        assert!(idx.reclusters() > 0, "drift never fired");
        let after = idx
            .coarse
            .centroids()
            .get(idx.coarse.assign(&far).0)
            .to_vec();
        let d =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        assert!(
            d(&far, &after) < d(&far, &before),
            "recluster should pull a centroid toward the appended mass"
        );
        // Lists, code blocks, and assignments all stay consistent.
        let m = idx.pq.code_len();
        let mut seen = 0;
        for c in 0..idx.lists.len() {
            assert_eq!(idx.codes[c].len(), idx.lists[c].len() * m);
            for &row in &idx.lists[c] {
                assert_eq!(idx.assigns[row as usize], c as u32);
                seen += 1;
            }
        }
        assert_eq!(seen, idx.live());
        // Residual codes were re-encoded against the moved centroid: a
        // query at the appended mass must surface appended rows.
        let hits = idx
            .search(&far, 10, &SearchParams::default().with_nprobe(4))
            .unwrap();
        assert!(hits.iter().all(|n| n.id >= 200), "appended rows should win");
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (idx, queries, _) = setup(8, true);
        let filter = |id: usize| id % 2 == 1;
        let params = SearchParams::default().with_nprobe(16);
        let hits = idx
            .search_filtered(queries.get(0), 5, &params, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|n| n.id % 2 == 1));
    }
}
