//! IVF-SQ: inverted lists of scalar-quantized codes (§2.2(3)).
//!
//! Lists store SQ8/SQ4 codes instead of raw vectors (4-8× smaller).
//! Search scans probed lists with asymmetric distances and optionally
//! re-ranks the best candidates against full-precision vectors (which a
//! production deployment keeps on slower storage — see DESIGN.md).

use crate::coarse::{assign_rows, scatter_lists, train_coarse_with};
use crate::drift::DriftTracker;
use crate::ivf::{IvfConfig, REMOVED};
use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{
    check_query, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use vdb_core::metric::Metric;
use vdb_core::parallel::{clamp_threads, parallel_map_chunks, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_quant::{KMeans, ScalarQuantizer, SqBits};

/// IVF over scalar-quantized codes.
pub struct IvfSqIndex {
    dim: usize,
    n: usize,
    metric: Metric,
    coarse: KMeans,
    sq: ScalarQuantizer,
    /// Per-list row ids.
    lists: Vec<Vec<u32>>,
    /// Per-list concatenated codes, aligned with `lists`.
    codes: Vec<Vec<u8>>,
    /// Full-precision vectors for re-ranking (models the disk-resident
    /// originals; excluded from the index's memory accounting).
    refine: Option<Arc<Vectors>>,
    /// Row -> list id; `REMOVED` marks a tombstoned row.
    assigns: Vec<u32>,
    removed: usize,
    drift: DriftTracker,
    reclusters: usize,
}

impl IvfSqIndex {
    /// Build with the given scalar code width. Pass `refine = true` to keep
    /// the originals available for re-ranking.
    pub fn build(
        vectors: Vectors,
        metric: Metric,
        cfg: &IvfConfig,
        bits: SqBits,
        refine: bool,
    ) -> Result<Self> {
        IvfSqIndex::build_with(vectors, metric, cfg, bits, refine, &BuildOptions::serial())
    }

    /// [`IvfSqIndex::build`] with explicit [`BuildOptions`]: coarse
    /// training, row assignment, and SQ encoding all fan out over row
    /// chunks. Encoding is pure per row and the scatter walks rows in
    /// ascending order, so for a fixed quantizer the lists and code
    /// blocks are bit-identical for any thread count.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: &IvfConfig,
        bits: SqBits,
        refine: bool,
        opts: &BuildOptions,
    ) -> Result<Self> {
        metric.validate(vectors.dim())?;
        let coarse = train_coarse_with(&vectors, cfg.nlist, cfg.train_iters, cfg.seed, opts)?;
        let sq = ScalarQuantizer::train(&vectors, bits)?;
        let code_len = sq.code_len();
        let assigns = assign_rows(&coarse, &vectors, opts);
        let lists = scatter_lists(&assigns, coarse.k());
        // Flat per-row code buffer, then gather into per-list blocks in
        // list order (== ascending row order within each list).
        let threads = clamp_threads(opts.effective_threads(), vectors.len() / 64);
        let flat = parallel_map_chunks(vectors.len(), threads, |_, range| {
            let mut block = vec![0u8; range.len() * code_len];
            for (slot, row) in range.enumerate() {
                sq.encode_into(
                    vectors.get(row),
                    &mut block[slot * code_len..(slot + 1) * code_len],
                )
                .expect("row dim matches quantizer dim");
            }
            block
        })
        .concat();
        let codes: Vec<Vec<u8>> = lists
            .iter()
            .map(|rows| {
                let mut block = Vec::with_capacity(rows.len() * code_len);
                for &row in rows {
                    let row = row as usize;
                    block.extend_from_slice(&flat[row * code_len..(row + 1) * code_len]);
                }
                block
            })
            .collect();
        let (dim, n) = (vectors.dim(), vectors.len());
        let drift = DriftTracker::new(&coarse, &lists, dim);
        Ok(IvfSqIndex {
            dim,
            n,
            metric,
            assigns: assigns.iter().map(|&c| c as u32).collect(),
            coarse,
            sq,
            lists,
            codes,
            refine: refine.then(|| Arc::new(vectors)),
            removed: 0,
            drift,
            reclusters: 0,
        })
    }

    /// Targeted re-clusterings performed so far (drift repairs).
    pub fn reclusters(&self) -> usize {
        self.reclusters
    }

    /// Re-cluster list `c` if drifted: recompute the centroid from the
    /// full-precision members, then re-home rows now closer to a sibling
    /// centroid. SQ codes quantize the vector itself (not a residual),
    /// so moving a row just moves its code block — no re-encoding.
    fn maybe_recluster(&mut self, c: usize) {
        if !self.drift.drifted(c, self.coarse.centroids().get(c)) {
            return;
        }
        let full = match &self.refine {
            Some(full) => Arc::clone(full),
            None => return,
        };
        let members = std::mem::take(&mut self.lists[c]);
        let blocks = std::mem::take(&mut self.codes[c]);
        if members.is_empty() {
            self.drift.reset(c, 0);
            return;
        }
        let mut mean = vec![0.0f32; self.dim];
        for &row in &members {
            for (m, &x) in mean.iter_mut().zip(full.get(row as usize)) {
                *m += x;
            }
        }
        let inv = 1.0 / members.len() as f32;
        for m in &mut mean {
            *m *= inv;
        }
        self.coarse.set_centroid(c, &mean);
        let cl = self.sq.code_len();
        let mut keep = Vec::with_capacity(members.len());
        let mut keep_codes = Vec::with_capacity(blocks.len());
        for (i, &row) in members.iter().enumerate() {
            let code = &blocks[i * cl..(i + 1) * cl];
            let c2 = self.coarse.assign(full.get(row as usize)).0;
            if c2 == c {
                keep.push(row);
                keep_codes.extend_from_slice(code);
            } else {
                self.lists[c2].push(row);
                self.codes[c2].extend_from_slice(code);
                self.assigns[row as usize] = c2 as u32;
            }
        }
        let kept = keep.len();
        self.lists[c] = keep;
        self.codes[c] = keep_codes;
        self.drift.reset(c, kept);
        self.reclusters += 1;
    }

    /// Bytes of compressed code per vector.
    pub fn bytes_per_vector(&self) -> usize {
        self.sq.code_len()
    }

    fn scan(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Vec<Neighbor> {
        self.coarse
            .assign_multi_into(query, params.nprobe.max(1), &mut ctx.order, &mut ctx.ids);
        let code_len = self.sq.code_len();
        // Phase 1: approximate candidates by asymmetric code distance.
        let pool = if self.refine.is_some() {
            params.rerank.max(k)
        } else {
            k
        };
        ctx.pool.reset(pool);
        for &c in &ctx.ids {
            let rows = &self.lists[c as usize];
            let codes = &self.codes[c as usize];
            match filter {
                // Unfiltered probe: batch the whole list's contiguous codes
                // through the dispatched SQ kernel.
                None => {
                    ctx.dists.resize(rows.len(), 0.0);
                    self.sq.asymmetric_l2_sq_batch(query, codes, &mut ctx.dists);
                    for (&row, &d) in rows.iter().zip(ctx.dists.iter()) {
                        ctx.pool.push(Neighbor::new(row as usize, d));
                    }
                }
                Some(f) => {
                    for (i, &row) in rows.iter().enumerate() {
                        if !f.accept(row as usize) {
                            continue;
                        }
                        let d = self
                            .sq
                            .asymmetric_l2_sq(query, &codes[i * code_len..(i + 1) * code_len]);
                        ctx.pool.push(Neighbor::new(row as usize, d));
                    }
                }
            }
        }
        let approx = ctx.pool.drain_sorted();
        // Phase 2: optional exact re-rank.
        match &self.refine {
            Some(full) => {
                ctx.rerank.reset(k);
                for n in approx {
                    let d = self.metric.distance(query, full.get(n.id));
                    ctx.rerank.push(Neighbor::new(n.id, d));
                }
                ctx.rerank.drain_sorted()
            }
            None => approx.into_iter().take(k).collect(),
        }
    }
}

impl VectorIndex for IvfSqIndex {
    fn name(&self) -> &'static str {
        "ivf_sq"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        Ok(self.scan(ctx, query, k, params, None))
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        Ok(self.scan(ctx, query, k, params, Some(filter)))
    }

    fn stats(&self) -> IndexStats {
        let code_bytes: usize = self.codes.iter().map(Vec::len).sum();
        let ids: usize = self.lists.iter().map(Vec::len).sum();
        IndexStats {
            memory_bytes: code_bytes + ids * 4 + self.coarse.k() * self.dim * 4,
            structure_entries: ids,
            detail: format!(
                "nlist={} code_bytes/vec={} removed={} reclusters={}",
                self.lists.len(),
                self.sq.code_len(),
                self.removed,
                self.reclusters
            ),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        // Mutability needs the full-precision originals: inserts must
        // re-encode and re-clustering recomputes centroids from members.
        if self.refine.is_some() {
            Some(self)
        } else {
            None
        }
    }
}

impl MutableIndex for IvfSqIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let full = self.refine.as_mut().ok_or_else(|| {
            Error::Unsupported("ivf_sq without refine vectors is immutable".into())
        })?;
        let row = Arc::make_mut(full).push(vector)?;
        debug_assert_eq!(row, self.assigns.len());
        let code = self.sq.encode(vector)?;
        let c = self.coarse.assign(vector).0;
        self.lists[c].push(row as u32);
        self.codes[c].extend_from_slice(&code);
        self.assigns.push(c as u32);
        self.n += 1;
        self.drift.record_append(c, vector);
        self.maybe_recluster(c);
        Ok(row)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.assigns.len() {
            return Err(Error::NotFound(format!("ivf_sq row {id} out of range")));
        }
        let c = self.assigns[id];
        if c == REMOVED {
            return Ok(false);
        }
        let c = c as usize;
        let pos = self.lists[c]
            .iter()
            .position(|&r| r == id as u32)
            .expect("assigned row is in its list");
        self.lists[c].swap_remove(pos);
        // Mirror the swap_remove on the aligned code block.
        let cl = self.sq.code_len();
        let codes = &mut self.codes[c];
        let last = codes.len() - cl;
        let start = pos * cl;
        if start < last {
            let (head, tail) = codes.split_at_mut(last);
            head[start..start + cl].copy_from_slice(tail);
        }
        codes.truncate(last);
        self.assigns[id] = REMOVED;
        self.removed += 1;
        Ok(true)
    }

    fn live(&self) -> usize {
        self.n - self.removed
    }
}

impl std::fmt::Debug for IvfSqIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IvfSqIndex(n={}, nlist={})", self.n, self.lists.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;

    fn setup(bits: SqBits, refine: bool) -> (IvfSqIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(9);
        let data = dataset::clustered(2000, 16, 10, 0.4, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx =
            IvfSqIndex::build(data, Metric::Euclidean, &IvfConfig::new(16), bits, refine).unwrap();
        (idx, queries, gt)
    }

    fn recall_at(idx: &IvfSqIndex, queries: &Vectors, gt: &GroundTruth, nprobe: usize) -> f64 {
        let params = SearchParams::default().with_nprobe(nprobe);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn sq8_with_rerank_high_recall() {
        let (idx, queries, gt) = setup(SqBits::B8, true);
        let r = recall_at(&idx, &queries, &gt, 16);
        assert!(r > 0.95, "recall {r}");
    }

    #[test]
    fn rerank_beats_no_rerank_on_sq4() {
        let (with, queries, gt) = setup(SqBits::B4, true);
        let (without, _, _) = setup(SqBits::B4, false);
        let rw = recall_at(&with, &queries, &gt, 16);
        let ro = recall_at(&without, &queries, &gt, 16);
        assert!(rw >= ro, "rerank {rw} vs raw {ro}");
    }

    #[test]
    fn compression_ratio_reported() {
        let (sq8, _, _) = setup(SqBits::B8, false);
        let (sq4, _, _) = setup(SqBits::B4, false);
        assert_eq!(sq8.bytes_per_vector(), 16);
        assert_eq!(sq4.bytes_per_vector(), 8);
        assert!(sq4.stats().memory_bytes < sq8.stats().memory_bytes);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (idx, queries, _) = setup(SqBits::B8, true);
        let filter = |id: usize| id < 500;
        let params = SearchParams::default().with_nprobe(16);
        for q in queries.iter().take(5) {
            let hits = idx.search_filtered(q, 5, &params, &filter).unwrap();
            assert!(hits.iter().all(|n| n.id < 500));
        }
    }

    #[test]
    fn removed_rows_leave_their_list_and_never_surface() {
        let (mut idx, queries, _) = setup(SqBits::B8, true);
        for id in (0..2000).step_by(4) {
            assert!(MutableIndex::remove(&mut idx, id).unwrap());
        }
        assert!(!MutableIndex::remove(&mut idx, 0).unwrap(), "idempotent");
        assert_eq!(idx.live(), 2000 - 500);
        let ids: usize = idx.lists.iter().map(Vec::len).sum();
        assert_eq!(ids, idx.live(), "removed rows leave the lists");
        let cl = idx.sq.code_len();
        for (rows, codes) in idx.lists.iter().zip(&idx.codes) {
            assert_eq!(codes.len(), rows.len() * cl, "codes track their list");
        }
        let params = SearchParams::default().with_nprobe(16);
        for q in queries.iter() {
            let hits = idx.search(q, 10, &params).unwrap();
            assert!(hits.iter().all(|n| n.id % 4 != 0), "tombstone surfaced");
        }
    }

    #[test]
    fn mutation_requires_refine_vectors() {
        let (mut idx, _, _) = setup(SqBits::B8, false);
        assert!(idx.as_mutable().is_none());
        assert!(MutableIndex::insert(&mut idx, &[0.0; 16]).is_err());
        let (mut idx, _, _) = setup(SqBits::B8, true);
        assert!(idx.as_mutable().is_some());
    }

    #[test]
    fn drifted_list_recluster_moves_centroid_and_codes_follow() {
        let mut rng = Rng::seed_from_u64(5);
        let data = dataset::gaussian(200, 8, &mut rng);
        let mut idx = IvfSqIndex::build(
            data,
            Metric::Euclidean,
            &IvfConfig::new(4),
            SqBits::B8,
            true,
        )
        .unwrap();
        let far = vec![50.0f32; 8];
        let before = idx
            .coarse
            .centroids()
            .get(idx.coarse.assign(&far).0)
            .to_vec();
        for i in 0..120 {
            let v: Vec<f32> = (0..8).map(|j| 50.0 + ((i + j) % 7) as f32 * 0.1).collect();
            MutableIndex::insert(&mut idx, &v).unwrap();
        }
        assert!(idx.reclusters() > 0, "drift never fired");
        let after = idx
            .coarse
            .centroids()
            .get(idx.coarse.assign(&far).0)
            .to_vec();
        let d =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        assert!(
            d(&far, &after) < d(&far, &before),
            "recluster should pull a centroid toward the appended mass"
        );
        // Lists, code blocks, and assignments all stay consistent.
        let cl = idx.sq.code_len();
        let mut seen = 0;
        for c in 0..idx.lists.len() {
            assert_eq!(idx.codes[c].len(), idx.lists[c].len() * cl);
            for &row in &idx.lists[c] {
                assert_eq!(idx.assigns[row as usize], c as u32);
                seen += 1;
            }
        }
        assert_eq!(seen, idx.live());
        // Moved rows keep searchable codes: a query at the appended mass
        // must surface appended rows.
        let hits = idx
            .search(&far, 10, &SearchParams::default().with_nprobe(4))
            .unwrap();
        assert!(hits.iter().all(|n| n.id >= 200), "appended rows should win");
    }

    #[test]
    fn edge_cases() {
        let (idx, queries, _) = setup(SqBits::B8, true);
        assert!(idx
            .search(queries.get(0), 0, &SearchParams::default())
            .unwrap()
            .is_empty());
        assert!(idx.search(&[0.0; 3], 5, &SearchParams::default()).is_err());
    }
}
