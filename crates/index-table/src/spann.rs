//! SPANN-lite: a disk-resident cluster index (Chen et al.; §2.2(2)).
//!
//! Centroids stay in memory; posting lists live on disk in page-aligned
//! runs read through the accounting page cache. Two SPANN ideas are
//! reproduced: (1) *balanced k-means bucketing* so each posting list is a
//! small bounded number of pages, and (2) *closure assignment* — a vector
//! near several cluster boundaries is replicated into every cluster whose
//! centroid is within `(1 + ε)` of its nearest, trading disk space for
//! fewer I/Os at a given recall.
//!
//! The disk pipeline (DESIGN.md §12) applies here too: once the probe set
//! is ranked, *every* posting page the query will touch is known, so the
//! scan keeps a sliding readahead window of page reads queued on the
//! async prefetch pool — posting I/O overlaps with the scoring of earlier
//! pages. (A bounded window rather than the whole probe set: flooding the
//! pool would race the prefetcher against the scan for the same cache
//! space and evict pages before they are consumed.) Page-resident vectors
//! are gathered into context scratch and scored through one
//! `distance_batch` kernel call per page instead of per-float loops.
//! Results are bit-identical with prefetch on or off.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::kernel;
use vdb_core::metric::Metric;
use vdb_core::parallel::{clamp_threads, parallel_map_chunks, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;
use vdb_quant::{KMeans, KMeansConfig};
use vdb_storage::{prefetch, Page, PageCache, PageId, PagedFile, PAGE_SIZE};

const MAGIC: u32 = 0x5350_414E; // "SPAN"

/// Default prefetch setting: on, unless `VDB_DISK_PREFETCH=0`.
fn prefetch_default() -> bool {
    !matches!(std::env::var("VDB_DISK_PREFETCH").as_deref(), Ok("0"))
}

/// Readahead window: pages kept in flight ahead of the scan position.
/// Twice the prefetch pool's default worker count — enough to keep every
/// worker busy, small enough that prefetched pages cannot be evicted
/// before the scan reaches them.
const READAHEAD_WINDOW: usize = 8;

/// Per-query scratch in the [`SearchContext`] extension slot: the
/// flattened `(page, records)` sequence of the probed posting lists.
#[derive(Debug, Default)]
struct SpannScratch {
    pages: Vec<(PageId, u32)>,
}

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct SpannConfig {
    /// Number of posting lists.
    pub nlist: usize,
    /// Closure assignment threshold ε: a vector joins every cluster with
    /// `dist ≤ (1 + ε) · dist_nearest`. `0.0` disables replication.
    pub closure_epsilon: f32,
    /// k-means iterations.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Page-cache budget (pages) for searches.
    pub cache_pages: usize,
    /// Queue probed posting pages on the async prefetch pool.
    pub prefetch: bool,
}

impl SpannConfig {
    /// Defaults for `nlist` posting lists.
    pub fn new(nlist: usize) -> Self {
        SpannConfig {
            nlist,
            closure_epsilon: 0.1,
            train_iters: 15,
            seed: 0x5AA5,
            cache_pages: 64,
            prefetch: prefetch_default(),
        }
    }
}

/// Disk-resident SPANN-style index.
pub struct SpannIndex {
    dim: usize,
    n: usize,
    metric: Metric,
    centroids: Vectors,
    /// Per-list (first data page, record count).
    postings: Vec<(u64, u32)>,
    cache: Arc<PageCache>,
    records_per_page: usize,
    /// Total records including closure replicas.
    replicated: usize,
    prefetch: AtomicBool,
}

impl SpannIndex {
    /// Build the index into the file at `path` (serial, deterministic).
    pub fn build<P: AsRef<Path>>(
        path: P,
        vectors: &Vectors,
        metric: Metric,
        cfg: &SpannConfig,
    ) -> Result<Self> {
        SpannIndex::build_with(path, vectors, metric, cfg, &BuildOptions::serial())
    }

    /// [`SpannIndex::build`] with explicit [`BuildOptions`]: k-means
    /// training and closure assignment fan out over row chunks (closure
    /// membership is a pure per-row test; per-chunk partial lists merge in
    /// chunk order, so the on-disk layout is bit-identical for a fixed
    /// quantizer). Page serialization stays serial.
    pub fn build_with<P: AsRef<Path>>(
        path: P,
        vectors: &Vectors,
        metric: Metric,
        cfg: &SpannConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        if cfg.nlist == 0 {
            return Err(Error::InvalidParameter("nlist must be positive".into()));
        }
        if cfg.closure_epsilon < 0.0 {
            return Err(Error::InvalidParameter(
                "closure epsilon must be >= 0".into(),
            ));
        }
        let dim = vectors.dim();
        let record_bytes = 4 + dim * 4;
        if record_bytes > PAGE_SIZE {
            return Err(Error::Unsupported(format!(
                "SPANN record ({record_bytes} B) exceeds one page; dim must be <= {}",
                (PAGE_SIZE - 4) / 4
            )));
        }
        let km = KMeans::train_with(
            vectors,
            &KMeansConfig {
                k: cfg.nlist,
                max_iters: cfg.train_iters,
                tolerance: 1e-4,
                seed: cfg.seed,
            },
            opts,
        )?;
        let nlist = km.k();

        // Closure assignment: pure per-row membership test, fanned out
        // over chunks; partial lists merge in chunk order so every list
        // keeps ascending row order.
        let threads = clamp_threads(opts.effective_threads(), vectors.len() / 64);
        let parts = parallel_map_chunks(vectors.len(), threads, |_, range| {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
            let mut replicated = 0usize;
            for row in range {
                let v = vectors.get(row);
                let (_, dmin) = km.assign(v);
                // Compare in squared space: (1+eps)^2 scaling with a small
                // relative slack so the nearest centroid always qualifies.
                let scale = (1.0 + cfg.closure_epsilon) * (1.0 + cfg.closure_epsilon);
                let bound_sq = dmin * scale * (1.0 + 1e-6) + 1e-12;
                for (c, cent) in km.centroids().iter().enumerate() {
                    if kernel::l2_sq(v, cent) <= bound_sq {
                        lists[c].push(row as u32);
                        replicated += 1;
                    }
                }
            }
            (lists, replicated)
        });
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        let mut replicated = 0usize;
        for (part, part_replicated) in parts {
            replicated += part_replicated;
            for (list, p) in lists.iter_mut().zip(part) {
                list.extend(p);
            }
        }

        // Serialize: header page, centroid pages, meta pages, data pages.
        let file = Arc::new(PagedFile::create(path)?);
        let records_per_page = PAGE_SIZE / record_bytes;

        let centroid_bytes = nlist * dim * 4;
        let centroid_pages = centroid_bytes.div_ceil(PAGE_SIZE).max(1) as u64;
        let meta_bytes = nlist * 12;
        let meta_pages = meta_bytes.div_ceil(PAGE_SIZE).max(1) as u64;
        let data_pages: u64 = lists
            .iter()
            .map(|l| (l.len() as u64).div_ceil(records_per_page as u64))
            .sum();
        file.allocate(1 + centroid_pages + meta_pages + data_pages.max(1))?;

        // Header.
        let mut header = Page::zeroed();
        header.write_u32(0, MAGIC);
        header.write_u32(4, dim as u32);
        header.write_u32(8, vectors.len() as u32);
        header.write_u32(12, nlist as u32);
        file.write_page(vdb_storage::PageId(0), &header)?;

        // Centroids.
        write_f32_run(&file, 1, km.centroids().as_flat())?;

        // Data pages + meta.
        let mut postings = Vec::with_capacity(nlist);
        let mut next_page = 1 + centroid_pages + meta_pages;
        for list in &lists {
            postings.push((next_page, list.len() as u32));
            let mut page = Page::zeroed();
            let mut slot = 0usize;
            let mut pid = next_page;
            for &row in list {
                let base = slot * record_bytes;
                page.write_u32(base, row);
                let v = vectors.get(row as usize);
                for (j, &x) in v.iter().enumerate() {
                    page.write_f32(base + 4 + j * 4, x);
                }
                slot += 1;
                if slot == records_per_page {
                    file.write_page(vdb_storage::PageId(pid), &page)?;
                    page = Page::zeroed();
                    slot = 0;
                    pid += 1;
                }
            }
            if slot > 0 {
                file.write_page(vdb_storage::PageId(pid), &page)?;
                pid += 1;
            }
            next_page = pid;
        }

        // Meta run: (start_page u64, count u32) per list.
        let mut meta_buf = Vec::with_capacity(meta_bytes);
        for &(start, count) in &postings {
            meta_buf.extend_from_slice(&start.to_le_bytes());
            meta_buf.extend_from_slice(&count.to_le_bytes());
        }
        write_byte_run(&file, 1 + centroid_pages, &meta_buf)?;
        file.sync()?;

        Ok(SpannIndex {
            dim,
            n: vectors.len(),
            metric,
            centroids: km.centroids().clone(),
            postings,
            cache: Arc::new(PageCache::new(file, cfg.cache_pages)),
            records_per_page,
            replicated,
            prefetch: AtomicBool::new(cfg.prefetch),
        })
    }

    /// Reopen an index previously built at `path`.
    pub fn open<P: AsRef<Path>>(path: P, metric: Metric, cache_pages: usize) -> Result<Self> {
        let file = Arc::new(PagedFile::open(path)?);
        let header = file.read_page(vdb_storage::PageId(0))?;
        if header.read_u32(0) != MAGIC {
            return Err(Error::Corrupt("bad SPANN magic".into()));
        }
        let dim = header.read_u32(4) as usize;
        let n = header.read_u32(8) as usize;
        let nlist = header.read_u32(12) as usize;
        if dim == 0 || nlist == 0 {
            return Err(Error::Corrupt("bad SPANN header".into()));
        }
        metric.validate(dim)?;
        let centroid_pages = (nlist * dim * 4).div_ceil(PAGE_SIZE).max(1) as u64;
        let meta_pages = (nlist * 12).div_ceil(PAGE_SIZE).max(1) as u64;
        let cents = read_f32_run(&file, 1, nlist * dim)?;
        let centroids = Vectors::from_flat(dim, cents)?;
        let meta_buf = read_byte_run(&file, 1 + centroid_pages, nlist * 12)?;
        let mut postings = Vec::with_capacity(nlist);
        let mut replicated = 0usize;
        for i in 0..nlist {
            let b = &meta_buf[i * 12..(i + 1) * 12];
            let start = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
            replicated += count as usize;
            postings.push((start, count));
        }
        let _ = meta_pages;
        let record_bytes = 4 + dim * 4;
        Ok(SpannIndex {
            dim,
            n,
            metric,
            centroids,
            postings,
            cache: Arc::new(PageCache::new(file, cache_pages)),
            records_per_page: PAGE_SIZE / record_bytes,
            replicated,
            prefetch: AtomicBool::new(prefetch_default()),
        })
    }

    /// The page cache (I/O accounting for experiment F7).
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Toggle asynchronous posting-page prefetch (results are identical
    /// either way; only I/O timing changes).
    pub fn set_prefetch(&self, enabled: bool) {
        self.prefetch.store(enabled, Ordering::Relaxed);
    }

    /// Replication factor caused by closure assignment.
    pub fn replication_factor(&self) -> f64 {
        self.replicated as f64 / self.n as f64
    }

    fn scan(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Result<Vec<Neighbor>> {
        // Rank centroids in memory: one batched kernel sweep over the
        // centroid matrix (identical results to per-row scoring), ordered
        // with an id tie-break so probe order is deterministic.
        ctx.begin(self.n);
        let nlist = self.centroids.len();
        ctx.dists.resize(nlist, 0.0);
        kernel::l2_sq_batch(
            query,
            self.centroids.as_flat(),
            self.dim,
            &mut ctx.dists[..nlist],
        );
        ctx.order.clear();
        ctx.order
            .extend(ctx.dists.iter().enumerate().map(|(c, &d)| (d, c as u32)));
        ctx.order
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let probes = params.nprobe.max(1).min(ctx.order.len());
        let record_bytes = 4 + self.dim * 4;
        ctx.pool.reset(k);
        let prefetch_on = self.prefetch.load(Ordering::Relaxed);

        // The probe set fixes every page this query will read. Flatten
        // that sequence once; the scan below keeps a readahead window of
        // it in flight on the prefetch pool, so posting I/O overlaps with
        // the scoring of earlier pages. (Prefetch only warms the cache;
        // demand reads wait on in-flight fetches, so results are
        // identical with prefetch disabled.)
        let mut probe_pages = std::mem::take(&mut ctx.ext::<SpannScratch>().pages);
        probe_pages.clear();
        for &(_, c) in ctx.order.iter().take(probes) {
            let (start, count) = self.postings[c as usize];
            let mut remaining = count as usize;
            let mut p = 0u64;
            while remaining > 0 {
                let in_page = remaining.min(self.records_per_page);
                probe_pages.push((PageId(start + p), in_page as u32));
                remaining -= in_page;
                p += 1;
            }
        }

        let SearchContext {
            visited: seen,
            pool: top,
            ids,
            dists,
            rows,
            ..
        } = ctx;
        for i in 0..probe_pages.len() {
            if prefetch_on {
                if i == 0 {
                    for &(pid, _) in probe_pages.iter().take(READAHEAD_WINDOW).skip(1) {
                        prefetch::pool().request(&self.cache, pid);
                    }
                } else if let Some(&(pid, _)) = probe_pages.get(i + READAHEAD_WINDOW - 1) {
                    // Slide the window: one new page enters as one is read.
                    prefetch::pool().request(&self.cache, pid);
                }
            }
            let (pid, in_page) = probe_pages[i];
            let page = self.cache.read(pid)?;
            // Gather the page's surviving records (dedup closure replicas,
            // apply the filter) into contiguous scratch, then score the
            // whole page in one kernel batch.
            ids.clear();
            rows.clear();
            for slot in 0..in_page as usize {
                let base = slot * record_bytes;
                let row = page.read_u32(base) as usize;
                if !seen.visit(row) {
                    continue; // closure replica already scored
                }
                if let Some(f) = filter {
                    if !f.accept(row) {
                        continue;
                    }
                }
                ids.push(row as u32);
                rows.extend(
                    page.bytes()[base + 4..base + 4 + self.dim * 4]
                        .chunks_exact(4)
                        .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes"))),
                );
            }
            dists.resize(ids.len(), 0.0);
            self.metric
                .distance_batch(query, rows, self.dim, &mut dists[..ids.len()]);
            for (&row, &d) in ids.iter().zip(dists.iter()) {
                top.push(Neighbor::new(row as usize, d));
            }
        }
        let out = top.drain_sorted();
        ctx.ext::<SpannScratch>().pages = probe_pages;
        Ok(out)
    }
}

impl VectorIndex for SpannIndex {
    fn name(&self) -> &'static str {
        "spann"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, None)
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, Some(filter))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            // Only centroids and posting metadata are memory-resident.
            memory_bytes: self.centroids.memory_bytes() + self.postings.len() * 12,
            structure_entries: self.replicated,
            detail: format!(
                "nlist={} replication={:.2}",
                self.postings.len(),
                self.replication_factor()
            ),
        }
    }
}

impl std::fmt::Debug for SpannIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpannIndex(n={}, nlist={})", self.n, self.postings.len())
    }
}

// --- small run (de)serializers over consecutive pages -----------------------

fn write_byte_run(file: &PagedFile, start_page: u64, bytes: &[u8]) -> Result<()> {
    for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
        let mut page = Page::zeroed();
        page.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
        file.write_page(vdb_storage::PageId(start_page + i as u64), &page)?;
    }
    Ok(())
}

fn read_byte_run(file: &PagedFile, start_page: u64, len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    let pages = len.div_ceil(PAGE_SIZE);
    for i in 0..pages {
        let page = file.read_page(vdb_storage::PageId(start_page + i as u64))?;
        let take = (len - out.len()).min(PAGE_SIZE);
        out.extend_from_slice(&page.bytes()[..take]);
    }
    Ok(out)
}

fn write_f32_run(file: &PagedFile, start_page: u64, data: &[f32]) -> Result<()> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for &x in data {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    write_byte_run(file, start_page, &bytes)
}

fn read_f32_run(file: &PagedFile, start_page: u64, count: usize) -> Result<Vec<f32>> {
    let bytes = read_byte_run(file, start_page, count * 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;
    use vdb_storage::TempDir;

    fn setup(eps: f32, cache_pages: usize) -> (TempDir, SpannIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(20);
        let data = dataset::clustered(2000, 16, 16, 0.4, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let dir = TempDir::new("spann").unwrap();
        let mut cfg = SpannConfig::new(16);
        cfg.closure_epsilon = eps;
        cfg.cache_pages = cache_pages;
        let idx = SpannIndex::build(dir.file("s.idx"), &data, Metric::Euclidean, &cfg).unwrap();
        (dir, idx, queries, gt)
    }

    fn recall_at(idx: &SpannIndex, queries: &Vectors, gt: &GroundTruth, nprobe: usize) -> f64 {
        let params = SearchParams::default().with_nprobe(nprobe);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn full_probe_is_exact() {
        let (_d, idx, queries, gt) = setup(0.0, 64);
        let r = recall_at(&idx, &queries, &gt, 16);
        assert!((r - 1.0).abs() < 1e-12, "recall {r}");
    }

    #[test]
    fn closure_assignment_raises_low_probe_recall() {
        // Overlapping clusters so that boundary points actually exist
        // (with well-separated clusters closure replication is a no-op).
        let mut rng = Rng::seed_from_u64(22);
        let data = dataset::clustered(2000, 16, 16, 3.0, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let dir = TempDir::new("spann-closure").unwrap();
        let build = |eps: f32, name: &str| {
            let mut cfg = SpannConfig::new(16);
            cfg.closure_epsilon = eps;
            SpannIndex::build(dir.file(name), &data, Metric::Euclidean, &cfg).unwrap()
        };
        let plain = build(0.0, "plain.idx");
        let closed = build(0.5, "closed.idx");
        let rp = recall_at(&plain, &queries, &gt, 2);
        let rc = recall_at(&closed, &queries, &gt, 2);
        assert!(
            closed.replication_factor() > 1.05,
            "replication {} too low",
            closed.replication_factor()
        );
        assert!(rc >= rp, "closure {rc} vs plain {rp}");
    }

    #[test]
    fn io_counted_per_query() {
        let (_d, idx, queries, _) = setup(0.1, 0); // no cache: every read counted
        idx.cache().reset_stats();
        let params = SearchParams::default().with_nprobe(2);
        idx.search(queries.get(0), 10, &params).unwrap();
        let s = idx.cache().stats();
        assert!(s.misses > 0, "disk reads must be visible");
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn bigger_cache_fewer_misses() {
        let (_d, cold, queries, _) = setup(0.1, 2);
        let (_d2, warm, _, _) = setup(0.1, 4096);
        let params = SearchParams::default().with_nprobe(8);
        for q in queries.iter() {
            cold.search(q, 10, &params).unwrap();
            warm.search(q, 10, &params).unwrap();
        }
        cold.cache().reset_stats();
        warm.cache().reset_stats();
        for q in queries.iter() {
            cold.search(q, 10, &params).unwrap();
            warm.search(q, 10, &params).unwrap();
        }
        assert!(warm.cache().stats().hit_ratio() > cold.cache().stats().hit_ratio());
    }

    #[test]
    fn prefetch_toggle_is_bit_identical() {
        let (_d, idx, queries, _) = setup(0.1, 32);
        let params = SearchParams::default().with_nprobe(8);
        for q in queries.iter() {
            idx.set_prefetch(false);
            let off = idx.search(q, 10, &params).unwrap();
            idx.set_prefetch(true);
            let on = idx.search(q, 10, &params).unwrap();
            assert_eq!(off, on);
        }
    }

    #[test]
    fn reopen_gives_same_results() {
        let mut rng = Rng::seed_from_u64(21);
        let data = dataset::clustered(500, 8, 8, 0.3, &mut rng).vectors;
        let dir = TempDir::new("spann-reopen").unwrap();
        let path = dir.file("r.idx");
        let cfg = SpannConfig::new(8);
        let built = SpannIndex::build(&path, &data, Metric::Euclidean, &cfg).unwrap();
        let q = data.get(3);
        let params = SearchParams::default().with_nprobe(8);
        let before = built.search(q, 5, &params).unwrap();
        drop(built);
        let reopened = SpannIndex::open(&path, Metric::Euclidean, 16).unwrap();
        assert_eq!(reopened.len(), 500);
        let after = reopened.search(q, 5, &params).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn filtered_scan_respects_predicate() {
        let (_d, idx, queries, _) = setup(0.1, 64);
        let filter = |id: usize| id < 100;
        let params = SearchParams::default().with_nprobe(16);
        let hits = idx
            .search_filtered(queries.get(0), 5, &params, &filter)
            .unwrap();
        assert!(hits.iter().all(|n| n.id < 100));
    }

    #[test]
    fn rejects_invalid_builds() {
        let dir = TempDir::new("spann-bad").unwrap();
        let data = dataset::gaussian(10, 4, &mut Rng::seed_from_u64(1));
        assert!(SpannIndex::build(
            dir.file("a"),
            &Vectors::new(4),
            Metric::Euclidean,
            &SpannConfig::new(4)
        )
        .is_err());
        let mut cfg = SpannConfig::new(0);
        assert!(SpannIndex::build(dir.file("b"), &data, Metric::Euclidean, &cfg).is_err());
        cfg = SpannConfig::new(4);
        cfg.closure_epsilon = -1.0;
        assert!(SpannIndex::build(dir.file("c"), &data, Metric::Euclidean, &cfg).is_err());
    }
}
