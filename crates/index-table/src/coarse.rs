//! Coarse-quantizer training and row-assignment routines shared by the
//! IVF family and SPANN.
//!
//! Every IVF-style build does the same three steps — train a k-means
//! coarse quantizer, assign each row to its nearest centroid, scatter
//! rows into per-centroid posting lists — so they live here once instead
//! of being copy-pasted into each index. Assignment is a pure per-row
//! function and the scatter walks rows in ascending order, so both are
//! bit-identical for any thread count.

use crate::ivf::check_ivf_params;
use vdb_core::error::{Error, Result};
use vdb_core::parallel::{clamp_threads, parallel_map_chunks, BuildOptions};
use vdb_core::vector::Vectors;
use vdb_quant::{KMeans, KMeansConfig};

/// Train a k-means coarse quantizer with `nlist` centroids, with
/// explicit [`BuildOptions`] (parallel Lloyd iterations via
/// [`KMeans::train_with`]).
pub(crate) fn train_coarse_with(
    vectors: &Vectors,
    nlist: usize,
    train_iters: usize,
    seed: u64,
    opts: &BuildOptions,
) -> Result<KMeans> {
    check_ivf_params(nlist)?;
    if vectors.is_empty() {
        return Err(Error::EmptyCollection);
    }
    KMeans::train_with(
        vectors,
        &KMeansConfig {
            k: nlist,
            max_iters: train_iters,
            tolerance: 1e-4,
            seed,
        },
        opts,
    )
}

/// Nearest-centroid id for every row, fanned out over threads. Pure per
/// row, returned in row order — bit-identical for any thread count.
pub(crate) fn assign_rows(coarse: &KMeans, vectors: &Vectors, opts: &BuildOptions) -> Vec<usize> {
    let threads = clamp_threads(opts.effective_threads(), vectors.len() / 64);
    let chunks = parallel_map_chunks(vectors.len(), threads, |_, range| {
        range
            .map(|row| coarse.assign(vectors.get(row)).0)
            .collect::<Vec<_>>()
    });
    chunks.concat()
}

/// Scatter per-row centroid assignments into `nlist` posting lists. Rows
/// are walked in ascending order, matching the historical serial insert
/// loops.
pub(crate) fn scatter_lists(assigns: &[usize], nlist: usize) -> Vec<Vec<u32>> {
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
    for (row, &c) in assigns.iter().enumerate() {
        lists[c].push(row as u32);
    }
    lists
}
