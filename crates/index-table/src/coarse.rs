//! Coarse-quantizer training shared by the IVF family and SPANN.

use crate::ivf::check_ivf_params;
use vdb_core::error::{Error, Result};
use vdb_core::vector::Vectors;
use vdb_quant::{KMeans, KMeansConfig};

/// Train a k-means coarse quantizer with `nlist` centroids.
pub(crate) fn train_coarse(
    vectors: &Vectors,
    nlist: usize,
    train_iters: usize,
    seed: u64,
) -> Result<KMeans> {
    check_ivf_params(nlist)?;
    if vectors.is_empty() {
        return Err(Error::EmptyCollection);
    }
    KMeans::train(
        vectors,
        &KMeansConfig {
            k: nlist,
            max_iters: train_iters,
            tolerance: 1e-4,
            seed,
        },
    )
}
