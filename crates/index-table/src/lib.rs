//! # vdb-index-table
//!
//! Table-based vector indexes (§2.2 of *"Vector Database Management
//! Techniques and Systems"*, SIGMOD 2024): the collection is partitioned
//! into buckets retrievable by key.
//!
//! - [`lsh`] — locality-sensitive hashing (random hyperplane and p-stable
//!   families, L tables × K concatenated hashes),
//! - [`ivf`] — IVF-Flat (k-means bucketing, exact in-list scan, native
//!   block-first filtered search),
//! - [`ivf_sq`] — IVF over scalar-quantized codes,
//! - [`ivf_pq`] — IVFADC: IVF over product-quantized residuals with ADC
//!   tables and optional exact re-ranking,
//! - [`spann`] — disk-resident SPANN-lite with closure assignment and
//!   page-level I/O accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-slice index loops in the page (de)serializers.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

mod coarse;
mod drift;
pub mod ivf;
pub mod ivf_pq;
pub mod ivf_sq;
pub mod lsh;
pub mod spann;

pub use ivf::{IvfConfig, IvfFlatIndex};
pub use ivf_pq::{IvfPqConfig, IvfPqIndex};
pub use ivf_sq::IvfSqIndex;
pub use lsh::{HashFamily, LshConfig, LshIndex};
pub use spann::{SpannConfig, SpannIndex};
