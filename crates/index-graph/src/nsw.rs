//! Navigable small-world graph (Malkov et al. 2014; §2.2(3)).
//!
//! Nodes are inserted one at a time; each new node is connected
//! bidirectionally to its `m` nearest neighbors *among the nodes already in
//! the graph*, found by beam search. Early nodes acquire long-range links
//! as the graph densifies around them, which is what makes the flat graph
//! navigable.

use crate::graph::{beam_search, beam_search_filtered, AdjacencyList, SharedAdjacency};
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{
    check_query, DynamicIndex, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use vdb_core::metric::Metric;
use vdb_core::parallel::{parallel_queue, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct NswConfig {
    /// Bidirectional connections made per insertion.
    pub m: usize,
    /// Beam width used for neighbor search during construction.
    pub ef_construction: usize,
}

impl Default for NswConfig {
    fn default() -> Self {
        NswConfig {
            m: 12,
            ef_construction: 64,
        }
    }
}

/// The NSW index. Fully dynamic: construction *is* repeated insertion.
pub struct NswIndex {
    vectors: Vectors,
    metric: Metric,
    adj: AdjacencyList,
    cfg: NswConfig,
    /// Entry point for traversal: node 0 until that node is tombstoned,
    /// then the lowest-id live node.
    entry: usize,
    /// Tombstones: deleted nodes keep their out-edges for routing.
    deleted: Vec<bool>,
    removed: usize,
}

/// Live-rows-only filter for tombstone traversal (see `hnsw::LiveFilter`).
struct LiveFilter<'a> {
    deleted: &'a [bool],
    inner: Option<&'a dyn RowFilter>,
}

impl RowFilter for LiveFilter<'_> {
    fn accept(&self, id: usize) -> bool {
        !self.deleted[id] && self.inner.is_none_or(|f| f.accept(id))
    }
    fn selectivity_hint(&self) -> Option<f64> {
        self.inner.and_then(|f| f.selectivity_hint())
    }
}

impl NswIndex {
    /// Create an empty index ready for insertion.
    pub fn new(dim: usize, metric: Metric, cfg: NswConfig) -> Result<Self> {
        if cfg.m == 0 {
            return Err(Error::InvalidParameter("m must be positive".into()));
        }
        metric.validate(dim)?;
        Ok(NswIndex {
            vectors: Vectors::new(dim),
            metric,
            adj: AdjacencyList::default(),
            cfg,
            entry: 0,
            deleted: Vec::new(),
            removed: 0,
        })
    }

    /// Build by inserting every vector in order.
    pub fn build(vectors: Vectors, metric: Metric, cfg: NswConfig) -> Result<Self> {
        let mut idx = NswIndex::new(vectors.dim(), metric, cfg)?;
        for row in vectors.iter() {
            DynamicIndex::insert(&mut idx, row)?;
        }
        Ok(idx)
    }

    /// Build with explicit [`BuildOptions`]: the serial path is exactly
    /// [`NswIndex::build`]; the parallel path runs the same
    /// search-then-connect insert concurrently over a per-node-locked
    /// graph (node 0 stays the fixed entry point). NSW has no build-time
    /// randomness, so only insert interleaving distinguishes the two.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: NswConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if opts.is_serial() || vectors.len() <= 1 {
            return NswIndex::build(vectors, metric, cfg);
        }
        let threads = opts.effective_threads();
        let mut idx = NswIndex::new(vectors.dim(), metric, cfg)?;
        let n = vectors.len();
        let shared = SharedAdjacency::new(n);
        {
            let metric = &idx.metric;
            let cfg = &idx.cfg;
            let vecs = &vectors;
            let shared = &shared;
            parallel_queue(n, threads, 32, |_, range| {
                context::with_local(|ctx| {
                    for row in range {
                        if row == 0 {
                            continue;
                        }
                        let found = beam_search(
                            shared,
                            vecs,
                            metric,
                            vecs.get(row),
                            &[0],
                            cfg.m,
                            cfg.ef_construction,
                            ctx,
                            None,
                        );
                        for nb in found {
                            if nb.id != row {
                                shared.add_edge(row, nb.id as u32);
                                shared.add_edge(nb.id, row as u32);
                            }
                        }
                    }
                });
            });
        }
        idx.adj = shared.into_adjacency();
        idx.deleted = vec![false; n];
        idx.vectors = vectors;
        Ok(idx)
    }

    /// The underlying adjacency (diagnostics).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// Number of tombstoned nodes.
    pub fn removed(&self) -> usize {
        self.removed
    }
}

impl VectorIndex for NswIndex {
    fn name(&self) -> &'static str {
        "nsw"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() || self.live() == 0 {
            return Ok(Vec::new());
        }
        if self.removed > 0 {
            // Tombstone traversal: deleted nodes route, never surface.
            let live = LiveFilter {
                deleted: &self.deleted,
                inner: None,
            };
            return Ok(beam_search_filtered(
                &self.adj,
                &self.vectors,
                &self.metric,
                query,
                &[self.entry],
                k,
                params.beam_width,
                ctx,
                &live,
                params.beam_width * 16,
                None,
            ));
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.entry], // lowest-id live node (node 0 until tombstoned)
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes(),
            structure_entries: self.adj.edge_count(),
            detail: format!(
                "m={} mean_degree={:.1} removed={}",
                self.cfg.m,
                self.adj.mean_degree(),
                self.removed
            ),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        Some(self)
    }
}

impl DynamicIndex for NswIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let row = self.vectors.push(vector)?;
        self.adj.push_node();
        self.deleted.push(false);
        if row == 0 {
            return Ok(0);
        }
        if self.deleted[self.entry] {
            self.entry = row; // re-anchor on the fresh live node
        }
        let mut found = context::with_local(|ctx| {
            beam_search(
                &self.adj,
                &self.vectors,
                &self.metric,
                self.vectors.get(row),
                &[self.entry],
                self.cfg.m,
                self.cfg.ef_construction,
                ctx,
                None,
            )
        });
        if self.removed > 0 {
            found.retain(|n| !self.deleted[n.id]);
        }
        for n in found {
            if n.id != row {
                self.adj.add_edge(row, n.id as u32);
                self.adj.add_edge(n.id, row as u32);
            }
        }
        Ok(row)
    }
}

impl MutableIndex for NswIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        DynamicIndex::insert(self, vector)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.vectors.len() {
            return Err(Error::NotFound(format!("nsw row {id} out of range")));
        }
        if self.deleted[id] {
            return Ok(false);
        }
        self.deleted[id] = true;
        self.removed += 1;
        // Patch in-neighbors by contracting the tombstone: each live
        // neighbor drops its edge to `id` and inherits `id`'s remaining
        // live neighbors, keeping the live subgraph connected. The
        // tombstone keeps its out-edges so stray in-edges still route.
        let nbrs: Vec<u32> = self.adj.neighbors(id).to_vec();
        let live_nbrs: Vec<u32> = nbrs
            .iter()
            .copied()
            .filter(|&v| !self.deleted[v as usize])
            .collect();
        for &u in &nbrs {
            let u = u as usize;
            if self.deleted[u] {
                continue;
            }
            let list: Vec<u32> = self.adj.neighbors(u).to_vec();
            if !list.contains(&(id as u32)) {
                continue;
            }
            let mut patched: Vec<u32> = list.into_iter().filter(|&v| v != id as u32).collect();
            for &w in &live_nbrs {
                if w as usize != u && !patched.contains(&w) {
                    patched.push(w);
                }
            }
            self.adj.set_neighbors(u, patched);
        }
        if id == self.entry {
            // Lowest-id live node becomes the new anchor.
            if let Some(e) = (0..self.vectors.len()).find(|&i| !self.deleted[i]) {
                self.entry = e;
            }
        }
        Ok(true)
    }

    fn live(&self) -> usize {
        self.vectors.len() - self.removed
    }
}

impl std::fmt::Debug for NswIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NswIndex(n={}, m={})", self.len(), self.cfg.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;

    #[test]
    fn good_recall_on_clusters() {
        let mut rng = Rng::seed_from_u64(7);
        let data = dataset::clustered(2000, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = NswIndex::build(data, Metric::Euclidean, NswConfig::default()).unwrap();
        let params = SearchParams::default().with_beam_width(96);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn graph_stays_connected() {
        let mut rng = Rng::seed_from_u64(8);
        let data = dataset::gaussian(500, 8, &mut rng);
        let idx = NswIndex::build(data, Metric::Euclidean, NswConfig::default()).unwrap();
        assert_eq!(
            idx.adjacency().reachable_from(0),
            500,
            "insertion keeps connectivity"
        );
    }

    #[test]
    fn incremental_equals_build() {
        let mut rng = Rng::seed_from_u64(9);
        let data = dataset::gaussian(200, 6, &mut rng);
        let built = NswIndex::build(data.clone(), Metric::Euclidean, NswConfig::default()).unwrap();
        let mut incremental = NswIndex::new(6, Metric::Euclidean, NswConfig::default()).unwrap();
        for row in data.iter() {
            DynamicIndex::insert(&mut incremental, row).unwrap();
        }
        // Same construction path => identical graphs.
        for u in 0..200 {
            assert_eq!(
                built.adjacency().neighbors(u),
                incremental.adjacency().neighbors(u)
            );
        }
    }

    #[test]
    fn beam_width_trades_recall() {
        let mut rng = Rng::seed_from_u64(10);
        let data = dataset::clustered(1500, 16, 8, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = NswIndex::build(data, Metric::Euclidean, NswConfig::default()).unwrap();
        let recall_with = |ef: usize| {
            let params = SearchParams::default().with_beam_width(ef);
            let results: Vec<_> = queries
                .iter()
                .map(|q| idx.search(q, 10, &params).unwrap())
                .collect();
            gt.recall_batch(&results)
        };
        let lo = recall_with(10);
        let hi = recall_with(200);
        assert!(hi >= lo, "wider beam cannot hurt: {hi} vs {lo}");
        assert!(hi > 0.9, "wide beam recall {hi}");
    }

    #[test]
    fn removed_nodes_never_surface_including_entry() {
        let mut rng = Rng::seed_from_u64(11);
        let data = dataset::clustered(800, 8, 5, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 10, 0.05, &mut rng);
        let mut idx = NswIndex::build(data, Metric::Euclidean, NswConfig::default()).unwrap();
        // Tombstone the fixed entry (node 0) plus a band of others.
        for id in 0..200 {
            assert!(MutableIndex::remove(&mut idx, id).unwrap());
        }
        assert_ne!(idx.entry, 0, "entry re-anchored off the tombstone");
        assert_eq!(idx.live(), 600);
        let params = SearchParams::default().with_beam_width(96);
        for q in queries.iter() {
            let hits = idx.search(q, 10, &params).unwrap();
            assert_eq!(hits.len(), 10);
            assert!(hits.iter().all(|n| n.id >= 200), "tombstone surfaced");
        }
        // Inserts after removal connect to live nodes only.
        let v = vec![3.0f32; 8];
        let row = MutableIndex::insert(&mut idx, &v).unwrap();
        for &nb in idx.adjacency().neighbors(row) {
            assert!(nb as usize >= 200);
        }
        let hits = idx.search(&v, 1, &params).unwrap();
        assert_eq!(hits[0].id, row);
    }

    #[test]
    fn empty_and_singleton_behave() {
        let idx = NswIndex::new(4, Metric::Euclidean, NswConfig::default()).unwrap();
        assert!(idx
            .search(&[0.0; 4], 3, &SearchParams::default())
            .unwrap()
            .is_empty());
        let mut idx = idx;
        DynamicIndex::insert(&mut idx, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        let hits = idx
            .search(&[1.0, 0.0, 0.0, 0.0], 3, &SearchParams::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dist, 0.0);
    }
}
