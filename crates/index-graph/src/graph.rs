//! Shared graph machinery: adjacency storage, best-first (beam) search,
//! robust pruning, and medoid selection.
//!
//! Every graph index in this crate (§2.2 "graph-based indexes") is an
//! overlay graph searched with the same best-first procedure; they differ
//! in *edge selection*. The filtered variant of the search implements the
//! paper's **visit-first scan** (§2.3(2)): traversal may pass through
//! predicate-failing nodes, but only passing nodes enter the result set.

use vdb_core::context::SearchContext;
use vdb_core::index::RowFilter;
use vdb_core::metric::Metric;
use vdb_core::sync::Mutex;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// A graph whose out-neighbor lists can be read one node at a time.
///
/// Beam search is generic over this so the same traversal runs on a
/// frozen [`AdjacencyList`] (serial builds, queries) and on a
/// [`SharedAdjacency`] whose lists sit behind per-node locks (parallel
/// builds). The callback style lets the locked implementation scope its
/// guard to the read without copying the list.
pub trait NeighborSource: Sync {
    /// Call `f` with the current out-neighbors of `u`.
    fn with_neighbors<R>(&self, u: usize, f: impl FnOnce(&[u32]) -> R) -> R;
}

/// Directed adjacency lists over `u32` node ids.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyList {
    lists: Vec<Vec<u32>>,
}

impl AdjacencyList {
    /// `n` nodes with no edges.
    pub fn new(n: usize) -> Self {
        AdjacencyList {
            lists: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Out-neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.lists[u]
    }

    /// Replace the out-neighbors of `u`.
    pub fn set_neighbors(&mut self, u: usize, neighbors: Vec<u32>) {
        self.lists[u] = neighbors;
    }

    /// Add an edge `u -> v` if absent. Returns whether it was added.
    pub fn add_edge(&mut self, u: usize, v: u32) -> bool {
        if self.lists[u].contains(&v) {
            false
        } else {
            self.lists[u].push(v);
            true
        }
    }

    /// Append a node with no edges, returning its id.
    pub fn push_node(&mut self) -> usize {
        self.lists.push(Vec::new());
        self.lists.len() - 1
    }

    /// Total directed edges.
    pub fn edge_count(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.lists.is_empty() {
            0.0
        } else {
            self.edge_count() as f64 / self.lists.len() as f64
        }
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.capacity() * 4 + 24).sum()
    }

    /// Consume the graph, returning the raw per-node lists.
    pub fn into_lists(self) -> Vec<Vec<u32>> {
        self.lists
    }

    /// Build from raw per-node lists.
    pub fn from_lists(lists: Vec<Vec<u32>>) -> Self {
        AdjacencyList { lists }
    }

    /// Number of nodes reachable from `start` (connectivity diagnostics).
    pub fn reachable_from(&self, start: usize) -> usize {
        let mut seen = vec![false; self.lists.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for &v in &self.lists[u] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
        count
    }
}

impl NeighborSource for AdjacencyList {
    #[inline]
    fn with_neighbors<R>(&self, u: usize, f: impl FnOnce(&[u32]) -> R) -> R {
        f(&self.lists[u])
    }
}

/// Adjacency lists behind one mutex per node, for concurrent graph
/// construction.
///
/// Workers inserting different nodes lock only the lists they touch, so
/// inserts proceed in parallel; beam searches running concurrently take
/// each lock just long enough to scan one list. The deadlock-freedom
/// invariant: **no caller ever holds two node locks at once** — every
/// mutation here locks a single node, and insert loops in the builders
/// update `u -> v` and `v -> u` as two separate lock acquisitions.
#[derive(Debug)]
pub struct SharedAdjacency {
    lists: Vec<Mutex<Vec<u32>>>,
}

impl SharedAdjacency {
    /// `n` nodes with no edges.
    pub fn new(n: usize) -> Self {
        SharedAdjacency {
            lists: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Take ownership of a frozen graph's lists.
    pub fn from_adjacency(adj: AdjacencyList) -> Self {
        SharedAdjacency {
            lists: adj.into_lists().into_iter().map(Mutex::new).collect(),
        }
    }

    /// Freeze into a plain [`AdjacencyList`] (requires exclusive
    /// ownership, i.e. all workers joined).
    pub fn into_adjacency(self) -> AdjacencyList {
        AdjacencyList::from_lists(self.lists.into_iter().map(Mutex::into_inner).collect())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Replace the out-neighbors of `u`.
    pub fn set_neighbors(&self, u: usize, neighbors: Vec<u32>) {
        *self.lists[u].lock() = neighbors;
    }

    /// Add an edge `u -> v` if absent. Returns whether it was added.
    pub fn add_edge(&self, u: usize, v: u32) -> bool {
        let mut list = self.lists[u].lock();
        if list.contains(&v) {
            false
        } else {
            list.push(v);
            true
        }
    }

    /// Lock node `u`'s list and run `f` on it. `f` must not touch any
    /// other node's list (the single-lock invariant above).
    pub fn update<R>(&self, u: usize, f: impl FnOnce(&mut Vec<u32>) -> R) -> R {
        f(&mut self.lists[u].lock())
    }
}

impl NeighborSource for SharedAdjacency {
    #[inline]
    fn with_neighbors<R>(&self, u: usize, f: impl FnOnce(&[u32]) -> R) -> R {
        f(&self.lists[u].lock())
    }
}

/// Statistics returned by a beam search (operator cost accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTrace {
    /// Nodes whose neighbor lists were expanded.
    pub expanded: usize,
    /// Distance computations performed.
    pub distance_evals: usize,
}

/// Best-first beam search over a graph.
///
/// Maintains a candidate frontier and a result pool of width
/// `ef = max(ef, k)`; terminates when the closest frontier node is farther
/// than the worst pooled result. Returns up to `k` neighbors best-first.
///
/// All transient state (visited set, frontier, pools) lives in `ctx` and
/// is epoch-reset here, so a warm context makes the search allocation-free.
/// Generic over [`NeighborSource`] so parallel builders can search a
/// [`SharedAdjacency`] while other workers insert into it.
#[allow(clippy::too_many_arguments)]
pub fn beam_search<A: NeighborSource>(
    adj: &A,
    vectors: &Vectors,
    metric: &Metric,
    query: &[f32],
    entries: &[usize],
    k: usize,
    ef: usize,
    ctx: &mut SearchContext,
    trace: Option<&mut SearchTrace>,
) -> Vec<Neighbor> {
    ctx.begin(vectors.len());
    beam_search_impl(
        adj, vectors, metric, query, entries, k, ef, ctx, None, trace,
    )
}

/// Block-first beam search (§2.3(1)): blocked nodes are masked out of the
/// traversal entirely by pre-visiting them. Cheaper per hop than
/// visit-first, but if blocking disconnects the graph the search strands —
/// the trade-off experiment F3 measures.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_blocked<A: NeighborSource>(
    adj: &A,
    vectors: &Vectors,
    metric: &Metric,
    query: &[f32],
    entries: &[usize],
    k: usize,
    ef: usize,
    ctx: &mut SearchContext,
    filter: &dyn RowFilter,
    trace: Option<&mut SearchTrace>,
) -> Vec<Neighbor> {
    ctx.begin(vectors.len());
    // Entry points stay traversable even when blocked (a blocked entry
    // would otherwise strand the whole search); the filter below keeps
    // them out of the result pool.
    for row in 0..vectors.len() {
        if !filter.accept(row) && !entries.contains(&row) {
            ctx.visited.visit(row);
        }
    }
    beam_search_impl(
        adj,
        vectors,
        metric,
        query,
        entries,
        k,
        ef,
        ctx,
        Some((filter, usize::MAX)),
        trace,
    )
}

/// Visit-first filtered beam search: `filter`-failing nodes still guide the
/// traversal but are excluded from the result pool. To avoid starving the
/// result set under selective predicates, the pool width for *accepted*
/// nodes stays `ef` while traversal is bounded by `expansion_cap` expanded
/// nodes (backtracking control; see §2.6(3)).
#[allow(clippy::too_many_arguments)]
pub fn beam_search_filtered<A: NeighborSource>(
    adj: &A,
    vectors: &Vectors,
    metric: &Metric,
    query: &[f32],
    entries: &[usize],
    k: usize,
    ef: usize,
    ctx: &mut SearchContext,
    filter: &dyn RowFilter,
    expansion_cap: usize,
    trace: Option<&mut SearchTrace>,
) -> Vec<Neighbor> {
    ctx.begin(vectors.len());
    beam_search_impl(
        adj,
        vectors,
        metric,
        query,
        entries,
        k,
        ef,
        ctx,
        Some((filter, expansion_cap)),
        trace,
    )
}

#[allow(clippy::too_many_arguments)]
fn beam_search_impl<A: NeighborSource>(
    adj: &A,
    vectors: &Vectors,
    metric: &Metric,
    query: &[f32],
    entries: &[usize],
    k: usize,
    ef: usize,
    ctx: &mut SearchContext,
    filter: Option<(&dyn RowFilter, usize)>,
    trace: Option<&mut SearchTrace>,
) -> Vec<Neighbor> {
    use std::cmp::Reverse;

    let ef = ef.max(k);
    // `frontier`: min-heap of candidates to expand. Callers reset (or
    // pre-populate, for blocked search) the visited set via `ctx.begin`.
    // `pool`: top-ef accepted results. `bound_pool`: top-ef over *all*
    // visited nodes, used for termination so filtering does not change the
    // traversal frontier shape. All three reuse the context's allocations.
    let SearchContext {
        visited,
        frontier,
        pool,
        bound_pool,
        ids,
        dists,
        ..
    } = ctx;
    pool.reset(ef);
    bound_pool.reset(ef);
    let mut expanded = 0usize;
    let mut evals = 0usize;

    for &e in entries {
        if e >= vectors.len() || !visited.visit(e) {
            continue;
        }
        let d = metric.distance(query, vectors.get(e));
        evals += 1;
        frontier.push(Reverse(Neighbor::new(e, d)));
        bound_pool.push(Neighbor::new(e, d));
        match filter {
            Some((f, _)) if !f.accept(e) => {}
            _ => {
                pool.push(Neighbor::new(e, d));
            }
        }
    }

    let expansion_cap = filter.map(|(_, cap)| cap).unwrap_or(usize::MAX);

    while let Some(Reverse(cand)) = frontier.pop() {
        // Termination/admission bound: unfiltered search prunes against
        // the ef best *visited* nodes; visit-first search must keep
        // expanding until the ef best *accepted* nodes stabilize, because
        // the nearest predicate matches may lie beyond many non-matching
        // nodes (§2.3(2) backtracking). The expansion cap bounds the walk
        // under pathologically selective predicates.
        let bound = if filter.is_some() {
            pool.threshold().max(bound_pool.threshold())
        } else {
            bound_pool.threshold()
        };
        if cand.dist > bound {
            break;
        }
        if expanded >= expansion_cap {
            break;
        }
        expanded += 1;
        // Batched expansion: gather the unvisited neighbors, score them all
        // in one multi-row kernel call, then run the admission loop over
        // the precomputed distances. The old code also computed a distance
        // for every unvisited neighbor (admission only gated heap pushes),
        // and admission order is unchanged, so results are identical.
        ids.clear();
        adj.with_neighbors(cand.id, |neighbors| {
            for &nb in neighbors {
                let nb = nb as usize;
                if visited.visit(nb) {
                    ids.push(nb as u32);
                }
            }
        });
        dists.resize(ids.len(), 0.0);
        metric.distance_gather(query, vectors, ids, dists);
        evals += ids.len();
        for (&nb, &d) in ids.iter().zip(dists.iter()) {
            let nb = nb as usize;
            let admit = if filter.is_some() {
                d <= pool.threshold().max(bound_pool.threshold()) || !pool.is_full()
            } else {
                d <= bound_pool.threshold() || !bound_pool.is_full()
            };
            if admit {
                frontier.push(Reverse(Neighbor::new(nb, d)));
                bound_pool.push(Neighbor::new(nb, d));
                match filter {
                    Some((f, _)) if !f.accept(nb) => {}
                    _ => {
                        pool.push(Neighbor::new(nb, d));
                    }
                }
            }
        }
    }
    if let Some(t) = trace {
        t.expanded += expanded;
        t.distance_evals += evals;
    }
    let mut out = pool.drain_sorted();
    out.truncate(k);
    out
}

/// Robust pruning (Vamana's α-RNG rule; α = 1 gives the MRNG rule used by
/// NSG). From distance-sorted `candidates`, keep a candidate `c` only if no
/// already-kept `s` *occludes* it: `α · d(s, c) ≤ d(node, c)`. Larger α
/// keeps more (longer-range) edges.
pub fn robust_prune(
    vectors: &Vectors,
    metric: &Metric,
    node: usize,
    mut candidates: Vec<Neighbor>,
    alpha: f32,
    max_degree: usize,
) -> Vec<u32> {
    candidates.sort_unstable();
    candidates.dedup_by_key(|n| n.id);
    let mut kept: Vec<u32> = Vec::with_capacity(max_degree);
    for c in candidates {
        if c.id == node {
            continue;
        }
        if kept.len() >= max_degree {
            break;
        }
        let occluded = kept.iter().any(|&s| {
            let d_sc = metric.distance(vectors.get(s as usize), vectors.get(c.id));
            alpha * d_sc <= c.dist
        });
        if !occluded {
            kept.push(c.id as u32);
        }
    }
    kept
}

/// Index of the medoid: the point minimizing distance to the collection
/// centroid (the "navigating node" of NSG/Vamana). Computed against the
/// centroid rather than all-pairs for O(n·d) cost.
pub fn medoid(vectors: &Vectors, metric: &Metric) -> usize {
    let centroid = vectors.centroid().expect("non-empty collection");
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, row) in vectors.iter().enumerate() {
        let d = metric.distance(&centroid, row);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::rng::Rng;

    /// Line graph 0-1-2-...-9 over points on a line.
    fn line_graph() -> (AdjacencyList, Vectors) {
        let mut v = Vectors::new(1);
        let mut adj = AdjacencyList::new(10);
        for i in 0..10usize {
            v.push(&[i as f32]).unwrap();
            if i > 0 {
                adj.add_edge(i, (i - 1) as u32);
                adj.add_edge(i - 1, i as u32);
            }
        }
        (adj, v)
    }

    #[test]
    fn beam_search_walks_to_nearest() {
        let (adj, v) = line_graph();
        let mut ctx = SearchContext::new();
        let out = beam_search(
            &adj,
            &v,
            &Metric::Euclidean,
            &[7.2],
            &[0],
            3,
            8,
            &mut ctx,
            None,
        );
        assert_eq!(out[0].id, 7);
        assert_eq!(out[1].id, 8);
        assert_eq!(out[2].id, 6);
    }

    #[test]
    fn narrow_beam_can_miss_wide_beam_cannot() {
        // A graph with a decoy branch: from node 0, edges to 1 (toward
        // target) and 2 (decoy closer to query at first hop).
        let mut v = Vectors::new(1);
        for x in [0.0f32, 3.0, 4.5, 10.0] {
            v.push(&[x]).unwrap();
        }
        let mut adj = AdjacencyList::new(4);
        adj.add_edge(0, 1);
        adj.add_edge(0, 2);
        adj.add_edge(1, 3);
        let mut ctx = SearchContext::new();
        let wide = beam_search(
            &adj,
            &v,
            &Metric::Euclidean,
            &[10.0],
            &[0],
            1,
            8,
            &mut ctx,
            None,
        );
        assert_eq!(wide[0].id, 3, "wide beam reaches the target");
    }

    #[test]
    fn filtered_search_traverses_blocked_nodes() {
        let (adj, v) = line_graph();
        // Only even ids pass; the path to them runs through odd ids.
        let filter = |id: usize| id.is_multiple_of(2);
        let mut ctx = SearchContext::new();
        let out = beam_search_filtered(
            &adj,
            &v,
            &Metric::Euclidean,
            &[9.0],
            &[0],
            2,
            8,
            &mut ctx,
            &filter,
            usize::MAX,
            None,
        );
        assert_eq!(out[0].id, 8);
        assert!(out.iter().all(|n| n.id % 2 == 0));
    }

    #[test]
    fn expansion_cap_bounds_work() {
        let (adj, v) = line_graph();
        let filter = |_: usize| false; // nothing passes: worst case
        let mut ctx = SearchContext::new();
        let mut trace = SearchTrace::default();
        let out = beam_search_filtered(
            &adj,
            &v,
            &Metric::Euclidean,
            &[9.0],
            &[0],
            2,
            8,
            &mut ctx,
            &filter,
            3,
            Some(&mut trace),
        );
        assert!(out.is_empty());
        assert!(trace.expanded <= 3, "cap respected: {}", trace.expanded);
    }

    #[test]
    fn robust_prune_drops_occluded_candidates() {
        // node at origin; candidates at 1.0, 1.1 (next to each other), 5.0.
        let mut v = Vectors::new(1);
        for x in [0.0f32, 1.0, 1.1, 5.0] {
            v.push(&[x]).unwrap();
        }
        let m = Metric::Euclidean;
        let cands = vec![
            Neighbor::new(1, 1.0),
            Neighbor::new(2, 1.1),
            Neighbor::new(3, 5.0),
        ];
        // alpha=1: candidate 2 occluded by 1 (d(1,2)=0.1 <= 1.1); 3 kept
        // (d(1,3)=4 > 5? no, 4 <= 5 so occluded too!). Check the actual rule.
        let kept = robust_prune(&v, &m, 0, cands.clone(), 1.0, 8);
        assert_eq!(kept, vec![1], "alpha=1 keeps only the closest here");
        // alpha=2: occlusion needs 2*d(s,c) <= d(0,c): for c=3, 2*4=8 > 5 so kept.
        let kept = robust_prune(&v, &m, 0, cands, 2.0, 8);
        assert_eq!(kept, vec![1, 3]);
    }

    #[test]
    fn robust_prune_respects_degree_and_self() {
        let mut rng = Rng::seed_from_u64(1);
        let v = dataset::gaussian(50, 4, &mut rng);
        let m = Metric::Euclidean;
        let cands: Vec<Neighbor> = (0..50)
            .map(|i| Neighbor::new(i, m.distance(v.get(0), v.get(i))))
            .collect();
        let kept = robust_prune(&v, &m, 0, cands, 1.2, 5);
        assert!(kept.len() <= 5);
        assert!(!kept.contains(&0), "no self-edge");
    }

    #[test]
    fn medoid_is_central() {
        let mut v = Vectors::new(1);
        for x in [0.0f32, 1.0, 2.0, 3.0, 100.0] {
            v.push(&[x]).unwrap();
        }
        // Centroid is ~21.2; nearest point is 3.0 (index 3).
        assert_eq!(medoid(&v, &Metric::Euclidean), 3);
    }

    #[test]
    fn shared_adjacency_round_trips_and_searches() {
        let (adj, v) = line_graph();
        let shared = SharedAdjacency::from_adjacency(adj.clone());
        assert_eq!(shared.len(), adj.len());
        // Same traversal over the locked and the frozen graph.
        let mut ctx = SearchContext::new();
        let locked = beam_search(
            &shared,
            &v,
            &Metric::Euclidean,
            &[7.2],
            &[0],
            3,
            8,
            &mut ctx,
            None,
        );
        let frozen = beam_search(
            &adj,
            &v,
            &Metric::Euclidean,
            &[7.2],
            &[0],
            3,
            8,
            &mut ctx,
            None,
        );
        assert_eq!(locked, frozen);
        // Concurrent edge insertion from many threads, then freeze.
        let shared = SharedAdjacency::new(8);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let shared = &shared;
                scope.spawn(move || {
                    for u in 0..8usize {
                        shared.add_edge(u, (u as u32 + t + 1) % 8);
                        shared.add_edge(u, (u as u32 + 1) % 8); // contended dup
                    }
                });
            }
        });
        let frozen = shared.into_adjacency();
        for u in 0..8 {
            let mut list = frozen.neighbors(u).to_vec();
            let before = list.len();
            list.dedup();
            list.sort_unstable();
            list.dedup();
            assert_eq!(before, list.len(), "add_edge deduped under the lock");
            assert_eq!(before, 4, "each node got its 4 distinct edges");
        }
    }

    #[test]
    fn adjacency_utilities() {
        let (adj, _) = line_graph();
        assert_eq!(adj.len(), 10);
        assert_eq!(adj.edge_count(), 18);
        assert!((adj.mean_degree() - 1.8).abs() < 1e-12);
        assert_eq!(adj.reachable_from(0), 10);
        let mut disconnected = adj.clone();
        disconnected.set_neighbors(4, vec![3]);
        disconnected.set_neighbors(5, vec![6]);
        // 5 -> 6 .. 9 reachable but 0..=4 cannot reach 5 anymore.
        assert!(disconnected.reachable_from(0) < 10);
    }
}
