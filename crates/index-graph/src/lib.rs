//! # vdb-index-graph
//!
//! Graph-based vector indexes (§2.2 of *"Vector Database Management
//! Techniques and Systems"*, SIGMOD 2024), organized by the paper's
//! taxonomy:
//!
//! - **KNNGs** — [`knng`]: exact construction and NN-Descent (KGraph)
//!   iterative refinement,
//! - **MSNs** — [`nsg`] (KNNG-bootstrapped, MRNG pruning, navigating
//!   node), [`vamana`] (α-robust pruning), [`diskann`] (disk-resident
//!   Vamana with in-memory PQ navigation and per-page node records),
//! - **SWGs** — [`nsw`] (incremental flat small-world graph), [`hnsw`]
//!   (hierarchical layers with exponentially decaying level assignment),
//! - **hybrid-aware** — [`filtered`]: stitched Vamana whose per-label
//!   subgraphs stay connected under attribute blocking
//!   (Filtered-DiskANN/HQANN style),
//! - shared traversal machinery in [`graph`]: beam search, visit-first
//!   filtered beam search, robust pruning, medoid selection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index loops over parallel slices/pages are clearer than zipped
// iterator chains in the kernels and (de)serializers below.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod diskann;
pub mod filtered;
pub mod graph;
pub mod hnsw;
pub mod knng;
pub mod nsg;
pub mod nsw;
pub mod vamana;

pub use diskann::{DiskAnnConfig, DiskAnnIndex};
pub use filtered::{StitchedConfig, StitchedVamanaIndex};
pub use graph::{
    beam_search, beam_search_filtered, medoid, robust_prune, AdjacencyList, NeighborSource,
    SearchTrace, SharedAdjacency,
};
pub use hnsw::{HnswConfig, HnswIndex};
pub use knng::{KnngConfig, KnngIndex};
pub use nsg::{NsgConfig, NsgIndex};
pub use nsw::{NswConfig, NswIndex};
pub use vamana::{VamanaConfig, VamanaIndex};
