//! k-nearest-neighbor graphs (§2.2(1)): exact construction for small
//! collections and NN-Descent (KGraph) iterative refinement for large ones.
//!
//! NN-Descent starts from a random KNNG and repeatedly improves it using
//! the observation that *a neighbor of a neighbor is likely a neighbor*:
//! each round joins every node's neighborhood (forward + reverse) and
//! offers each pair to each other's k-NN lists, until updates die out.

use crate::graph::{beam_search, AdjacencyList};
use std::sync::atomic::{AtomicUsize, Ordering};
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::parallel::{parallel_for, parallel_map_chunks, parallel_queue, BuildOptions};
use vdb_core::rng::Rng;
use vdb_core::sync::Mutex;
use vdb_core::topk::{Neighbor, TopK};
use vdb_core::vector::Vectors;

/// Build-time configuration for the KNNG index.
#[derive(Debug, Clone)]
pub struct KnngConfig {
    /// Neighbors per node.
    pub k: usize,
    /// Maximum NN-Descent rounds.
    pub max_rounds: usize,
    /// Per-round sample size of neighbors considered for joins
    /// (NN-Descent's ρ·K sampling; bounds the O(nk²) join cost).
    pub sample: usize,
    /// Stop when the fraction of updated entries falls below this.
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Build exactly (O(n²)) instead of NN-Descent. Automatic for tiny
    /// collections.
    pub exact: bool,
}

impl KnngConfig {
    /// Defaults for `k` neighbors per node.
    pub fn new(k: usize) -> Self {
        KnngConfig {
            k,
            max_rounds: 10,
            sample: 8,
            delta: 0.002,
            seed: 0x4E4E,
            exact: false,
        }
    }
}

/// A KNNG with a graph-search interface.
pub struct KnngIndex {
    vectors: Vectors,
    metric: Metric,
    adj: AdjacencyList,
    cfg: KnngConfig,
    /// Rounds NN-Descent actually ran (0 for exact builds).
    pub rounds_run: usize,
    /// Entry points used for search (random but fixed at build).
    entries: Vec<usize>,
}

impl KnngIndex {
    /// Build the graph.
    pub fn build(vectors: Vectors, metric: Metric, cfg: KnngConfig) -> Result<Self> {
        if cfg.k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        let n = vectors.len();
        let k = cfg.k.min(n.saturating_sub(1)).max(1);
        let mut rng = Rng::seed_from_u64(cfg.seed);

        let (adj, rounds_run) = if cfg.exact || n <= 64 || n <= k + 1 {
            (exact_knng(&vectors, &metric, k, 1), 0)
        } else {
            nn_descent(&vectors, &metric, k, &cfg, &mut rng)
        };

        // A raw KNNG is weakly navigable: clusters can form disconnected
        // components, so search seeds many spread entry points (the
        // standard KGraph mitigation). ~sqrt(n) capped at 64.
        let n_entries = ((n as f64).sqrt() as usize).clamp(1, 64).min(n);
        let entries = rng.sample_indices(n, n_entries);
        Ok(KnngIndex {
            vectors,
            metric,
            adj,
            cfg,
            rounds_run,
            entries,
        })
    }

    /// Build with explicit [`BuildOptions`]. The serial path is exactly
    /// [`KnngIndex::build`]. In parallel, exact construction fans the
    /// per-node scans over chunks (bit-identical output — each row's
    /// top-k is independent), while NN-Descent seeds each node's heap
    /// from its own [`Rng::stream`] and runs the join rounds over
    /// per-node heap locks (same convergence criterion, edge recall
    /// proven equivalent by tests).
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: KnngConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if opts.is_serial() {
            return KnngIndex::build(vectors, metric, cfg);
        }
        if cfg.k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        let threads = opts.effective_threads();
        let n = vectors.len();
        let k = cfg.k.min(n.saturating_sub(1)).max(1);
        let mut rng = Rng::seed_from_u64(cfg.seed);

        let (adj, rounds_run) = if cfg.exact || n <= 64 || n <= k + 1 {
            // `rng` is untouched here exactly as in the serial exact
            // path, so the entry sample below matches it bit-for-bit.
            (exact_knng(&vectors, &metric, k, threads), 0)
        } else {
            nn_descent_parallel(&vectors, &metric, k, &cfg, threads)
        };
        let n_entries = ((n as f64).sqrt() as usize).clamp(1, 64).min(n);
        let entries = rng.sample_indices(n, n_entries);
        Ok(KnngIndex {
            vectors,
            metric,
            adj,
            cfg,
            rounds_run,
            entries,
        })
    }

    /// The adjacency lists (for NSG/EFANNA-style consumers that refine a
    /// KNNG into another graph).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// Recall of the built graph's edges against the exact KNNG, sampled on
    /// `sample` nodes (graph-quality diagnostics).
    pub fn edge_recall(&self, sample: usize, rng: &mut Rng) -> f64 {
        let n = self.vectors.len();
        let k = self.cfg.k.min(n.saturating_sub(1)).max(1);
        let picks = rng.sample_indices(n, sample.min(n));
        let mut hit = 0usize;
        let mut total = 0usize;
        for &u in &picks {
            let mut top = TopK::new(k);
            for v in 0..n {
                if v != u {
                    top.push(Neighbor::new(
                        v,
                        self.metric
                            .distance(self.vectors.get(u), self.vectors.get(v)),
                    ));
                }
            }
            let truth: std::collections::HashSet<usize> =
                top.into_sorted().into_iter().map(|x| x.id).collect();
            hit += self
                .adj
                .neighbors(u)
                .iter()
                .filter(|&&v| truth.contains(&(v as usize)))
                .count();
            total += truth.len();
        }
        hit as f64 / total.max(1) as f64
    }
}

/// Exact KNNG in O(n² d). Each row's top-k is independent, so the chunked
/// fan-out produces the same lists as a serial scan for any `threads`.
fn exact_knng(vectors: &Vectors, metric: &Metric, k: usize, threads: usize) -> AdjacencyList {
    let n = vectors.len();
    let chunks = parallel_map_chunks(n, threads, |_, range| {
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(range.len());
        for u in range {
            let mut top = TopK::new(k);
            for v in 0..n {
                if v == u {
                    continue;
                }
                top.push(Neighbor::new(
                    v,
                    metric.distance(vectors.get(u), vectors.get(v)),
                ));
            }
            lists.push(top.into_sorted().into_iter().map(|x| x.id as u32).collect());
        }
        lists
    });
    AdjacencyList::from_lists(chunks.into_iter().flatten().collect())
}

/// NN-Descent. Maintains per-node bounded heaps of (dist, neighbor, new?)
/// and joins sampled new/old neighbors each round.
fn nn_descent(
    vectors: &Vectors,
    metric: &Metric,
    k: usize,
    cfg: &KnngConfig,
    rng: &mut Rng,
) -> (AdjacencyList, usize) {
    let n = vectors.len();
    // Heap entry: (neighbor, dist, is_new).
    let mut heaps: Vec<Vec<(u32, f32, bool)>> = vec![Vec::with_capacity(k + 1); n];
    let try_insert = |heaps: &mut Vec<Vec<(u32, f32, bool)>>, u: usize, v: u32, d: f32| -> bool {
        let h = &mut heaps[u];
        if h.iter().any(|&(x, _, _)| x == v) {
            return false;
        }
        if h.len() < k {
            h.push((v, d, true));
            h.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            true
        } else if d < h[k - 1].1 {
            h[k - 1] = (v, d, true);
            h.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            true
        } else {
            false
        }
    };

    // Random initialization.
    for u in 0..n {
        while heaps[u].len() < k {
            let v = rng.below(n);
            if v != u {
                let d = metric.distance(vectors.get(u), vectors.get(v));
                try_insert(&mut heaps, u, v as u32, d);
            }
        }
    }

    let mut rounds = 0usize;
    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        // Collect sampled new/old forward and reverse neighbor lists.
        let mut new_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for &(v, _, is_new) in &heaps[u] {
                if is_new {
                    new_lists[u].push(v);
                } else {
                    old_lists[u].push(v);
                }
            }
        }
        // Mark sampled new entries as old (they get joined this round).
        for h in &mut heaps {
            for e in h.iter_mut() {
                e.2 = false;
            }
        }
        // Reverse lists, sampled.
        let mut rnew: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rold: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for &v in &new_lists[u] {
                if rnew[v as usize].len() < cfg.sample {
                    rnew[v as usize].push(u as u32);
                }
            }
            for &v in &old_lists[u] {
                if rold[v as usize].len() < cfg.sample {
                    rold[v as usize].push(u as u32);
                }
            }
        }
        let mut updates = 0usize;
        for u in 0..n {
            let mut new_pool = new_lists[u].clone();
            new_pool.extend_from_slice(&rnew[u]);
            new_pool.dedup();
            let mut old_pool = old_lists[u].clone();
            old_pool.extend_from_slice(&rold[u]);
            old_pool.dedup();
            // Join new×new and new×old.
            for (i, &a) in new_pool.iter().enumerate() {
                for &b in new_pool[i + 1..].iter().chain(old_pool.iter()) {
                    if a == b {
                        continue;
                    }
                    let d = metric.distance(vectors.get(a as usize), vectors.get(b as usize));
                    if try_insert(&mut heaps, a as usize, b, d) {
                        updates += 1;
                    }
                    if try_insert(&mut heaps, b as usize, a, d) {
                        updates += 1;
                    }
                }
            }
        }
        if (updates as f64) < cfg.delta * (n * k) as f64 {
            break;
        }
    }

    let mut adj = AdjacencyList::new(n);
    for (u, h) in heaps.into_iter().enumerate() {
        adj.set_neighbors(u, h.into_iter().map(|(v, _, _)| v).collect());
    }
    (adj, rounds)
}

/// NN-Descent over per-node heap locks. Structure mirrors [`nn_descent`]
/// round for round; the differences are (1) each node's random init
/// comes from its own [`Rng::stream`] so the start graph is independent
/// of thread count, and (2) the join phase claims nodes from a work
/// queue, inserting into both endpoints' heaps under their respective
/// locks (never holding two at once — `try_insert` locks exactly one).
fn nn_descent_parallel(
    vectors: &Vectors,
    metric: &Metric,
    k: usize,
    cfg: &KnngConfig,
    threads: usize,
) -> (AdjacencyList, usize) {
    let n = vectors.len();
    let heaps: Vec<Mutex<Vec<(u32, f32, bool)>>> = (0..n)
        .map(|_| Mutex::new(Vec::with_capacity(k + 1)))
        .collect();
    let try_insert = |u: usize, v: u32, d: f32| -> bool {
        let mut h = heaps[u].lock();
        if h.iter().any(|&(x, _, _)| x == v) {
            return false;
        }
        if h.len() < k {
            h.push((v, d, true));
            h.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            true
        } else if d < h[k - 1].1 {
            h[k - 1] = (v, d, true);
            h.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            true
        } else {
            false
        }
    };

    // Random initialization, one derived stream per node (no cross-node
    // writes yet, so each heap is filled locally and stored once).
    parallel_for(n, threads, |_, range| {
        for u in range {
            let mut r = Rng::stream(cfg.seed, u as u64);
            let mut h: Vec<(u32, f32, bool)> = Vec::with_capacity(k + 1);
            while h.len() < k {
                let v = r.below(n);
                if v != u && !h.iter().any(|&(x, _, _)| x == v as u32) {
                    h.push((
                        v as u32,
                        metric.distance(vectors.get(u), vectors.get(v)),
                        true,
                    ));
                }
            }
            h.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            *heaps[u].lock() = h;
        }
    });

    let mut rounds = 0usize;
    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        // Forward new/old lists per node (own heap only), marking the
        // sampled new entries old for the next round.
        let forward = parallel_map_chunks(n, threads, |_, range| {
            let mut lists: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(range.len());
            for u in range {
                let mut h = heaps[u].lock();
                let mut new_l = Vec::new();
                let mut old_l = Vec::new();
                for e in h.iter_mut() {
                    if e.2 {
                        new_l.push(e.0);
                        e.2 = false;
                    } else {
                        old_l.push(e.0);
                    }
                }
                lists.push((new_l, old_l));
            }
            lists
        });
        let (new_lists, old_lists): (Vec<Vec<u32>>, Vec<Vec<u32>>) =
            forward.into_iter().flatten().unzip();
        // Reverse lists, sampled (cheap; stays serial).
        let mut rnew: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rold: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for &v in &new_lists[u] {
                if rnew[v as usize].len() < cfg.sample {
                    rnew[v as usize].push(u as u32);
                }
            }
            for &v in &old_lists[u] {
                if rold[v as usize].len() < cfg.sample {
                    rold[v as usize].push(u as u32);
                }
            }
        }
        // Join phase: the O(n k²) bulk of the build.
        let updates = AtomicUsize::new(0);
        {
            let new_lists = &new_lists;
            let old_lists = &old_lists;
            let rnew = &rnew;
            let rold = &rold;
            let try_insert = &try_insert;
            let updates = &updates;
            parallel_queue(n, threads, 32, |_, range| {
                for u in range {
                    let mut new_pool = new_lists[u].clone();
                    new_pool.extend_from_slice(&rnew[u]);
                    new_pool.dedup();
                    let mut old_pool = old_lists[u].clone();
                    old_pool.extend_from_slice(&rold[u]);
                    old_pool.dedup();
                    for (i, &a) in new_pool.iter().enumerate() {
                        for &b in new_pool[i + 1..].iter().chain(old_pool.iter()) {
                            if a == b {
                                continue;
                            }
                            let d =
                                metric.distance(vectors.get(a as usize), vectors.get(b as usize));
                            if try_insert(a as usize, b, d) {
                                updates.fetch_add(1, Ordering::Relaxed);
                            }
                            if try_insert(b as usize, a, d) {
                                updates.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        if (updates.load(Ordering::Relaxed) as f64) < cfg.delta * (n * k) as f64 {
            break;
        }
    }

    let lists = heaps
        .into_iter()
        .map(|h| h.into_inner().into_iter().map(|(v, _, _)| v).collect())
        .collect();
    (AdjacencyList::from_lists(lists), rounds)
}

impl VectorIndex for KnngIndex {
    fn name(&self) -> &'static str {
        "knng"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &self.entries,
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes(),
            structure_entries: self.adj.edge_count(),
            detail: format!("k={} rounds={}", self.cfg.k, self.rounds_run),
        }
    }
}

impl std::fmt::Debug for KnngIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KnngIndex(n={}, k={})", self.len(), self.cfg.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;

    #[test]
    fn exact_knng_members_answer_self_queries() {
        let mut rng = Rng::seed_from_u64(1);
        let data = dataset::gaussian(50, 8, &mut rng);
        let idx = KnngIndex::build(data.clone(), Metric::Euclidean, KnngConfig::new(5)).unwrap();
        assert_eq!(idx.rounds_run, 0, "small collections build exactly");
        // For a member of the collection, its k-NN in the graph are exact.
        let hits = idx
            .search(data.get(7), 1, &SearchParams::default())
            .unwrap();
        assert_eq!(hits[0].id, 7);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn nn_descent_approaches_exact_graph() {
        let mut rng = Rng::seed_from_u64(2);
        let data = dataset::clustered(800, 12, 6, 0.5, &mut rng).vectors;
        let idx = KnngIndex::build(data, Metric::Euclidean, KnngConfig::new(10)).unwrap();
        assert!(idx.rounds_run >= 1);
        let recall = idx.edge_recall(40, &mut rng);
        assert!(recall > 0.85, "edge recall {recall}");
    }

    #[test]
    fn nn_descent_beats_random_init() {
        let mut rng = Rng::seed_from_u64(3);
        let data = dataset::clustered(600, 12, 6, 0.5, &mut rng).vectors;
        let refined =
            KnngIndex::build(data.clone(), Metric::Euclidean, KnngConfig::new(8)).unwrap();
        let unrefined = KnngIndex::build(
            data,
            Metric::Euclidean,
            KnngConfig {
                max_rounds: 0,
                ..KnngConfig::new(8)
            },
        );
        // max_rounds=0 leaves the random graph (rounds loop never runs).
        let r_refined = refined.edge_recall(30, &mut rng);
        let r_random = unrefined.unwrap().edge_recall(30, &mut rng);
        assert!(
            r_refined > r_random + 0.3,
            "refined {r_refined} vs random {r_random}"
        );
    }

    #[test]
    fn search_recall_reasonable() {
        let mut rng = Rng::seed_from_u64(4);
        let data = dataset::clustered(1000, 12, 8, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt =
            vdb_core::recall::GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = KnngIndex::build(data, Metric::Euclidean, KnngConfig::new(10)).unwrap();
        let params = SearchParams::default().with_beam_width(128);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.7, "recall {r}");
    }

    #[test]
    fn degree_bounded_by_k() {
        let mut rng = Rng::seed_from_u64(5);
        let data = dataset::gaussian(300, 8, &mut rng);
        let idx = KnngIndex::build(data, Metric::Euclidean, KnngConfig::new(7)).unwrap();
        for u in 0..idx.len() {
            assert!(idx.adjacency().neighbors(u).len() <= 7);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(KnngIndex::build(Vectors::new(4), Metric::Euclidean, KnngConfig::new(3)).is_err());
        let mut rng = Rng::seed_from_u64(6);
        let data = dataset::gaussian(10, 4, &mut rng);
        assert!(KnngIndex::build(data, Metric::Euclidean, KnngConfig::new(0)).is_err());
    }

    #[test]
    fn k_clamped_for_tiny_collections() {
        let mut data = Vectors::new(2);
        data.push(&[0.0, 0.0]).unwrap();
        data.push(&[1.0, 0.0]).unwrap();
        let idx = KnngIndex::build(data, Metric::Euclidean, KnngConfig::new(10)).unwrap();
        assert_eq!(idx.adjacency().neighbors(0), &[1]);
    }
}
