//! Attribute-aware graph construction for hybrid queries (§2.3(1)):
//! a stitched Vamana in the spirit of Filtered-DiskANN / HQANN.
//!
//! Blocking a graph index online can disconnect it (the failure mode the
//! paper highlights). The fix reproduced here: consider attribute values
//! *during edge selection*. Each label's subset gets its own Vamana
//! subgraph (guaranteeing per-label connectivity), stitched into one
//! global graph; a label-constrained search then runs **block-first** over
//! the stitched graph — it never leaves the label's subgraph, and cannot
//! get stranded, because that subgraph is connected by construction.

use crate::graph::{beam_search, robust_prune, AdjacencyList};
use crate::vamana::{VamanaConfig, VamanaIndex};
use std::collections::HashMap;
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct StitchedConfig {
    /// Configuration of the per-label and global Vamana builds.
    pub vamana: VamanaConfig,
    /// Degree cap of the stitched graph (the union may exceed per-graph
    /// caps; it is re-pruned to this bound).
    pub stitched_degree: usize,
}

impl Default for StitchedConfig {
    fn default() -> Self {
        StitchedConfig {
            vamana: VamanaConfig::default(),
            stitched_degree: 40,
        }
    }
}

/// A label-aware stitched Vamana graph.
pub struct StitchedVamanaIndex {
    vectors: Vectors,
    metric: Metric,
    labels: Vec<u32>,
    adj: AdjacencyList,
    /// Per-label entry points (subset medoids, in global ids).
    entries: HashMap<u32, usize>,
    /// Global entry (whole-collection medoid).
    global_entry: usize,
    cfg: StitchedConfig,
}

impl StitchedVamanaIndex {
    /// Build from vectors plus one label per vector.
    pub fn build(
        vectors: Vectors,
        labels: Vec<u32>,
        metric: Metric,
        cfg: StitchedConfig,
    ) -> Result<Self> {
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        if labels.len() != vectors.len() {
            return Err(Error::InvalidParameter(format!(
                "{} labels for {} vectors",
                labels.len(),
                vectors.len()
            )));
        }
        if cfg.stitched_degree == 0 {
            return Err(Error::InvalidParameter(
                "stitched degree must be positive".into(),
            ));
        }
        metric.validate(vectors.dim())?;
        let n = vectors.len();

        // Group rows by label.
        let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
        for (row, &l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(row);
        }

        // Global graph for unfiltered queries.
        let global = VamanaIndex::build(vectors.clone(), metric.clone(), cfg.vamana.clone())?;
        let global_entry = global.start();
        let mut adj = AdjacencyList::new(n);
        for u in 0..n {
            for &v in global.adjacency().neighbors(u) {
                adj.add_edge(u, v);
            }
        }

        // Per-label subgraphs, stitched in via id remapping.
        let mut entries = HashMap::new();
        for (&label, rows) in &groups {
            if rows.len() == 1 {
                entries.insert(label, rows[0]);
                continue;
            }
            let subset = vectors.select(rows);
            let mut sub_cfg = cfg.vamana.clone();
            sub_cfg.r = sub_cfg.r.min(rows.len().saturating_sub(1)).max(1);
            let sub = VamanaIndex::build(subset, metric.clone(), sub_cfg)?;
            entries.insert(label, rows[sub.start()]);
            for (local_u, &global_u) in rows.iter().enumerate() {
                for &local_v in sub.adjacency().neighbors(local_u) {
                    adj.add_edge(global_u, rows[local_v as usize] as u32);
                }
            }
        }

        // Re-prune nodes whose stitched degree overflows. Same-label edges
        // are exempt from pruning: they carry the connectivity guarantee.
        for u in 0..n {
            if adj.neighbors(u).len() <= cfg.stitched_degree {
                continue;
            }
            let (same, other): (Vec<u32>, Vec<u32>) = adj
                .neighbors(u)
                .iter()
                .partition(|&&v| labels[v as usize] == labels[u]);
            let room = cfg.stitched_degree.saturating_sub(same.len());
            let cands: Vec<Neighbor> = other
                .iter()
                .map(|&v| {
                    Neighbor::new(
                        v as usize,
                        metric.distance(vectors.get(u), vectors.get(v as usize)),
                    )
                })
                .collect();
            let mut kept = same;
            if room > 0 {
                kept.extend(robust_prune(&vectors, &metric, u, cands, 1.2, room));
            }
            adj.set_neighbors(u, kept);
        }

        Ok(StitchedVamanaIndex {
            vectors,
            metric,
            labels,
            adj,
            entries,
            global_entry,
            cfg,
        })
    }

    /// The label of row `u`.
    pub fn label(&self, u: usize) -> u32 {
        self.labels[u]
    }

    /// Label-constrained search: block-first over the stitched graph —
    /// traversal stays inside `label`'s (connected) subgraph.
    pub fn search_with_label(
        &self,
        query: &[f32],
        label: u32,
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        context::with_local(|ctx| self.search_with_label_ctx(ctx, query, label, k, params))
    }

    /// [`Self::search_with_label`] against a caller-managed scratch context.
    pub fn search_with_label_ctx(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        label: u32,
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let Some(&entry) = self.entries.get(&label) else {
            return Ok(Vec::new()); // no rows carry the label
        };
        // Block-first over the stitched graph: foreign-label nodes are
        // masked from traversal; per-label connectivity makes this safe.
        let labels = &self.labels;
        Ok(crate::graph::beam_search_blocked(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[entry],
            k,
            params.beam_width,
            ctx,
            &move |id: usize| labels[id] == label,
            None,
        ))
    }

    /// Adjacency diagnostics.
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// Check that every label's subgraph is internally connected when
    /// foreign nodes are blocked (the construction guarantee).
    pub fn label_subgraph_connected(&self, label: u32) -> bool {
        let rows: Vec<usize> = (0..self.len())
            .filter(|&u| self.labels[u] == label)
            .collect();
        if rows.is_empty() {
            return true;
        }
        let Some(&entry) = self.entries.get(&label) else {
            return false;
        };
        let mut seen: HashMap<usize, ()> = HashMap::new();
        let mut stack = vec![entry];
        seen.insert(entry, ());
        while let Some(u) = stack.pop() {
            for &v in self.adj.neighbors(u) {
                let v = v as usize;
                if self.labels[v] == label && !seen.contains_key(&v) {
                    seen.insert(v, ());
                    stack.push(v);
                }
            }
        }
        seen.len() == rows.len()
    }
}

impl VectorIndex for StitchedVamanaIndex {
    fn name(&self) -> &'static str {
        "stitched_vamana"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.global_entry],
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes() + self.labels.len() * 4,
            structure_entries: self.adj.edge_count(),
            detail: format!(
                "labels={} stitched_degree={} mean_degree={:.1}",
                self.entries.len(),
                self.cfg.stitched_degree,
                self.adj.mean_degree()
            ),
        }
    }
}

impl std::fmt::Debug for StitchedVamanaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StitchedVamanaIndex(n={}, labels={})",
            self.len(),
            self.entries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::flat::FlatIndex;
    use vdb_core::rng::Rng;

    fn setup(n_labels: u32) -> (StitchedVamanaIndex, Vectors, Vec<u32>) {
        let mut rng = Rng::seed_from_u64(80);
        let data = dataset::clustered(1500, 12, 8, 0.5, &mut rng).vectors;
        let labels: Vec<u32> = (0..data.len())
            .map(|_| rng.below(n_labels as usize) as u32)
            .collect();
        let idx = StitchedVamanaIndex::build(
            data.clone(),
            labels.clone(),
            Metric::Euclidean,
            StitchedConfig::default(),
        )
        .unwrap();
        (idx, data, labels)
    }

    #[test]
    fn every_label_subgraph_connected() {
        let (idx, _, labels) = setup(4);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for l in distinct {
            assert!(
                idx.label_subgraph_connected(l),
                "label {l} subgraph disconnected"
            );
        }
    }

    #[test]
    fn label_search_matches_filtered_oracle() {
        let (idx, data, labels) = setup(4);
        let flat = FlatIndex::build(data.clone(), Metric::Euclidean).unwrap();
        let params = SearchParams::default().with_beam_width(64);
        let mut rng = Rng::seed_from_u64(81);
        let queries = dataset::split_queries(&data, 15, 0.05, &mut rng);
        let mut hit = 0usize;
        let mut total = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let label = (qi % 4) as u32;
            let hits = idx.search_with_label(q, label, 10, &params).unwrap();
            assert!(hits.iter().all(|n| labels[n.id] == label));
            let labels_ref = &labels;
            let oracle = flat
                .search_filtered(q, 10, &params, &move |id: usize| labels_ref[id] == label)
                .unwrap();
            let oset: std::collections::HashSet<_> = oracle.iter().map(|n| n.id).collect();
            hit += hits.iter().filter(|n| oset.contains(&n.id)).count();
            total += oracle.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.9, "label-constrained recall {recall}");
    }

    #[test]
    fn unknown_label_returns_empty() {
        let (idx, data, _) = setup(3);
        let hits = idx
            .search_with_label(data.get(0), 999, 5, &SearchParams::default())
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn unfiltered_search_still_works() {
        let (idx, data, _) = setup(3);
        let hits = idx
            .search(data.get(5), 3, &SearchParams::default().with_beam_width(64))
            .unwrap();
        assert_eq!(hits[0].id, 5);
    }

    #[test]
    fn degree_cap_honored_for_cross_label_edges() {
        let (idx, _, labels) = setup(4);
        for u in 0..idx.len() {
            let foreign = idx
                .adjacency()
                .neighbors(u)
                .iter()
                .filter(|&&v| labels[v as usize] != labels[u])
                .count();
            assert!(
                foreign <= StitchedConfig::default().stitched_degree,
                "node {u} has {foreign} foreign edges"
            );
        }
    }

    #[test]
    fn validates_inputs() {
        let mut data = Vectors::new(2);
        data.push(&[0.0, 0.0]).unwrap();
        assert!(StitchedVamanaIndex::build(
            data.clone(),
            vec![0, 1],
            Metric::Euclidean,
            StitchedConfig::default()
        )
        .is_err());
        assert!(StitchedVamanaIndex::build(
            Vectors::new(2),
            vec![],
            Metric::Euclidean,
            StitchedConfig::default()
        )
        .is_err());
    }
}
