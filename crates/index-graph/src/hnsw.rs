//! Hierarchical navigable small world graphs (Malkov & Yashunin; §2.2(3)).
//!
//! Each node draws a maximum layer from an exponentially decaying
//! distribution; upper layers form progressively sparser graphs that act
//! as an express network. A query greedily descends from the top layer to
//! layer 1, then runs a beam search on the dense bottom layer. Neighbor
//! sets are chosen with the robust-prune heuristic (α = 1) to avoid the
//! degree explosion of a flat NSW.

use crate::graph::{
    beam_search, beam_search_filtered, robust_prune, AdjacencyList, NeighborSource, SharedAdjacency,
};
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{
    check_query, DynamicIndex, IndexStats, MutableIndex, RowFilter, SearchParams, VectorIndex,
};
use vdb_core::metric::Metric;
use vdb_core::parallel::{parallel_queue, BuildOptions};
use vdb_core::rng::Rng;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct HnswConfig {
    /// Target degree on upper layers (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Level multiplier; the canonical choice `1/ln(m)` is used when None.
    pub level_mult: Option<f64>,
    /// RNG seed for level draws.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 128,
            level_mult: None,
            seed: 0x9A75,
        }
    }
}

/// The HNSW index.
pub struct HnswIndex {
    vectors: Vectors,
    metric: Metric,
    cfg: HnswConfig,
    mult: f64,
    /// `layers[l]` holds the adjacency of layer `l` (same node id space).
    layers: Vec<AdjacencyList>,
    /// Maximum layer of each node.
    levels: Vec<usize>,
    /// Highest-layer node, the global entry point.
    entry: usize,
    rng: Rng,
    /// Tombstones: deleted nodes keep their out-edges (so stray in-edges
    /// still route through them) but never appear in results.
    deleted: Vec<bool>,
    removed: usize,
    removed_since_repair: usize,
}

/// Minimum tombstone count before a local re-prune pass fires.
const REPAIR_MIN: usize = 32;

/// Live-rows-only view for tombstone traversal: the filtered beam still
/// *visits* deleted nodes (they route) but never admits them to the
/// result pool; an optional caller filter composes on top.
struct LiveFilter<'a> {
    deleted: &'a [bool],
    inner: Option<&'a dyn RowFilter>,
}

impl RowFilter for LiveFilter<'_> {
    fn accept(&self, id: usize) -> bool {
        !self.deleted[id] && self.inner.is_none_or(|f| f.accept(id))
    }
    fn selectivity_hint(&self) -> Option<f64> {
        self.inner.and_then(|f| f.selectivity_hint())
    }
}

impl HnswIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, cfg: HnswConfig) -> Result<Self> {
        if cfg.m == 0 {
            return Err(Error::InvalidParameter("m must be positive".into()));
        }
        metric.validate(dim)?;
        let mult = cfg.level_mult.unwrap_or(1.0 / (cfg.m as f64).ln().max(0.1));
        let rng = Rng::seed_from_u64(cfg.seed);
        Ok(HnswIndex {
            vectors: Vectors::new(dim),
            metric,
            cfg,
            mult,
            layers: vec![AdjacencyList::default()],
            levels: Vec::new(),
            entry: 0,
            rng,
            deleted: Vec::new(),
            removed: 0,
            removed_since_repair: 0,
        })
    }

    /// Build by inserting every vector.
    pub fn build(vectors: Vectors, metric: Metric, cfg: HnswConfig) -> Result<Self> {
        let mut idx = HnswIndex::new(vectors.dim(), metric, cfg)?;
        for row in vectors.iter() {
            DynamicIndex::insert(&mut idx, row)?;
        }
        Ok(idx)
    }

    /// Build with explicit [`BuildOptions`]. The serial path (one thread
    /// or `deterministic`) is exactly [`HnswIndex::build`]; the parallel
    /// path inserts nodes concurrently over per-node-locked layers.
    ///
    /// Determinism notes for the parallel path: the per-node level draws
    /// come from the same seeded stream the serial insert loop consumes
    /// (so the layer structure, the entry point, and the generator state
    /// left behind for future [`DynamicIndex::insert`] calls are all
    /// identical to a serial build); only the *edges* depend on insert
    /// interleaving, which the recall-equivalence tests bound.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: HnswConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if opts.is_serial() || vectors.len() <= 1 {
            return HnswIndex::build(vectors, metric, cfg);
        }
        let threads = opts.effective_threads();
        let mut idx = HnswIndex::new(vectors.dim(), metric, cfg)?;
        let n = vectors.len();
        // Pre-draw every node's level serially — the identical sequence
        // the serial build would draw, one per insert.
        let mut level_rng = Rng::seed_from_u64(idx.cfg.seed);
        let mult = idx.mult;
        let levels: Vec<usize> = (0..n).map(|_| level_rng.hnsw_level(mult)).collect();
        let top = *levels.iter().max().expect("n > 1");
        // The serial loop promotes the entry whenever a node exceeds the
        // running max level, so it ends at the first global-max node.
        let entry = levels.iter().position(|&l| l == top).expect("max exists");
        let shared: Vec<SharedAdjacency> = (0..=top).map(|_| SharedAdjacency::new(n)).collect();
        {
            let metric = &idx.metric;
            let cfg = &idx.cfg;
            let vecs = &vectors;
            let levels = &levels;
            let shared = &shared;
            parallel_queue(n, threads, 32, |_, range| {
                // One thread-local scratch context per worker thread,
                // reused across every insert it claims.
                context::with_local(|ctx| {
                    for row in range {
                        if row != entry {
                            parallel_insert(
                                vecs,
                                metric,
                                cfg,
                                shared,
                                levels[row],
                                top,
                                entry,
                                row,
                                ctx,
                            );
                        }
                    }
                });
            });
        }
        idx.layers = shared
            .into_iter()
            .map(SharedAdjacency::into_adjacency)
            .collect();
        idx.levels = levels;
        idx.entry = entry;
        idx.deleted = vec![false; n];
        idx.vectors = vectors;
        idx.rng = level_rng;
        Ok(idx)
    }

    /// Number of layers currently in use.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer adjacency (diagnostics / ablations).
    pub fn layer(&self, l: usize) -> &AdjacencyList {
        &self.layers[l]
    }

    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.cfg.m * 2
        } else {
            self.cfg.m
        }
    }

    /// Greedy descent through the upper layers, returning the entry for
    /// the target layer.
    fn descend(&self, query: &[f32], from_layer: usize, to_layer: usize) -> usize {
        let mut cur = self.entry;
        let mut cur_d = self.metric.distance(query, self.vectors.get(cur));
        for l in (to_layer + 1..=from_layer).rev() {
            loop {
                let mut improved = false;
                for &nb in self.layers[l].neighbors(cur) {
                    let d = self.metric.distance(query, self.vectors.get(nb as usize));
                    if d < cur_d {
                        cur_d = d;
                        cur = nb as usize;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        cur
    }

    /// Prune node `u` at `layer` down to the degree cap with the heuristic.
    fn shrink(&mut self, u: usize, layer: usize) {
        let cap = self.max_degree(layer);
        if self.layers[layer].neighbors(u).len() <= cap {
            return;
        }
        let cands: Vec<Neighbor> = self.layers[layer]
            .neighbors(u)
            .iter()
            .map(|&v| {
                Neighbor::new(
                    v as usize,
                    self.metric
                        .distance(self.vectors.get(u), self.vectors.get(v as usize)),
                )
            })
            .collect();
        let kept = robust_prune(&self.vectors, &self.metric, u, cands, 1.0, cap);
        self.layers[layer].set_neighbors(u, kept);
    }

    /// Number of tombstoned nodes.
    pub fn removed(&self) -> usize {
        self.removed
    }

    /// Re-point `entry` at the highest-level live node (after the old
    /// entry was tombstoned). Leaves `entry` untouched when no live
    /// node remains — searches bail out on `live() == 0` before use.
    fn promote_entry(&mut self) {
        let mut best: Option<(usize, usize)> = None;
        for (i, &lv) in self.levels.iter().enumerate() {
            if !self.deleted[i] && best.is_none_or(|(_, bl)| lv > bl) {
                best = Some((i, lv));
            }
        }
        if let Some((i, _)) = best {
            self.entry = i;
        }
    }

    /// Local re-pruning pass: rewrite every live node's list that still
    /// points at tombstones, contracting each dead edge through the dead
    /// node's live neighbors (2-hop), then robust-pruning back to the
    /// degree cap. Keeps the live subgraph connected as tombstones
    /// accumulate — the EXPERIMENTS.md §Vamana disconnection lesson.
    pub fn repair(&mut self) {
        for l in 0..self.layers.len() {
            for u in 0..self.layers[l].len() {
                if self.deleted[u] {
                    continue;
                }
                let list: Vec<u32> = self.layers[l].neighbors(u).to_vec();
                if !list.iter().any(|&v| self.deleted[v as usize]) {
                    continue;
                }
                let mut patched: Vec<u32> = Vec::with_capacity(list.len());
                for &v in &list {
                    if self.deleted[v as usize] {
                        for &w in self.layers[l].neighbors(v as usize) {
                            if w as usize != u && !self.deleted[w as usize] && !patched.contains(&w)
                            {
                                patched.push(w);
                            }
                        }
                    } else if !patched.contains(&v) {
                        patched.push(v);
                    }
                }
                self.layers[l].set_neighbors(u, patched);
                self.shrink(u, l);
            }
        }
        self.removed_since_repair = 0;
    }
}

impl VectorIndex for HnswIndex {
    fn name(&self) -> &'static str {
        "hnsw"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() || self.live() == 0 {
            return Ok(Vec::new());
        }
        let top = self.levels[self.entry];
        let entry = self.descend(query, top, 0);
        if self.removed > 0 {
            // Tombstone traversal: deleted nodes route, never surface.
            let live = LiveFilter {
                deleted: &self.deleted,
                inner: None,
            };
            return Ok(beam_search_filtered(
                &self.layers[0],
                &self.vectors,
                &self.metric,
                query,
                &[entry],
                k,
                params.beam_width,
                ctx,
                &live,
                params.beam_width * 16,
                None,
            ));
        }
        Ok(beam_search(
            &self.layers[0],
            &self.vectors,
            &self.metric,
            query,
            &[entry],
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    /// Visit-first scan (§2.3(2)): the bottom-layer beam traverses blocked
    /// nodes but only accepts passing ones; the expansion cap bounds
    /// backtracking under highly selective predicates.
    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() || self.live() == 0 {
            return Ok(Vec::new());
        }
        let top = self.levels[self.entry];
        let entry = self.descend(query, top, 0);
        // Budget scales inversely with selectivity when known.
        let cap = match filter.selectivity_hint() {
            Some(s) if s > 0.0 => {
                ((params.beam_width as f64 * (1.0 / s).min(64.0)) as usize).max(params.beam_width)
            }
            _ => params.beam_width * 16,
        };
        let live = LiveFilter {
            deleted: &self.deleted,
            inner: Some(filter),
        };
        Ok(beam_search_filtered(
            &self.layers[0],
            &self.vectors,
            &self.metric,
            query,
            &[entry],
            k,
            params.beam_width,
            ctx,
            if self.removed > 0 { &live } else { filter },
            cap,
            None,
        ))
    }

    /// Block-first scan on the bottom layer: blocked nodes are masked from
    /// traversal entirely. Fast, but online blocking can disconnect the
    /// layer — recall degrades at low selectivity (the §2.3 trade-off).
    fn search_blocked_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() || self.live() == 0 {
            return Ok(Vec::new());
        }
        let top = self.levels[self.entry];
        let entry = self.descend(query, top, 0);
        let live = LiveFilter {
            deleted: &self.deleted,
            inner: Some(filter),
        };
        Ok(crate::graph::beam_search_blocked(
            &self.layers[0],
            &self.vectors,
            &self.metric,
            query,
            &[entry],
            k,
            params.beam_width,
            ctx,
            if self.removed > 0 { &live } else { filter },
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        let edges: usize = self.layers.iter().map(AdjacencyList::edge_count).sum();
        let bytes: usize = self.layers.iter().map(AdjacencyList::memory_bytes).sum();
        IndexStats {
            memory_bytes: bytes + self.levels.len() * 8,
            structure_entries: edges,
            detail: format!(
                "m={} layers={} mean_degree0={:.1} removed={}",
                self.cfg.m,
                self.layers.len(),
                self.layers[0].mean_degree(),
                self.removed
            ),
        }
    }

    fn as_mutable(&mut self) -> Option<&mut dyn MutableIndex> {
        Some(self)
    }
}

impl DynamicIndex for HnswIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        let row = self.vectors.push(vector)?;
        let level = self.rng.hnsw_level(self.mult);
        while self.layers.len() <= level {
            let mut l = AdjacencyList::new(row);
            // Keep node-count parity across layers.
            while l.len() < row {
                l.push_node();
            }
            self.layers.push(l);
        }
        for l in &mut self.layers {
            l.push_node();
        }
        self.levels.push(level);
        self.deleted.push(false);
        if row == 0 {
            self.entry = 0;
            return Ok(0);
        }

        let top = self.levels[self.entry];
        let q = self.vectors.get(row).to_vec();
        // Phase 1: greedy descent to one layer above the node's level.
        let mut entry = if level < top {
            self.descend(&q, top, level)
        } else {
            self.entry
        };
        // Phase 2: beam search + connect on each layer from min(level, top)
        // down, reusing the thread-local scratch context across layers (and
        // across the whole build loop).
        context::with_local(|ctx| {
            for l in (0..=level.min(top)).rev() {
                let mut found = beam_search(
                    &self.layers[l],
                    &self.vectors,
                    &self.metric,
                    &q,
                    &[entry],
                    self.cfg.ef_construction,
                    self.cfg.ef_construction,
                    ctx,
                    None,
                );
                if let Some(best) = found.first() {
                    entry = best.id;
                }
                if self.removed > 0 {
                    // Connect only to live nodes; tombstones just route.
                    found.retain(|n| !self.deleted[n.id]);
                }
                let m = self.cfg.m;
                let kept = robust_prune(&self.vectors, &self.metric, row, found, 1.0, m);
                for &v in &kept {
                    self.layers[l].add_edge(row, v);
                    self.layers[l].add_edge(v as usize, row as u32);
                    self.shrink(v as usize, l);
                }
            }
        });
        if level > top || self.deleted[self.entry] {
            self.entry = row;
        }
        Ok(row)
    }
}

impl MutableIndex for HnswIndex {
    fn insert(&mut self, vector: &[f32]) -> Result<usize> {
        DynamicIndex::insert(self, vector)
    }

    fn remove(&mut self, id: usize) -> Result<bool> {
        if id >= self.vectors.len() {
            return Err(Error::NotFound(format!("hnsw row {id} out of range")));
        }
        if self.deleted[id] {
            return Ok(false);
        }
        self.deleted[id] = true;
        self.removed += 1;
        self.removed_since_repair += 1;
        // Patch: re-wire every symmetric in-neighbor of the tombstone to
        // the tombstone's remaining live neighbors (path contraction),
        // then re-prune it to the degree cap. The tombstone keeps its own
        // out-edges so asymmetric in-edges still route through it.
        for l in 0..=self.levels[id].min(self.layers.len() - 1) {
            let nbrs: Vec<u32> = self.layers[l].neighbors(id).to_vec();
            let live: Vec<u32> = nbrs
                .iter()
                .copied()
                .filter(|&v| !self.deleted[v as usize])
                .collect();
            for &u in &nbrs {
                let u = u as usize;
                if self.deleted[u] {
                    continue;
                }
                let list: Vec<u32> = self.layers[l].neighbors(u).to_vec();
                if !list.contains(&(id as u32)) {
                    continue;
                }
                let mut patched: Vec<u32> = list.into_iter().filter(|&v| v != id as u32).collect();
                for &w in &live {
                    if w as usize != u && !patched.contains(&w) {
                        patched.push(w);
                    }
                }
                self.layers[l].set_neighbors(u, patched);
                self.shrink(u, l);
            }
        }
        if id == self.entry {
            self.promote_entry();
        }
        if self.removed_since_repair >= REPAIR_MIN.max(self.live() / 50) {
            self.repair();
        }
        Ok(true)
    }

    fn live(&self) -> usize {
        self.vectors.len() - self.removed
    }
}

/// One concurrent insert into the shared layer stack: greedy descent
/// through the upper layers, then beam + robust-prune + locked edge
/// updates per layer. Locking discipline: at most one node lock is held
/// at any time (each `update` call scopes its own guard), so concurrent
/// inserts cannot deadlock.
#[allow(clippy::too_many_arguments)]
fn parallel_insert(
    vectors: &Vectors,
    metric: &Metric,
    cfg: &HnswConfig,
    layers: &[SharedAdjacency],
    level: usize,
    top: usize,
    global_entry: usize,
    row: usize,
    ctx: &mut SearchContext,
) {
    let q = vectors.get(row);
    let mut entry = global_entry;
    // Greedy descent: copy each list out under its lock, score outside it.
    let mut cur_d = metric.distance(q, vectors.get(entry));
    let mut nbs: Vec<u32> = Vec::new();
    for l in (level + 1..=top).rev() {
        loop {
            nbs.clear();
            layers[l].with_neighbors(entry, |list| nbs.extend_from_slice(list));
            let mut improved = false;
            for &nb in &nbs {
                let d = metric.distance(q, vectors.get(nb as usize));
                if d < cur_d {
                    cur_d = d;
                    entry = nb as usize;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    // Prune `list` (owned by `u`, whose lock the caller holds) down to
    // `cap` with the same heuristic the serial `shrink` uses.
    let prune_list = |u: usize, list: &mut Vec<u32>, cap: usize| {
        if list.len() > cap {
            let cands: Vec<Neighbor> = list
                .iter()
                .map(|&w| {
                    Neighbor::new(
                        w as usize,
                        metric.distance(vectors.get(u), vectors.get(w as usize)),
                    )
                })
                .collect();
            *list = robust_prune(vectors, metric, u, cands, 1.0, cap);
        }
    };
    for l in (0..=level.min(top)).rev() {
        let found = beam_search(
            &layers[l],
            vectors,
            metric,
            q,
            &[entry],
            cfg.ef_construction,
            cfg.ef_construction,
            ctx,
            None,
        );
        let kept = robust_prune(vectors, metric, row, found.clone(), 1.0, cfg.m);
        let cap = if l == 0 { cfg.m * 2 } else { cfg.m };
        layers[l].update(row, |list| {
            for &v in &kept {
                if !list.contains(&v) {
                    list.push(v);
                }
            }
            prune_list(row, list, cap);
        });
        for &v in &kept {
            layers[l].update(v as usize, |list| {
                if !list.contains(&(row as u32)) {
                    list.push(row as u32);
                }
                prune_list(v as usize, list, cap);
            });
        }
        if let Some(best) = found.first() {
            entry = best.id;
        }
    }
}

impl std::fmt::Debug for HnswIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HnswIndex(n={}, m={}, layers={})",
            self.len(),
            self.cfg.m,
            self.layers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;

    fn setup(n: usize) -> (HnswIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(30);
        let data = dataset::clustered(n, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = HnswIndex::build(data, Metric::Euclidean, HnswConfig::default()).unwrap();
        (idx, queries, gt)
    }

    #[test]
    fn high_recall_on_clusters() {
        let (idx, queries, gt) = setup(3000);
        let params = SearchParams::default().with_beam_width(64);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.95, "recall {r}");
    }

    #[test]
    fn multiple_layers_form() {
        let (idx, _, _) = setup(3000);
        assert!(idx.num_layers() >= 2, "3000 nodes should produce >1 layer");
        // Upper layers are sparser.
        assert!(idx.layer(1).edge_count() < idx.layer(0).edge_count());
    }

    #[test]
    fn bottom_layer_connected() {
        let (idx, _, _) = setup(1500);
        assert_eq!(idx.layer(0).reachable_from(idx.entry), 1500);
    }

    #[test]
    fn degree_caps_respected() {
        let (idx, _, _) = setup(1500);
        for u in 0..idx.len() {
            assert!(idx.layer(0).neighbors(u).len() <= 32, "layer0 cap 2m");
            if idx.num_layers() > 1 {
                assert!(idx.layer(1).neighbors(u).len() <= 16, "upper cap m");
            }
        }
    }

    #[test]
    fn recall_improves_with_beam_width() {
        let (idx, queries, gt) = setup(2000);
        let r = |ef: usize| {
            let params = SearchParams::default().with_beam_width(ef);
            let results: Vec<_> = queries
                .iter()
                .map(|q| idx.search(q, 10, &params).unwrap())
                .collect();
            gt.recall_batch(&results)
        };
        let lo = r(10);
        let hi = r(128);
        assert!(hi >= lo);
        assert!(hi > 0.95);
    }

    #[test]
    fn filtered_search_visit_first() {
        let (idx, queries, _) = setup(2000);
        let filter = |id: usize| id.is_multiple_of(10); // 10% selectivity
        let params = SearchParams::default().with_beam_width(64);
        for q in queries.iter().take(10) {
            let hits = idx.search_filtered(q, 5, &params, &filter).unwrap();
            assert!(hits.iter().all(|n| n.id % 10 == 0));
            assert!(!hits.is_empty(), "visit-first should find matches");
        }
    }

    #[test]
    fn insert_after_build_is_searchable() {
        let (mut idx, _, _) = setup(500);
        let v = vec![99.0f32; 16];
        let row = DynamicIndex::insert(&mut idx, &v).unwrap();
        let hits = idx.search(&v, 1, &SearchParams::default()).unwrap();
        assert_eq!(hits[0].id, row);
    }

    #[test]
    fn removed_nodes_route_but_never_surface() {
        let (mut idx, queries, _) = setup(1000);
        for id in (0..1000).step_by(3) {
            assert!(MutableIndex::remove(&mut idx, id).unwrap());
        }
        assert!(!MutableIndex::remove(&mut idx, 0).unwrap(), "idempotent");
        assert_eq!(idx.live(), 1000 - 334);
        let params = SearchParams::default().with_beam_width(64);
        for q in queries.iter() {
            let hits = idx.search(q, 10, &params).unwrap();
            assert_eq!(hits.len(), 10);
            assert!(hits.iter().all(|n| n.id % 3 != 0), "tombstone surfaced");
        }
        // Live self-queries still find themselves: the patched graph
        // stays navigable after repair passes.
        for id in (1..1000).step_by(97) {
            if id % 3 == 0 {
                continue;
            }
            let v = idx.vectors.get(id).to_vec();
            let hits = idx.search(&v, 1, &params).unwrap();
            assert_eq!(hits[0].id, id, "self-query lost node {id}");
        }
        // Filtered search composes the caller filter with liveness.
        let f = |id: usize| id.is_multiple_of(2);
        for q in queries.iter().take(5) {
            let hits = idx.search_filtered(q, 5, &params, &f).unwrap();
            assert!(hits.iter().all(|n| n.id % 2 == 0 && n.id % 3 != 0));
        }
    }

    #[test]
    fn removing_entry_promotes_live_node() {
        let (mut idx, _, _) = setup(300);
        let old_entry = idx.entry;
        assert!(MutableIndex::remove(&mut idx, old_entry).unwrap());
        assert_ne!(idx.entry, old_entry);
        assert!(!idx.deleted[idx.entry]);
        let v = idx.vectors.get(1).to_vec();
        let hits = idx.search(&v, 1, &SearchParams::default()).unwrap();
        assert!(hits[0].id != old_entry);
    }

    #[test]
    fn insert_after_remove_reconnects() {
        let (mut idx, _, _) = setup(400);
        for id in 0..100 {
            MutableIndex::remove(&mut idx, id).unwrap();
        }
        let v = vec![7.0f32; 16];
        let row = MutableIndex::insert(&mut idx, &v).unwrap();
        assert_eq!(row, 400);
        let hits = idx.search(&v, 1, &SearchParams::default()).unwrap();
        assert_eq!(hits[0].id, row);
        // New node connected only to live neighbors.
        for &nb in idx.layer(0).neighbors(row) {
            assert!(!idx.deleted[nb as usize]);
        }
    }

    #[test]
    fn deterministic_builds() {
        let mut rng = Rng::seed_from_u64(31);
        let data = dataset::gaussian(400, 8, &mut rng);
        let a = HnswIndex::build(data.clone(), Metric::Euclidean, HnswConfig::default()).unwrap();
        let b = HnswIndex::build(data, Metric::Euclidean, HnswConfig::default()).unwrap();
        assert_eq!(a.num_layers(), b.num_layers());
        for u in 0..a.len() {
            assert_eq!(a.layer(0).neighbors(u), b.layer(0).neighbors(u));
        }
    }

    #[test]
    fn rejects_bad_config_and_queries() {
        assert!(HnswIndex::new(
            4,
            Metric::Euclidean,
            HnswConfig {
                m: 0,
                ..Default::default()
            }
        )
        .is_err());
        let (idx, _, _) = setup(100);
        assert!(idx.search(&[1.0], 5, &SearchParams::default()).is_err());
    }
}
