//! NSG — navigating spreading-out graph (Fu et al.; §2.2(2) "MSNs").
//!
//! Built *from an approximate KNNG*: for every node, a candidate pool is
//! gathered by searching the KNNG from the navigating node (the medoid),
//! merged with the node's KNNG neighbors, and filtered with the MRNG edge
//! rule (robust prune, α = 1). A final spanning pass guarantees every node
//! is reachable from the navigating node — the property that lets a single
//! best-first search answer all queries.

use crate::graph::{beam_search, beam_search_filtered, medoid, robust_prune, AdjacencyList};
use crate::knng::{KnngConfig, KnngIndex};
use crate::vamana::repair_connectivity;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::parallel::{parallel_map_chunks, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct NsgConfig {
    /// Maximum out-degree.
    pub r: usize,
    /// Candidate-pool size gathered per node.
    pub l: usize,
    /// Neighbors per node of the bootstrap KNNG.
    pub knng_k: usize,
    /// RNG seed (forwarded to the KNNG build).
    pub seed: u64,
}

impl Default for NsgConfig {
    fn default() -> Self {
        NsgConfig {
            r: 24,
            l: 64,
            knng_k: 16,
            seed: 0x4E53,
        }
    }
}

/// The NSG index.
pub struct NsgIndex {
    vectors: Vectors,
    metric: Metric,
    adj: AdjacencyList,
    start: usize,
    cfg: NsgConfig,
    /// Nodes re-attached by the connectivity pass (diagnostics).
    pub reattached: usize,
}

impl NsgIndex {
    /// Build the graph.
    pub fn build(vectors: Vectors, metric: Metric, cfg: NsgConfig) -> Result<Self> {
        if cfg.r == 0 || cfg.l == 0 || cfg.knng_k == 0 {
            return Err(Error::InvalidParameter(
                "nsg needs r, l, knng_k >= 1".into(),
            ));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        let n = vectors.len();
        let start = medoid(&vectors, &metric);

        // Bootstrap KNNG.
        let knng = KnngIndex::build(
            vectors.clone(),
            metric.clone(),
            KnngConfig {
                seed: cfg.seed,
                ..KnngConfig::new(cfg.knng_k)
            },
        )?;
        let kg = knng.adjacency();

        // Edge selection per node.
        let mut adj = AdjacencyList::new(n);
        // One build-scoped scratch context serves every construction search.
        let mut ctx = SearchContext::for_index(n);
        for u in 0..n {
            let q = vectors.get(u);
            let mut pool = beam_search(
                kg,
                &vectors,
                &metric,
                q,
                &[start],
                cfg.l,
                cfg.l,
                &mut ctx,
                None,
            );
            for &v in kg.neighbors(u) {
                pool.push(Neighbor::new(
                    v as usize,
                    metric.distance(q, vectors.get(v as usize)),
                ));
            }
            let kept = robust_prune(&vectors, &metric, u, pool, 1.0, cfg.r);
            adj.set_neighbors(u, kept);
        }

        // Connectivity pass: attach any node unreachable from the medoid to
        // its nearest reachable node (the "spanning" step of NSG).
        let reattached = repair_connectivity(&mut adj, &vectors, &metric, start, cfg.l, &mut ctx);

        Ok(NsgIndex {
            vectors,
            metric,
            adj,
            start,
            cfg,
            reattached,
        })
    }

    /// Build with explicit [`BuildOptions`]. The serial path is exactly
    /// [`NsgIndex::build`]. In parallel, the bootstrap KNNG build is
    /// forwarded the options, and the MRNG edge-selection pass — which
    /// reads only the immutable KNNG and writes only its own node's list
    /// — fans out over chunks; given the same bootstrap graph its output
    /// is bit-identical for any thread count. The spanning pass stays
    /// serial in both.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: NsgConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if opts.is_serial() {
            return NsgIndex::build(vectors, metric, cfg);
        }
        if cfg.r == 0 || cfg.l == 0 || cfg.knng_k == 0 {
            return Err(Error::InvalidParameter(
                "nsg needs r, l, knng_k >= 1".into(),
            ));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        let threads = opts.effective_threads();
        let n = vectors.len();
        let start = medoid(&vectors, &metric);

        let knng = KnngIndex::build_with(
            vectors.clone(),
            metric.clone(),
            KnngConfig {
                seed: cfg.seed,
                ..KnngConfig::new(cfg.knng_k)
            },
            opts,
        )?;
        let kg = knng.adjacency();

        // Per-node edge selection over the immutable bootstrap graph.
        let chunks = parallel_map_chunks(n, threads, |_, range| {
            let mut ctx = SearchContext::for_index(n);
            let mut lists: Vec<Vec<u32>> = Vec::with_capacity(range.len());
            for u in range {
                let q = vectors.get(u);
                let mut pool = beam_search(
                    kg,
                    &vectors,
                    &metric,
                    q,
                    &[start],
                    cfg.l,
                    cfg.l,
                    &mut ctx,
                    None,
                );
                for &v in kg.neighbors(u) {
                    pool.push(Neighbor::new(
                        v as usize,
                        metric.distance(q, vectors.get(v as usize)),
                    ));
                }
                lists.push(robust_prune(&vectors, &metric, u, pool, 1.0, cfg.r));
            }
            lists
        });
        let mut adj = AdjacencyList::from_lists(chunks.into_iter().flatten().collect());

        let mut ctx = SearchContext::for_index(n);
        let reattached = repair_connectivity(&mut adj, &vectors, &metric, start, cfg.l, &mut ctx);

        Ok(NsgIndex {
            vectors,
            metric,
            adj,
            start,
            cfg,
            reattached,
        })
    }

    /// The navigating node.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Adjacency (diagnostics).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }
}

impl VectorIndex for NsgIndex {
    fn name(&self) -> &'static str {
        "nsg"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search_filtered(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            filter,
            params.beam_width * 16,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes(),
            structure_entries: self.adj.edge_count(),
            detail: format!(
                "r={} reattached={} mean_degree={:.1}",
                self.cfg.r,
                self.reattached,
                self.adj.mean_degree()
            ),
        }
    }
}

impl std::fmt::Debug for NsgIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NsgIndex(n={}, r={})", self.len(), self.cfg.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;

    fn setup() -> (NsgIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(55);
        let data = dataset::clustered(2000, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = NsgIndex::build(data, Metric::Euclidean, NsgConfig::default()).unwrap();
        (idx, queries, gt)
    }

    #[test]
    fn high_recall() {
        let (idx, queries, gt) = setup();
        let params = SearchParams::default().with_beam_width(64);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn everything_reachable_from_navigating_node() {
        let (idx, _, _) = setup();
        assert_eq!(idx.adjacency().reachable_from(idx.start()), idx.len());
    }

    #[test]
    fn sparser_than_its_bootstrap_knng() {
        let (idx, _, _) = setup();
        // MRNG pruning should leave fewer edges than k * n of the KNNG.
        assert!(idx.adjacency().mean_degree() < 16.0);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (idx, queries, _) = setup();
        let filter = |id: usize| id >= 1000;
        let params = SearchParams::default().with_beam_width(64);
        let hits = idx
            .search_filtered(queries.get(0), 5, &params, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|n| n.id >= 1000));
    }

    #[test]
    fn tiny_collection_builds() {
        let mut data = Vectors::new(2);
        for i in 0..5 {
            data.push(&[i as f32, 0.0]).unwrap();
        }
        let idx = NsgIndex::build(data, Metric::Euclidean, NsgConfig::default()).unwrap();
        let hits = idx
            .search(&[2.1, 0.0], 2, &SearchParams::default())
            .unwrap();
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut data = Vectors::new(2);
        data.push(&[0.0, 0.0]).unwrap();
        assert!(NsgIndex::build(
            data,
            Metric::Euclidean,
            NsgConfig {
                r: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
