//! Vamana (Subramanya et al., DiskANN's graph; §2.2(2) "MSNs").
//!
//! A degree-bounded monotonic-search-network approximation built by two
//! passes of: greedy search from the navigating node (medoid) to collect a
//! candidate pool, then α-robust pruning. The first pass uses α = 1 (pure
//! RNG rule), the second the configured α > 1, which re-adds long-range
//! edges that make searches skip across the space — the key to DiskANN's
//! low hop counts.

use crate::graph::{beam_search, beam_search_filtered, medoid, robust_prune, AdjacencyList};
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::rng::Rng;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct VamanaConfig {
    /// Maximum out-degree (DiskANN's `R`).
    pub r: usize,
    /// Candidate-pool size during construction (DiskANN's `L`).
    pub l: usize,
    /// Robust-prune α for the second pass (> 1 keeps long edges).
    pub alpha: f32,
    /// RNG seed (random init graph and pass orders).
    pub seed: u64,
}

impl Default for VamanaConfig {
    fn default() -> Self {
        VamanaConfig {
            r: 24,
            l: 64,
            alpha: 1.2,
            seed: 0xDA7A,
        }
    }
}

/// The in-memory Vamana index.
pub struct VamanaIndex {
    vectors: Vectors,
    metric: Metric,
    adj: AdjacencyList,
    start: usize,
    cfg: VamanaConfig,
    repaired: usize,
}

impl VamanaIndex {
    /// Build the graph.
    pub fn build(vectors: Vectors, metric: Metric, cfg: VamanaConfig) -> Result<Self> {
        if cfg.r == 0 || cfg.l == 0 {
            return Err(Error::InvalidParameter(
                "vamana needs r >= 1 and l >= 1".into(),
            ));
        }
        if cfg.alpha < 1.0 {
            return Err(Error::InvalidParameter("alpha must be >= 1".into()));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())?;
        let n = vectors.len();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let start = medoid(&vectors, &metric);

        // Random R-regular initial graph.
        let mut adj = AdjacencyList::new(n);
        if n > 1 {
            for u in 0..n {
                let mut picks = Vec::with_capacity(cfg.r.min(n - 1));
                while picks.len() < cfg.r.min(n - 1) {
                    let v = rng.below(n);
                    if v != u && !picks.contains(&(v as u32)) {
                        picks.push(v as u32);
                    }
                }
                adj.set_neighbors(u, picks);
            }
        }

        // One build-scoped scratch context serves every construction search.
        let mut ctx = SearchContext::for_index(n);
        let mut order: Vec<usize> = (0..n).collect();
        for pass_alpha in [1.0, cfg.alpha] {
            rng.shuffle(&mut order);
            for &u in &order {
                let q = vectors.get(u);
                let mut pool = beam_search(
                    &adj,
                    &vectors,
                    &metric,
                    q,
                    &[start],
                    cfg.l,
                    cfg.l,
                    &mut ctx,
                    None,
                );
                // Include current out-neighbors as candidates.
                for &v in adj.neighbors(u) {
                    pool.push(Neighbor::new(
                        v as usize,
                        metric.distance(q, vectors.get(v as usize)),
                    ));
                }
                let kept = robust_prune(&vectors, &metric, u, pool, pass_alpha, cfg.r);
                adj.set_neighbors(u, kept.clone());
                // Reverse edges, pruning receivers that overflow.
                for &v in &kept {
                    let v = v as usize;
                    if adj.add_edge(v, u as u32) && adj.neighbors(v).len() > cfg.r {
                        let cands: Vec<Neighbor> = adj
                            .neighbors(v)
                            .iter()
                            .map(|&w| {
                                Neighbor::new(
                                    w as usize,
                                    metric.distance(vectors.get(v), vectors.get(w as usize)),
                                )
                            })
                            .collect();
                        let kept_v = robust_prune(&vectors, &metric, v, cands, pass_alpha, cfg.r);
                        adj.set_neighbors(v, kept_v);
                    }
                }
            }
        }

        // Connectivity repair: α-pruning plus the degree cap can sever
        // whole clusters from the navigating node on strongly clustered
        // data (the cross-cluster edges of the random init graph lose the
        // degree-cap race to near neighbors). Like NSG, attach every
        // unreachable node to its nearest reachable node so one best-first
        // search serves all queries.
        let mut repaired = 0usize;
        loop {
            let mut seen = vec![false; n];
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &v in adj.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v as usize);
                    }
                }
            }
            let Some(orphan) = seen.iter().position(|&s| !s) else {
                break;
            };
            let found = beam_search(
                &adj,
                &vectors,
                &metric,
                vectors.get(orphan),
                &[start],
                1,
                cfg.l,
                &mut ctx,
                None,
            );
            let parent = found.first().map(|nb| nb.id).unwrap_or(start);
            adj.add_edge(parent, orphan as u32);
            repaired += 1;
        }

        Ok(VamanaIndex {
            vectors,
            metric,
            adj,
            start,
            cfg,
            repaired,
        })
    }

    /// Edges added by the final connectivity-repair pass (diagnostics).
    pub fn repaired(&self) -> usize {
        self.repaired
    }

    /// The navigating node (medoid).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Adjacency (consumed by the DiskANN serializer).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// Borrow the vectors (consumed by the DiskANN serializer).
    pub fn vectors(&self) -> &Vectors {
        &self.vectors
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &VamanaConfig {
        &self.cfg
    }
}

impl VectorIndex for VamanaIndex {
    fn name(&self) -> &'static str {
        "vamana"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        let cap = params.beam_width * 16;
        Ok(beam_search_filtered(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            filter,
            cap,
            None,
        ))
    }

    /// Block-first scan: masked traversal that never enters blocked nodes.
    fn search_blocked_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(crate::graph::beam_search_blocked(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            filter,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes(),
            structure_entries: self.adj.edge_count(),
            detail: format!(
                "r={} alpha={} mean_degree={:.1} repaired={}",
                self.cfg.r,
                self.cfg.alpha,
                self.adj.mean_degree(),
                self.repaired
            ),
        }
    }
}

impl std::fmt::Debug for VamanaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VamanaIndex(n={}, r={}, alpha={})",
            self.len(),
            self.cfg.r,
            self.cfg.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;

    fn setup(alpha: f32) -> (VamanaIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(40);
        let data = dataset::clustered(2000, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = VamanaIndex::build(
            data,
            Metric::Euclidean,
            VamanaConfig {
                alpha,
                ..Default::default()
            },
        )
        .unwrap();
        (idx, queries, gt)
    }

    fn recall_of(idx: &VamanaIndex, queries: &Vectors, gt: &GroundTruth, ef: usize) -> f64 {
        let params = SearchParams::default().with_beam_width(ef);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn high_recall() {
        let (idx, queries, gt) = setup(1.2);
        let r = recall_of(&idx, &queries, &gt, 64);
        assert!(r > 0.95, "recall {r}");
    }

    #[test]
    fn degree_bounded_by_r() {
        let (idx, _, _) = setup(1.2);
        for u in 0..idx.len() {
            assert!(idx.adjacency().neighbors(u).len() <= idx.config().r);
        }
    }

    #[test]
    fn graph_reaches_everything_from_medoid() {
        let (idx, _, _) = setup(1.2);
        let reach = idx.adjacency().reachable_from(idx.start());
        assert!(
            reach as f64 > 0.99 * idx.len() as f64,
            "reach {reach}/{}",
            idx.len()
        );
    }

    #[test]
    fn alpha_controls_edge_density() {
        let (a10, _, _) = setup(1.0);
        let (a14, _, _) = setup(1.4);
        assert!(
            a14.adjacency().edge_count() > a10.adjacency().edge_count(),
            "alpha=1.4 ({}) should keep more edges than alpha=1.0 ({})",
            a14.adjacency().edge_count(),
            a10.adjacency().edge_count()
        );
    }

    #[test]
    fn filtered_search_visit_first() {
        let (idx, queries, _) = setup(1.2);
        let filter = |id: usize| id.is_multiple_of(4);
        let params = SearchParams::default().with_beam_width(64);
        for q in queries.iter().take(8) {
            let hits = idx.search_filtered(q, 5, &params, &filter).unwrap();
            assert!(!hits.is_empty());
            assert!(hits.iter().all(|n| n.id % 4 == 0));
        }
    }

    #[test]
    fn singleton_collection() {
        let mut data = Vectors::new(3);
        data.push(&[1.0, 2.0, 3.0]).unwrap();
        let idx = VamanaIndex::build(data, Metric::Euclidean, VamanaConfig::default()).unwrap();
        let hits = idx
            .search(&[1.0, 2.0, 3.0], 5, &SearchParams::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut data = Vectors::new(2);
        data.push(&[0.0, 0.0]).unwrap();
        for cfg in [
            VamanaConfig {
                r: 0,
                ..Default::default()
            },
            VamanaConfig {
                l: 0,
                ..Default::default()
            },
            VamanaConfig {
                alpha: 0.5,
                ..Default::default()
            },
        ] {
            assert!(VamanaIndex::build(data.clone(), Metric::Euclidean, cfg).is_err());
        }
        assert!(
            VamanaIndex::build(Vectors::new(2), Metric::Euclidean, VamanaConfig::default())
                .is_err()
        );
    }
}
