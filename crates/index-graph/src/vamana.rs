//! Vamana (Subramanya et al., DiskANN's graph; §2.2(2) "MSNs").
//!
//! A degree-bounded monotonic-search-network approximation built by two
//! passes of: greedy search from the navigating node (medoid) to collect a
//! candidate pool, then α-robust pruning. The first pass uses α = 1 (pure
//! RNG rule), the second the configured α > 1, which re-adds long-range
//! edges that make searches skip across the space — the key to DiskANN's
//! low hop counts.

use crate::graph::{
    beam_search, beam_search_filtered, medoid, robust_prune, AdjacencyList, NeighborSource,
    SharedAdjacency,
};
use vdb_core::context::{self, SearchContext};
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::parallel::{parallel_for, parallel_queue, BuildOptions};
use vdb_core::rng::Rng;
use vdb_core::topk::Neighbor;
use vdb_core::vector::Vectors;

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct VamanaConfig {
    /// Maximum out-degree (DiskANN's `R`).
    pub r: usize,
    /// Candidate-pool size during construction (DiskANN's `L`).
    pub l: usize,
    /// Robust-prune α for the second pass (> 1 keeps long edges).
    pub alpha: f32,
    /// RNG seed (random init graph and pass orders).
    pub seed: u64,
}

impl Default for VamanaConfig {
    fn default() -> Self {
        VamanaConfig {
            r: 24,
            l: 64,
            alpha: 1.2,
            seed: 0xDA7A,
        }
    }
}

/// The in-memory Vamana index.
pub struct VamanaIndex {
    vectors: Vectors,
    metric: Metric,
    adj: AdjacencyList,
    start: usize,
    cfg: VamanaConfig,
    repaired: usize,
}

impl VamanaIndex {
    fn check_build_inputs(vectors: &Vectors, metric: &Metric, cfg: &VamanaConfig) -> Result<()> {
        if cfg.r == 0 || cfg.l == 0 {
            return Err(Error::InvalidParameter(
                "vamana needs r >= 1 and l >= 1".into(),
            ));
        }
        if cfg.alpha < 1.0 {
            return Err(Error::InvalidParameter("alpha must be >= 1".into()));
        }
        if vectors.is_empty() {
            return Err(Error::EmptyCollection);
        }
        metric.validate(vectors.dim())
    }

    /// Build the graph.
    pub fn build(vectors: Vectors, metric: Metric, cfg: VamanaConfig) -> Result<Self> {
        Self::check_build_inputs(&vectors, &metric, &cfg)?;
        let n = vectors.len();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let start = medoid(&vectors, &metric);

        // Random R-regular initial graph.
        let mut adj = AdjacencyList::new(n);
        if n > 1 {
            for u in 0..n {
                let mut picks = Vec::with_capacity(cfg.r.min(n - 1));
                while picks.len() < cfg.r.min(n - 1) {
                    let v = rng.below(n);
                    if v != u && !picks.contains(&(v as u32)) {
                        picks.push(v as u32);
                    }
                }
                adj.set_neighbors(u, picks);
            }
        }

        // One build-scoped scratch context serves every construction search.
        let mut ctx = SearchContext::for_index(n);
        let mut order: Vec<usize> = (0..n).collect();
        for pass_alpha in [1.0, cfg.alpha] {
            rng.shuffle(&mut order);
            for &u in &order {
                let q = vectors.get(u);
                let mut pool = beam_search(
                    &adj,
                    &vectors,
                    &metric,
                    q,
                    &[start],
                    cfg.l,
                    cfg.l,
                    &mut ctx,
                    None,
                );
                // Include current out-neighbors as candidates.
                for &v in adj.neighbors(u) {
                    pool.push(Neighbor::new(
                        v as usize,
                        metric.distance(q, vectors.get(v as usize)),
                    ));
                }
                let kept = robust_prune(&vectors, &metric, u, pool, pass_alpha, cfg.r);
                adj.set_neighbors(u, kept.clone());
                // Reverse edges, pruning receivers that overflow.
                for &v in &kept {
                    let v = v as usize;
                    if adj.add_edge(v, u as u32) && adj.neighbors(v).len() > cfg.r {
                        let cands: Vec<Neighbor> = adj
                            .neighbors(v)
                            .iter()
                            .map(|&w| {
                                Neighbor::new(
                                    w as usize,
                                    metric.distance(vectors.get(v), vectors.get(w as usize)),
                                )
                            })
                            .collect();
                        let kept_v = robust_prune(&vectors, &metric, v, cands, pass_alpha, cfg.r);
                        adj.set_neighbors(v, kept_v);
                    }
                }
            }
        }

        let repaired = repair_connectivity(&mut adj, &vectors, &metric, start, cfg.l, &mut ctx);

        Ok(VamanaIndex {
            vectors,
            metric,
            adj,
            start,
            cfg,
            repaired,
        })
    }

    /// Build with explicit [`BuildOptions`]. The serial path is exactly
    /// [`VamanaIndex::build`]; the parallel path runs both refinement
    /// passes concurrently over a per-node-locked graph. The random init
    /// graph uses one [`Rng::stream`] per node (thread-count independent)
    /// instead of the serial build's single sequential generator, and the
    /// connectivity-repair pass stays serial in both.
    pub fn build_with(
        vectors: Vectors,
        metric: Metric,
        cfg: VamanaConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        if opts.is_serial() || vectors.len() <= 1 {
            return VamanaIndex::build(vectors, metric, cfg);
        }
        Self::check_build_inputs(&vectors, &metric, &cfg)?;
        let threads = opts.effective_threads();
        let n = vectors.len();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let start = medoid(&vectors, &metric);

        // Random R-regular initial graph, one derived stream per node.
        let shared = SharedAdjacency::new(n);
        {
            let shared = &shared;
            let seed = cfg.seed;
            let target = cfg.r.min(n - 1);
            parallel_for(n, threads, |_, range| {
                for u in range {
                    let mut r = Rng::stream(seed, u as u64);
                    let mut picks: Vec<u32> = Vec::with_capacity(target);
                    while picks.len() < target {
                        let v = r.below(n);
                        if v != u && !picks.contains(&(v as u32)) {
                            picks.push(v as u32);
                        }
                    }
                    shared.set_neighbors(u, picks);
                }
            });
        }

        let mut order: Vec<usize> = (0..n).collect();
        for pass_alpha in [1.0, cfg.alpha] {
            rng.shuffle(&mut order);
            let shared = &shared;
            let order = &order;
            let vectors = &vectors;
            let metric = &metric;
            parallel_queue(n, threads, 16, |_, range| {
                context::with_local(|ctx| {
                    let mut cur: Vec<u32> = Vec::new();
                    for i in range {
                        let u = order[i];
                        let q = vectors.get(u);
                        let mut pool = beam_search(
                            shared,
                            vectors,
                            metric,
                            q,
                            &[start],
                            cfg.l,
                            cfg.l,
                            ctx,
                            None,
                        );
                        // Include current out-neighbors as candidates
                        // (copied out so no lock is held while scoring).
                        cur.clear();
                        shared.with_neighbors(u, |list| cur.extend_from_slice(list));
                        for &v in &cur {
                            pool.push(Neighbor::new(
                                v as usize,
                                metric.distance(q, vectors.get(v as usize)),
                            ));
                        }
                        let kept = robust_prune(vectors, metric, u, pool, pass_alpha, cfg.r);
                        shared.set_neighbors(u, kept.clone());
                        // Reverse edges, pruning receivers that overflow;
                        // one lock per receiver, never two at once.
                        for &v in &kept {
                            let v = v as usize;
                            shared.update(v, |list| {
                                if !list.contains(&(u as u32)) {
                                    list.push(u as u32);
                                    if list.len() > cfg.r {
                                        let cands: Vec<Neighbor> = list
                                            .iter()
                                            .map(|&w| {
                                                Neighbor::new(
                                                    w as usize,
                                                    metric.distance(
                                                        vectors.get(v),
                                                        vectors.get(w as usize),
                                                    ),
                                                )
                                            })
                                            .collect();
                                        *list = robust_prune(
                                            vectors, metric, v, cands, pass_alpha, cfg.r,
                                        );
                                    }
                                }
                            });
                        }
                    }
                });
            });
        }

        let mut adj = shared.into_adjacency();
        let mut ctx = SearchContext::for_index(n);
        let repaired = repair_connectivity(&mut adj, &vectors, &metric, start, cfg.l, &mut ctx);

        Ok(VamanaIndex {
            vectors,
            metric,
            adj,
            start,
            cfg,
            repaired,
        })
    }

    /// Edges added by the final connectivity-repair pass (diagnostics).
    pub fn repaired(&self) -> usize {
        self.repaired
    }

    /// The navigating node (medoid).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Adjacency (consumed by the DiskANN serializer).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// Borrow the vectors (consumed by the DiskANN serializer).
    pub fn vectors(&self) -> &Vectors {
        &self.vectors
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &VamanaConfig {
        &self.cfg
    }
}

/// Connectivity repair shared by the serial and parallel builds:
/// α-pruning plus the degree cap can sever whole clusters from the
/// navigating node on strongly clustered data (the cross-cluster edges
/// of the random init graph lose the degree-cap race to near
/// neighbors). Like NSG, attach every unreachable node to its nearest
/// reachable node so one best-first search serves all queries. Returns
/// the number of edges added. Also used by NSG's spanning pass, which
/// has the same shape.
pub(crate) fn repair_connectivity(
    adj: &mut AdjacencyList,
    vectors: &Vectors,
    metric: &Metric,
    start: usize,
    l: usize,
    ctx: &mut SearchContext,
) -> usize {
    let n = adj.len();
    let mut repaired = 0usize;
    loop {
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in adj.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
        let Some(orphan) = seen.iter().position(|&s| !s) else {
            break;
        };
        let found = beam_search(
            adj,
            vectors,
            metric,
            vectors.get(orphan),
            &[start],
            1,
            l,
            ctx,
            None,
        );
        let parent = found.first().map(|nb| nb.id).unwrap_or(start);
        adj.add_edge(parent, orphan as u32);
        repaired += 1;
    }
    repaired
}

impl VectorIndex for VamanaIndex {
    fn name(&self) -> &'static str {
        "vamana"
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn dim(&self) -> usize {
        self.vectors.dim()
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(beam_search(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            None,
        ))
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        let cap = params.beam_width * 16;
        Ok(beam_search_filtered(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            filter,
            cap,
            None,
        ))
    }

    /// Block-first scan: masked traversal that never enters blocked nodes.
    fn search_blocked_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim(), query)?;
        if k == 0 || self.vectors.is_empty() {
            return Ok(Vec::new());
        }
        Ok(crate::graph::beam_search_blocked(
            &self.adj,
            &self.vectors,
            &self.metric,
            query,
            &[self.start],
            k,
            params.beam_width,
            ctx,
            filter,
            None,
        ))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.adj.memory_bytes(),
            structure_entries: self.adj.edge_count(),
            detail: format!(
                "r={} alpha={} mean_degree={:.1} repaired={}",
                self.cfg.r,
                self.cfg.alpha,
                self.adj.mean_degree(),
                self.repaired
            ),
        }
    }
}

impl std::fmt::Debug for VamanaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VamanaIndex(n={}, r={}, alpha={})",
            self.len(),
            self.cfg.r,
            self.cfg.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;

    fn setup(alpha: f32) -> (VamanaIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(40);
        let data = dataset::clustered(2000, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 25, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let idx = VamanaIndex::build(
            data,
            Metric::Euclidean,
            VamanaConfig {
                alpha,
                ..Default::default()
            },
        )
        .unwrap();
        (idx, queries, gt)
    }

    fn recall_of(idx: &VamanaIndex, queries: &Vectors, gt: &GroundTruth, ef: usize) -> f64 {
        let params = SearchParams::default().with_beam_width(ef);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        gt.recall_batch(&results)
    }

    #[test]
    fn high_recall() {
        let (idx, queries, gt) = setup(1.2);
        let r = recall_of(&idx, &queries, &gt, 64);
        assert!(r > 0.95, "recall {r}");
    }

    #[test]
    fn degree_bounded_by_r() {
        let (idx, _, _) = setup(1.2);
        for u in 0..idx.len() {
            assert!(idx.adjacency().neighbors(u).len() <= idx.config().r);
        }
    }

    #[test]
    fn graph_reaches_everything_from_medoid() {
        let (idx, _, _) = setup(1.2);
        let reach = idx.adjacency().reachable_from(idx.start());
        assert!(
            reach as f64 > 0.99 * idx.len() as f64,
            "reach {reach}/{}",
            idx.len()
        );
    }

    #[test]
    fn alpha_controls_edge_density() {
        let (a10, _, _) = setup(1.0);
        let (a14, _, _) = setup(1.4);
        assert!(
            a14.adjacency().edge_count() > a10.adjacency().edge_count(),
            "alpha=1.4 ({}) should keep more edges than alpha=1.0 ({})",
            a14.adjacency().edge_count(),
            a10.adjacency().edge_count()
        );
    }

    #[test]
    fn filtered_search_visit_first() {
        let (idx, queries, _) = setup(1.2);
        let filter = |id: usize| id.is_multiple_of(4);
        let params = SearchParams::default().with_beam_width(64);
        for q in queries.iter().take(8) {
            let hits = idx.search_filtered(q, 5, &params, &filter).unwrap();
            assert!(!hits.is_empty());
            assert!(hits.iter().all(|n| n.id % 4 == 0));
        }
    }

    #[test]
    fn singleton_collection() {
        let mut data = Vectors::new(3);
        data.push(&[1.0, 2.0, 3.0]).unwrap();
        let idx = VamanaIndex::build(data, Metric::Euclidean, VamanaConfig::default()).unwrap();
        let hits = idx
            .search(&[1.0, 2.0, 3.0], 5, &SearchParams::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut data = Vectors::new(2);
        data.push(&[0.0, 0.0]).unwrap();
        for cfg in [
            VamanaConfig {
                r: 0,
                ..Default::default()
            },
            VamanaConfig {
                l: 0,
                ..Default::default()
            },
            VamanaConfig {
                alpha: 0.5,
                ..Default::default()
            },
        ] {
            assert!(VamanaIndex::build(data.clone(), Metric::Euclidean, cfg).is_err());
        }
        assert!(
            VamanaIndex::build(Vectors::new(2), Metric::Euclidean, VamanaConfig::default())
                .is_err()
        );
    }
}
