//! DiskANN (Subramanya et al.; §2.2(2) "disk-resident Vamana").
//!
//! The Vamana graph lives on disk: each node is a fixed-size record
//! `[degree, neighbors[R], vector[d]]` packed into pages, so expanding one
//! node during search costs exactly one page read. Navigation uses
//! in-memory PQ codes (ADC distances steer the frontier without I/O);
//! exact distances come free with each record read and form the result.
//! Queries therefore cost ~`beam_width` page reads — the metric
//! experiment F7 reports under different cache budgets.

use crate::vamana::VamanaIndex;
use std::path::Path;
use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::parallel::{clamp_threads, parallel_map_chunks, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_quant::{KMeans, KMeansConfig};
use vdb_quant::{PqConfig, ProductQuantizer};
use vdb_storage::{Page, PageCache, PageId, PagedFile, PAGE_SIZE};

const MAGIC: u32 = 0x4449_534B; // "DISK"

/// Per-query scratch kept in the [`SearchContext`] extension slot: lazily
/// built per-cluster ADC tables, the residual buffer they are built from,
/// and the ADC-ordered candidate list. Reusing these across queries keeps
/// the hot path free of per-query heap allocation.
#[derive(Debug, Default)]
struct DiskAnnScratch {
    tables: Vec<Option<vdb_quant::AdcTable>>,
    residual: Vec<f32>,
    cands: Vec<(f32, usize, bool)>,
}

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct DiskAnnConfig {
    /// PQ subspaces for the in-memory navigation codes.
    pub pq_m: usize,
    /// Coarse clusters for *residual* navigation codes: quantizing
    /// `v - centroid` (the IVFADC trick) keeps the codes discriminative
    /// within clusters, where raw-vector PQ cells would be far wider than
    /// true neighbor distances.
    pub nav_nlist: usize,
    /// Page-cache budget in pages.
    pub cache_pages: usize,
}

impl Default for DiskAnnConfig {
    fn default() -> Self {
        DiskAnnConfig {
            pq_m: 8,
            nav_nlist: 64,
            cache_pages: 128,
        }
    }
}

/// The disk-resident index.
pub struct DiskAnnIndex {
    dim: usize,
    n: usize,
    r: usize,
    start: usize,
    metric: Metric,
    pq: ProductQuantizer,
    /// Coarse centroids of the residual navigation codes.
    nav_centroids: vdb_core::vector::Vectors,
    /// Coarse-cluster assignment per node.
    nav_assign: Vec<u32>,
    /// In-memory residual PQ codes, `n × m` bytes.
    codes: Vec<u8>,
    cache: Arc<PageCache>,
    records_per_page: usize,
    data_start: u64,
}

impl DiskAnnIndex {
    /// Serialize a built Vamana graph to `path` and open it (serial).
    pub fn build<P: AsRef<Path>>(
        path: P,
        vamana: &VamanaIndex,
        cfg: &DiskAnnConfig,
    ) -> Result<Self> {
        DiskAnnIndex::build_with(path, vamana, cfg, &BuildOptions::serial())
    }

    /// [`DiskAnnIndex::build`] with explicit [`BuildOptions`]: navigation
    /// k-means, coarse assignment, residual-PQ training, and residual
    /// encoding fan out over threads. Assignment and encoding are pure
    /// per row and PQ subspaces train independently, so for a fixed
    /// quantizer the on-disk image is bit-identical for any thread count.
    /// Page serialization stays serial.
    pub fn build_with<P: AsRef<Path>>(
        path: P,
        vamana: &VamanaIndex,
        cfg: &DiskAnnConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        let vectors = vamana.vectors();
        let dim = vectors.dim();
        let n = vectors.len();
        // Size records by the *actual* maximum out-degree: connectivity
        // repair can push a few nodes past the configured R, and truncating
        // those edges would disconnect the on-disk graph.
        let r = (0..n)
            .map(|u| vamana.adjacency().neighbors(u).len())
            .max()
            .unwrap_or(0)
            .max(vamana.config().r);
        let record_bytes = 4 + r * 4 + dim * 4;
        if record_bytes > PAGE_SIZE {
            return Err(Error::Unsupported(format!(
                "node record ({record_bytes} B) exceeds a page; reduce R or dim"
            )));
        }
        if !dim.is_multiple_of(cfg.pq_m) {
            return Err(Error::InvalidParameter(format!(
                "pq_m={} must divide dim {dim}",
                cfg.pq_m
            )));
        }
        if cfg.nav_nlist == 0 {
            return Err(Error::InvalidParameter("nav_nlist must be positive".into()));
        }
        // Train the residual navigation codes: coarse k-means, then PQ on
        // the residuals (the IVFADC trick applied to graph navigation).
        let coarse = KMeans::train_with(
            vectors,
            &KMeansConfig {
                k: cfg.nav_nlist,
                max_iters: 12,
                tolerance: 1e-4,
                seed: 0xD15C,
            },
            opts,
        )?;
        let nav_centroids = coarse.centroids().clone();
        // Coarse assignment is a pure per-row argmin; fan it out.
        let threads = clamp_threads(opts.effective_threads(), n / 64);
        let nav_assign: Vec<u32> = parallel_map_chunks(n, threads, |_, range| {
            range
                .map(|row| coarse.assign(vectors.get(row)).0 as u32)
                .collect::<Vec<_>>()
        })
        .concat();
        let mut residuals = vdb_core::vector::Vectors::with_capacity(dim, n);
        let mut buf = vec![0.0f32; dim];
        for (row, &c) in vectors.iter().zip(&nav_assign) {
            let cent = nav_centroids.get(c as usize);
            for i in 0..dim {
                buf[i] = row[i] - cent[i];
            }
            residuals.push(&buf)?;
        }
        let pq = ProductQuantizer::train_with(&residuals, &PqConfig::new(cfg.pq_m), opts)?;
        let m = pq.code_len();
        let codes = pq.encode_all(&residuals, opts)?;
        let nlist = nav_centroids.len();

        // Layout.
        let records_per_page = PAGE_SIZE / record_bytes;
        let ksub = pq.ksub();
        let dsub = dim / m;
        let codebook_pages = (m * ksub * dsub * 4).div_ceil(PAGE_SIZE) as u64;
        let centroid_pages = (nlist * dim * 4).div_ceil(PAGE_SIZE) as u64;
        let assign_pages = (n * 4).div_ceil(PAGE_SIZE) as u64;
        let code_pages = (n * m).div_ceil(PAGE_SIZE) as u64;
        let data_pages = (n as u64).div_ceil(records_per_page as u64);
        let file = Arc::new(PagedFile::create(path)?);
        file.allocate(
            1 + codebook_pages + centroid_pages + assign_pages + code_pages + data_pages,
        )?;

        let mut header = Page::zeroed();
        header.write_u32(0, MAGIC);
        header.write_u32(4, dim as u32);
        header.write_u32(8, n as u32);
        header.write_u32(12, r as u32);
        header.write_u32(16, vamana.start() as u32);
        header.write_u32(20, m as u32);
        header.write_u32(24, ksub as u32);
        header.write_u32(28, nlist as u32);
        file.write_page(PageId(0), &header)?;

        // Codebooks.
        let mut cb_bytes = Vec::with_capacity(m * ksub * dsub * 4);
        for &x in pq.codebooks() {
            cb_bytes.extend_from_slice(&x.to_le_bytes());
        }
        write_run(&file, 1, &cb_bytes)?;
        // Coarse centroids + assignments + codes.
        let mut cent_bytes = Vec::with_capacity(nlist * dim * 4);
        for &x in nav_centroids.as_flat() {
            cent_bytes.extend_from_slice(&x.to_le_bytes());
        }
        write_run(&file, 1 + codebook_pages, &cent_bytes)?;
        let mut assign_bytes = Vec::with_capacity(n * 4);
        for &a in &nav_assign {
            assign_bytes.extend_from_slice(&a.to_le_bytes());
        }
        write_run(&file, 1 + codebook_pages + centroid_pages, &assign_bytes)?;
        write_run(
            &file,
            1 + codebook_pages + centroid_pages + assign_pages,
            &codes,
        )?;

        // Node records.
        let data_start = 1 + codebook_pages + centroid_pages + assign_pages + code_pages;
        let adj = vamana.adjacency();
        let mut page = Page::zeroed();
        let mut current = u64::MAX;
        for u in 0..n {
            let pid = data_start + (u / records_per_page) as u64;
            if pid != current {
                if current != u64::MAX {
                    file.write_page(PageId(current), &page)?;
                }
                page = Page::zeroed();
                current = pid;
            }
            let base = (u % records_per_page) * record_bytes;
            let nbrs = adj.neighbors(u);
            page.write_u32(base, nbrs.len().min(r) as u32);
            for (j, &v) in nbrs.iter().take(r).enumerate() {
                page.write_u32(base + 4 + j * 4, v);
            }
            let v = vectors.get(u);
            for (j, &x) in v.iter().enumerate() {
                page.write_f32(base + 4 + r * 4 + j * 4, x);
            }
        }
        if current != u64::MAX {
            file.write_page(PageId(current), &page)?;
        }
        file.sync()?;

        Ok(DiskAnnIndex {
            dim,
            n,
            r,
            start: vamana.start(),
            metric: vamana.metric().clone(),
            pq,
            nav_centroids,
            nav_assign,
            codes,
            cache: Arc::new(PageCache::new(file, cfg.cache_pages)),
            records_per_page,
            data_start,
        })
    }

    /// Reopen a previously built index.
    pub fn open<P: AsRef<Path>>(path: P, metric: Metric, cache_pages: usize) -> Result<Self> {
        let file = Arc::new(PagedFile::open(path)?);
        let header = file.read_page(PageId(0))?;
        if header.read_u32(0) != MAGIC {
            return Err(Error::Corrupt("bad DiskANN magic".into()));
        }
        let dim = header.read_u32(4) as usize;
        let n = header.read_u32(8) as usize;
        let r = header.read_u32(12) as usize;
        let start = header.read_u32(16) as usize;
        let m = header.read_u32(20) as usize;
        let ksub = header.read_u32(24) as usize;
        let nlist = header.read_u32(28) as usize;
        if dim == 0 || m == 0 || !dim.is_multiple_of(m) || nlist == 0 {
            return Err(Error::Corrupt("bad DiskANN header".into()));
        }
        metric.validate(dim)?;
        let dsub = dim / m;
        let codebook_pages = (m * ksub * dsub * 4).div_ceil(PAGE_SIZE) as u64;
        let centroid_pages = (nlist * dim * 4).div_ceil(PAGE_SIZE) as u64;
        let assign_pages = (n * 4).div_ceil(PAGE_SIZE) as u64;
        let code_pages = (n * m).div_ceil(PAGE_SIZE) as u64;
        let cb_bytes = read_run(&file, 1, m * ksub * dsub * 4)?;
        let codebooks: Vec<f32> = cb_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let pq = ProductQuantizer::from_parts(dim, m, ksub, codebooks)?;
        let cent_bytes = read_run(&file, 1 + codebook_pages, nlist * dim * 4)?;
        let nav_centroids = vdb_core::vector::Vectors::from_flat(
            dim,
            cent_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        )?;
        let assign_bytes = read_run(&file, 1 + codebook_pages + centroid_pages, n * 4)?;
        let nav_assign: Vec<u32> = assign_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let codes = read_run(
            &file,
            1 + codebook_pages + centroid_pages + assign_pages,
            n * m,
        )?;
        let record_bytes = 4 + r * 4 + dim * 4;
        Ok(DiskAnnIndex {
            dim,
            n,
            r,
            start,
            metric,
            pq,
            nav_centroids,
            nav_assign,
            codes,
            cache: Arc::new(PageCache::new(file, cache_pages)),
            records_per_page: PAGE_SIZE / record_bytes,
            data_start: 1 + codebook_pages + centroid_pages + assign_pages + code_pages,
        })
    }

    /// The page cache (F7 instrumentation).
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Bytes of memory-resident navigation state per vector.
    pub fn memory_bytes_per_vector(&self) -> usize {
        self.pq.code_len()
    }

    /// Read node `u`'s record: (neighbors, exact distance to `query`).
    fn read_node(&self, u: usize, query: &[f32]) -> Result<(Vec<u32>, f32)> {
        let record_bytes = 4 + self.r * 4 + self.dim * 4;
        let pid = self.data_start + (u / self.records_per_page) as u64;
        let page = self.cache.read(PageId(pid))?;
        let base = (u % self.records_per_page) * record_bytes;
        let degree = page.read_u32(base) as usize;
        let mut nbrs = Vec::with_capacity(degree);
        for j in 0..degree.min(self.r) {
            nbrs.push(page.read_u32(base + 4 + j * 4));
        }
        // Exact distance from the stored vector.
        let voff = base + 4 + self.r * 4;
        let dist = match self.metric {
            Metric::SquaredEuclidean | Metric::Euclidean => {
                let mut acc = 0.0f32;
                for j in 0..self.dim {
                    let d = page.read_f32(voff + j * 4) - query[j];
                    acc += d * d;
                }
                if matches!(self.metric, Metric::Euclidean) {
                    acc.sqrt()
                } else {
                    acc
                }
            }
            _ => {
                let mut v = vec![0.0f32; self.dim];
                for (j, o) in v.iter_mut().enumerate() {
                    *o = page.read_f32(voff + j * 4);
                }
                self.metric.distance(query, &v)
            }
        };
        Ok((nbrs, dist))
    }

    fn scan(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Result<Vec<Neighbor>> {
        let beam = params.beam_width.max(k);
        let m = self.pq.code_len();
        // Residual codes need one ADC table per coarse cluster, built from
        // the query's residual against that cluster's centroid. Tables are
        // materialized lazily: a query touches only a handful of clusters.
        // The table slots, residual buffer, and candidate list live in the
        // context's extension slot so a reused context allocates nothing.
        ctx.begin(self.n);
        let DiskAnnScratch {
            mut tables,
            mut residual,
            mut cands,
        } = std::mem::take(ctx.ext::<DiskAnnScratch>());
        tables.clear();
        tables.resize_with(self.nav_centroids.len(), || None);
        residual.clear();
        residual.resize(self.dim, 0.0);
        cands.clear();
        let mut adc = |u: usize, tables: &mut Vec<Option<vdb_quant::AdcTable>>| -> Result<f32> {
            let c = self.nav_assign[u] as usize;
            if tables[c].is_none() {
                let cent = self.nav_centroids.get(c);
                for i in 0..self.dim {
                    residual[i] = query[i] - cent[i];
                }
                tables[c] = Some(self.pq.adc_table(&residual)?);
            }
            Ok(tables[c]
                .as_ref()
                .expect("just built")
                .distance(&self.codes[u * m..(u + 1) * m]))
        };

        // Candidate list ordered by ADC distance; expand the closest
        // unexpanded entry (one page read each) until the top `beam` are
        // all expanded — the DiskANN search loop.
        ctx.visited.visit(self.start);
        let d0 = adc(self.start, &mut tables)?;
        cands.push((d0, self.start, false));
        ctx.rerank.reset(k.max(params.rerank.min(beam)));
        // Expand the closest unexpanded candidate within the top `beam`
        // until none remains (the DiskANN search loop).
        while let Some(pos) = cands
            .iter()
            .take(beam)
            .position(|&(_, _, expanded)| !expanded)
        {
            cands[pos].2 = true;
            let u = cands[pos].1;
            let (nbrs, dist) = self.read_node(u, query)?;
            let accept = filter.is_none_or(|f| f.accept(u));
            if accept {
                ctx.rerank.push(Neighbor::new(u, dist));
            }
            for &v in &nbrs {
                let v = v as usize;
                if !ctx.visited.visit(v) {
                    continue;
                }
                let d = adc(v, &mut tables)?;
                // Insert in sorted position.
                let at = cands.partition_point(|&(cd, _, _)| cd <= d);
                cands.insert(at, (d, v, false));
            }
            if cands.len() > beam * 4 {
                cands.truncate(beam * 4);
            }
        }
        // Release the closure's borrow of `residual` before returning it
        // to the scratch slot.
        let _ = adc;
        let mut out = ctx.rerank.drain_sorted();
        out.truncate(k);
        *ctx.ext::<DiskAnnScratch>() = DiskAnnScratch {
            tables,
            residual,
            cands,
        };
        Ok(out)
    }
}

impl VectorIndex for DiskAnnIndex {
    fn name(&self) -> &'static str {
        "diskann"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, None)
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, Some(filter))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.codes.len() + self.pq.memory_bytes(),
            structure_entries: self.n,
            detail: format!("r={} pq_m={}", self.r, self.pq.m()),
        }
    }
}

impl std::fmt::Debug for DiskAnnIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DiskAnnIndex(n={}, r={})", self.n, self.r)
    }
}

fn write_run(file: &PagedFile, start_page: u64, bytes: &[u8]) -> Result<()> {
    for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
        let mut page = Page::zeroed();
        page.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
        file.write_page(PageId(start_page + i as u64), &page)?;
    }
    Ok(())
}

fn read_run(file: &PagedFile, start_page: u64, len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len.div_ceil(PAGE_SIZE) {
        let page = file.read_page(PageId(start_page + i as u64))?;
        let take = (len - out.len()).min(PAGE_SIZE);
        out.extend_from_slice(&page.bytes()[..take]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vamana::{VamanaConfig, VamanaIndex};
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;
    use vdb_core::vector::Vectors;
    use vdb_storage::TempDir;

    fn setup(cache_pages: usize) -> (TempDir, DiskAnnIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(70);
        let data = dataset::clustered(1500, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let dir = TempDir::new("diskann").unwrap();
        let idx = DiskAnnIndex::build(
            dir.file("d.idx"),
            &vam,
            &DiskAnnConfig {
                pq_m: 8,
                nav_nlist: 64,
                cache_pages,
            },
        )
        .unwrap();
        (dir, idx, queries, gt)
    }

    #[test]
    fn high_recall_from_disk() {
        let (_d, idx, queries, gt) = setup(256);
        let params = SearchParams::default().with_beam_width(64);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn io_per_query_close_to_beam_width() {
        let (_d, idx, queries, _) = setup(0); // cache disabled: count raw reads
        let params = SearchParams::default().with_beam_width(32);
        idx.cache().reset_stats();
        let nq = queries.len() as u64;
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        let reads = idx.cache().stats().misses;
        let per_query = reads as f64 / nq as f64;
        assert!(
            per_query < 100.0,
            "page reads per query should be bounded near the beam width, got {per_query}"
        );
        assert!(
            per_query >= 16.0,
            "a real traversal reads many nodes, got {per_query}"
        );
    }

    #[test]
    fn warm_cache_eliminates_most_io() {
        let (_d, idx, queries, _) = setup(100_000);
        let params = SearchParams::default().with_beam_width(32);
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        idx.cache().reset_stats();
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        assert!(idx.cache().stats().hit_ratio() > 0.95);
    }

    #[test]
    fn reopen_matches_built() {
        let mut rng = Rng::seed_from_u64(71);
        let data = dataset::clustered(500, 8, 6, 0.4, &mut rng).vectors;
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let dir = TempDir::new("diskann-reopen").unwrap();
        let path = dir.file("r.idx");
        let built = DiskAnnIndex::build(&path, &vam, &DiskAnnConfig::default()).unwrap();
        let params = SearchParams::default().with_beam_width(32);
        let q = data.get(7);
        let before = built.search(q, 5, &params).unwrap();
        drop(built);
        let reopened = DiskAnnIndex::open(&path, Metric::Euclidean, 64).unwrap();
        assert_eq!(reopened.len(), 500);
        let after = reopened.search(q, 5, &params).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn memory_footprint_is_codes_not_vectors() {
        let (_d, idx, _, _) = setup(64);
        // 8 bytes of PQ code per vector vs 64 bytes of raw vector.
        assert_eq!(idx.memory_bytes_per_vector(), 8);
        assert!(idx.stats().memory_bytes < idx.len() * 16 * 4 / 2);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (_d, idx, queries, _) = setup(256);
        let filter = |id: usize| id.is_multiple_of(2);
        let params = SearchParams::default().with_beam_width(64);
        let hits = idx
            .search_filtered(queries.get(0), 5, &params, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|n| n.id % 2 == 0));
    }

    #[test]
    fn corrupt_file_detected() {
        let dir = TempDir::new("diskann-bad").unwrap();
        let path = dir.file("bad.idx");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            DiskAnnIndex::open(&path, Metric::Euclidean, 4),
            Err(Error::Corrupt(_))
        ));
    }
}
