//! DiskANN (Subramanya et al.; §2.2(2) "disk-resident Vamana").
//!
//! The Vamana graph lives on disk: each node is a fixed-size record
//! `[degree, neighbors[R], vector[d]]` packed into pages, so expanding one
//! node during search costs exactly one page read. Navigation uses
//! in-memory PQ codes (ADC distances steer the frontier without I/O);
//! exact distances come free with each record read and form the result.
//!
//! Three disk-serving techniques keep that read stream fast (DESIGN.md
//! §12, experiment D1):
//!
//! - **Cache-aware layout** (`packed_layout`, on-disk layout version 1):
//!   records are written in BFS order from the entry point, so the nodes
//!   a beam search expands consecutively tend to share 4 KiB pages and
//!   one page read serves several expansions. A node→slot map travels
//!   with the file; version-0 images (identity order, the original
//!   format) still load byte-for-byte.
//! - **Pinned hot set**: the first `hot_pages` data pages — the entry
//!   point's BFS neighborhood every query traverses — are pinned in the
//!   [`PageCache`] outside the eviction budget. (Navigation centroids and
//!   PQ codebooks are memory-resident fields by construction.)
//! - **Asynchronous beam prefetch**: after each expansion the pages of
//!   the few best frontier candidates — the nodes the beam will expand
//!   next — are queued on the [`vdb_storage::prefetch`] worker pool, so
//!   their I/O overlaps the ADC scoring of the current expansion. The
//!   lookahead is bounded (not the whole frontier): most frontier entries
//!   are never expanded, and prefetching them would multiply disk reads
//!   and churn the cache for no overlap. Prefetch only warms the cache —
//!   results are bit-identical with it on or off.

use crate::vamana::VamanaIndex;
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vdb_core::context::SearchContext;
use vdb_core::error::{Error, Result};
use vdb_core::index::{check_query, IndexStats, RowFilter, SearchParams, VectorIndex};
use vdb_core::metric::Metric;
use vdb_core::parallel::{clamp_threads, parallel_map_chunks, BuildOptions};
use vdb_core::topk::Neighbor;
use vdb_quant::{AdcTable, KMeans, KMeansConfig};
use vdb_quant::{PqConfig, ProductQuantizer};
use vdb_storage::{prefetch, Page, PageCache, PageId, PagedFile, PAGE_SIZE};

const MAGIC: u32 = 0x4449_534B; // "DISK"
/// On-disk layout versions (header word 8). Version 0 is the original
/// identity-ordered record layout — pre-existing images read the zeroed
/// header word as exactly this. Version 1 packs records in BFS order and
/// stores a node→slot run between the code run and the data pages.
const LAYOUT_IDENTITY: u32 = 0;
const LAYOUT_PACKED: u32 = 1;

/// How many of the best frontier candidates to prefetch after each
/// expansion. Matches the default worker count of the prefetch pool: in
/// steady state one read per worker is in flight while the current
/// expansion's ADC batches run.
const PREFETCH_LOOKAHEAD: usize = 4;

/// Default prefetch setting: on, unless `VDB_DISK_PREFETCH=0`.
pub(crate) fn prefetch_default() -> bool {
    !matches!(std::env::var("VDB_DISK_PREFETCH").as_deref(), Ok("0"))
}

/// Per-query scratch kept in the [`SearchContext`] extension slot: lazily
/// built per-cluster ADC tables, the residual buffer they are built from,
/// the `(cluster, node)` pairs of one expansion batch, and the gathered
/// code bytes the batch ADC kernel scans. Reusing these across queries
/// keeps the hot path free of per-query heap allocation.
#[derive(Debug, Default)]
struct DiskAnnScratch {
    tables: Vec<Option<AdcTable>>,
    residual: Vec<f32>,
    pairs: Vec<(u32, u32)>,
    codebuf: Vec<u8>,
}

/// Build-time configuration.
#[derive(Debug, Clone)]
pub struct DiskAnnConfig {
    /// PQ subspaces for the in-memory navigation codes.
    pub pq_m: usize,
    /// Coarse clusters for *residual* navigation codes: quantizing
    /// `v - centroid` (the IVFADC trick) keeps the codes discriminative
    /// within clusters, where raw-vector PQ cells would be far wider than
    /// true neighbor distances.
    pub nav_nlist: usize,
    /// Page-cache budget in pages.
    pub cache_pages: usize,
    /// Write records in BFS order from the entry point (layout v1) so
    /// consecutively expanded nodes share pages. `false` reproduces the
    /// original identity layout (v0) byte-for-byte.
    pub packed_layout: bool,
    /// Entry-region data pages pinned in the cache (skipped when the
    /// cache budget is zero, which models "no memory at all").
    pub hot_pages: usize,
    /// Enqueue frontier page reads on the async prefetch pool.
    pub prefetch: bool,
}

impl Default for DiskAnnConfig {
    fn default() -> Self {
        DiskAnnConfig {
            pq_m: 8,
            nav_nlist: 64,
            cache_pages: 128,
            packed_layout: true,
            hot_pages: 4,
            prefetch: prefetch_default(),
        }
    }
}

/// The disk-resident index.
pub struct DiskAnnIndex {
    dim: usize,
    n: usize,
    r: usize,
    start: usize,
    metric: Metric,
    pq: ProductQuantizer,
    /// Coarse centroids of the residual navigation codes.
    nav_centroids: vdb_core::vector::Vectors,
    /// Coarse-cluster assignment per node.
    nav_assign: Vec<u32>,
    /// In-memory residual PQ codes, `n × m` bytes.
    codes: Vec<u8>,
    /// Node → record slot for the packed layout; empty = identity (v0).
    slot_of: Vec<u32>,
    cache: Arc<PageCache>,
    records_per_page: usize,
    data_start: u64,
    prefetch: AtomicBool,
}

/// BFS order over the graph from `start`; unreachable nodes (if any)
/// append in id order. Returns `slot_of[node]`.
fn bfs_slots(vamana: &VamanaIndex, n: usize) -> Vec<u32> {
    let adj = vamana.adjacency();
    let mut slot_of = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    if n > 0 {
        let s = vamana.start().min(n - 1);
        slot_of[s] = next;
        next += 1;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        for &v in adj.neighbors(u) {
            let v = v as usize;
            if v < n && slot_of[v] == u32::MAX {
                slot_of[v] = next;
                next += 1;
                queue.push_back(v);
            }
        }
    }
    for s in slot_of.iter_mut() {
        if *s == u32::MAX {
            *s = next;
            next += 1;
        }
    }
    slot_of
}

impl DiskAnnIndex {
    /// Serialize a built Vamana graph to `path` and open it (serial).
    pub fn build<P: AsRef<Path>>(
        path: P,
        vamana: &VamanaIndex,
        cfg: &DiskAnnConfig,
    ) -> Result<Self> {
        DiskAnnIndex::build_with(path, vamana, cfg, &BuildOptions::serial())
    }

    /// [`DiskAnnIndex::build`] with explicit [`BuildOptions`]: navigation
    /// k-means, coarse assignment, residual-PQ training, and residual
    /// encoding fan out over threads. Assignment and encoding are pure
    /// per row and PQ subspaces train independently, so for a fixed
    /// quantizer the on-disk image is bit-identical for any thread count.
    /// Page serialization stays serial.
    pub fn build_with<P: AsRef<Path>>(
        path: P,
        vamana: &VamanaIndex,
        cfg: &DiskAnnConfig,
        opts: &BuildOptions,
    ) -> Result<Self> {
        let vectors = vamana.vectors();
        let dim = vectors.dim();
        let n = vectors.len();
        // Size records by the *actual* maximum out-degree: connectivity
        // repair can push a few nodes past the configured R, and truncating
        // those edges would disconnect the on-disk graph.
        let r = (0..n)
            .map(|u| vamana.adjacency().neighbors(u).len())
            .max()
            .unwrap_or(0)
            .max(vamana.config().r);
        let record_bytes = 4 + r * 4 + dim * 4;
        if record_bytes > PAGE_SIZE {
            return Err(Error::Unsupported(format!(
                "node record ({record_bytes} B) exceeds a page; reduce R or dim"
            )));
        }
        if !dim.is_multiple_of(cfg.pq_m) {
            return Err(Error::InvalidParameter(format!(
                "pq_m={} must divide dim {dim}",
                cfg.pq_m
            )));
        }
        if cfg.nav_nlist == 0 {
            return Err(Error::InvalidParameter("nav_nlist must be positive".into()));
        }
        // Train the residual navigation codes: coarse k-means, then PQ on
        // the residuals (the IVFADC trick applied to graph navigation).
        let coarse = KMeans::train_with(
            vectors,
            &KMeansConfig {
                k: cfg.nav_nlist,
                max_iters: 12,
                tolerance: 1e-4,
                seed: 0xD15C,
            },
            opts,
        )?;
        let nav_centroids = coarse.centroids().clone();
        // Coarse assignment is a pure per-row argmin; fan it out.
        let threads = clamp_threads(opts.effective_threads(), n / 64);
        let nav_assign: Vec<u32> = parallel_map_chunks(n, threads, |_, range| {
            range
                .map(|row| coarse.assign(vectors.get(row)).0 as u32)
                .collect::<Vec<_>>()
        })
        .concat();
        let mut residuals = vdb_core::vector::Vectors::with_capacity(dim, n);
        let mut buf = vec![0.0f32; dim];
        for (row, &c) in vectors.iter().zip(&nav_assign) {
            let cent = nav_centroids.get(c as usize);
            for i in 0..dim {
                buf[i] = row[i] - cent[i];
            }
            residuals.push(&buf)?;
        }
        let pq = ProductQuantizer::train_with(&residuals, &PqConfig::new(cfg.pq_m), opts)?;
        let m = pq.code_len();
        let codes = pq.encode_all(&residuals, opts)?;
        let nlist = nav_centroids.len();

        // Record placement: BFS-packed (v1) or identity (v0, the original
        // format — written bit-for-bit when `packed_layout` is off).
        let layout = if cfg.packed_layout {
            LAYOUT_PACKED
        } else {
            LAYOUT_IDENTITY
        };
        let slot_of: Vec<u32> = if layout == LAYOUT_PACKED {
            bfs_slots(vamana, n)
        } else {
            Vec::new()
        };

        // Layout.
        let records_per_page = PAGE_SIZE / record_bytes;
        let ksub = pq.ksub();
        let dsub = dim / m;
        let codebook_pages = (m * ksub * dsub * 4).div_ceil(PAGE_SIZE) as u64;
        let centroid_pages = (nlist * dim * 4).div_ceil(PAGE_SIZE) as u64;
        let assign_pages = (n * 4).div_ceil(PAGE_SIZE) as u64;
        let code_pages = (n * m).div_ceil(PAGE_SIZE) as u64;
        let slot_pages = if layout == LAYOUT_PACKED {
            (n * 4).div_ceil(PAGE_SIZE) as u64
        } else {
            0
        };
        let data_pages = (n as u64).div_ceil(records_per_page as u64);
        let file = Arc::new(PagedFile::create(path)?);
        file.allocate(
            1 + codebook_pages
                + centroid_pages
                + assign_pages
                + code_pages
                + slot_pages
                + data_pages,
        )?;

        let mut header = Page::zeroed();
        header.write_u32(0, MAGIC);
        header.write_u32(4, dim as u32);
        header.write_u32(8, n as u32);
        header.write_u32(12, r as u32);
        header.write_u32(16, vamana.start() as u32);
        header.write_u32(20, m as u32);
        header.write_u32(24, ksub as u32);
        header.write_u32(28, nlist as u32);
        header.write_u32(32, layout);
        file.write_page(PageId(0), &header)?;

        // Codebooks.
        let mut cb_bytes = Vec::with_capacity(m * ksub * dsub * 4);
        for &x in pq.codebooks() {
            cb_bytes.extend_from_slice(&x.to_le_bytes());
        }
        write_run(&file, 1, &cb_bytes)?;
        // Coarse centroids + assignments + codes (+ slot map when packed).
        let mut cent_bytes = Vec::with_capacity(nlist * dim * 4);
        for &x in nav_centroids.as_flat() {
            cent_bytes.extend_from_slice(&x.to_le_bytes());
        }
        write_run(&file, 1 + codebook_pages, &cent_bytes)?;
        let mut assign_bytes = Vec::with_capacity(n * 4);
        for &a in &nav_assign {
            assign_bytes.extend_from_slice(&a.to_le_bytes());
        }
        write_run(&file, 1 + codebook_pages + centroid_pages, &assign_bytes)?;
        write_run(
            &file,
            1 + codebook_pages + centroid_pages + assign_pages,
            &codes,
        )?;
        if layout == LAYOUT_PACKED {
            let mut slot_bytes = Vec::with_capacity(n * 4);
            for &s in &slot_of {
                slot_bytes.extend_from_slice(&s.to_le_bytes());
            }
            write_run(
                &file,
                1 + codebook_pages + centroid_pages + assign_pages + code_pages,
                &slot_bytes,
            )?;
        }

        // Node records, written in slot order so BFS-adjacent nodes share
        // pages under the packed layout.
        let data_start =
            1 + codebook_pages + centroid_pages + assign_pages + code_pages + slot_pages;
        let adj = vamana.adjacency();
        let mut page = Page::zeroed();
        let mut current = u64::MAX;
        // node_at[slot] = node id.
        let node_at: Vec<usize> = if layout == LAYOUT_PACKED {
            let mut node_at = vec![0usize; n];
            for (node, &slot) in slot_of.iter().enumerate() {
                node_at[slot as usize] = node;
            }
            node_at
        } else {
            (0..n).collect()
        };
        for (slot, &u) in node_at.iter().enumerate() {
            let pid = data_start + (slot / records_per_page) as u64;
            if pid != current {
                if current != u64::MAX {
                    file.write_page(PageId(current), &page)?;
                }
                page = Page::zeroed();
                current = pid;
            }
            let base = (slot % records_per_page) * record_bytes;
            let nbrs = adj.neighbors(u);
            page.write_u32(base, nbrs.len().min(r) as u32);
            for (j, &v) in nbrs.iter().take(r).enumerate() {
                page.write_u32(base + 4 + j * 4, v);
            }
            let v = vectors.get(u);
            for (j, &x) in v.iter().enumerate() {
                page.write_f32(base + 4 + r * 4 + j * 4, x);
            }
        }
        if current != u64::MAX {
            file.write_page(PageId(current), &page)?;
        }
        file.sync()?;

        let cache = Arc::new(PageCache::new(file, cfg.cache_pages));
        let idx = DiskAnnIndex {
            dim,
            n,
            r,
            start: vamana.start(),
            metric: vamana.metric().clone(),
            pq,
            nav_centroids,
            nav_assign,
            codes,
            slot_of,
            cache,
            records_per_page,
            data_start,
            prefetch: AtomicBool::new(cfg.prefetch),
        };
        idx.pin_hot_set(cfg.hot_pages)?;
        Ok(idx)
    }

    /// Reopen a previously built index. Both layout versions load: v0
    /// (identity order, the original format) and v1 (BFS-packed).
    pub fn open<P: AsRef<Path>>(path: P, metric: Metric, cache_pages: usize) -> Result<Self> {
        let file = Arc::new(PagedFile::open(path)?);
        let header = file.read_page(PageId(0))?;
        if header.read_u32(0) != MAGIC {
            return Err(Error::Corrupt("bad DiskANN magic".into()));
        }
        let dim = header.read_u32(4) as usize;
        let n = header.read_u32(8) as usize;
        let r = header.read_u32(12) as usize;
        let start = header.read_u32(16) as usize;
        let m = header.read_u32(20) as usize;
        let ksub = header.read_u32(24) as usize;
        let nlist = header.read_u32(28) as usize;
        let layout = header.read_u32(32);
        if dim == 0 || m == 0 || !dim.is_multiple_of(m) || nlist == 0 {
            return Err(Error::Corrupt("bad DiskANN header".into()));
        }
        if layout > LAYOUT_PACKED {
            return Err(Error::Corrupt(format!(
                "unknown DiskANN layout version {layout}"
            )));
        }
        metric.validate(dim)?;
        let dsub = dim / m;
        let codebook_pages = (m * ksub * dsub * 4).div_ceil(PAGE_SIZE) as u64;
        let centroid_pages = (nlist * dim * 4).div_ceil(PAGE_SIZE) as u64;
        let assign_pages = (n * 4).div_ceil(PAGE_SIZE) as u64;
        let code_pages = (n * m).div_ceil(PAGE_SIZE) as u64;
        let cb_bytes = read_run(&file, 1, m * ksub * dsub * 4)?;
        let codebooks: Vec<f32> = cb_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let pq = ProductQuantizer::from_parts(dim, m, ksub, codebooks)?;
        let cent_bytes = read_run(&file, 1 + codebook_pages, nlist * dim * 4)?;
        let nav_centroids = vdb_core::vector::Vectors::from_flat(
            dim,
            cent_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        )?;
        let assign_bytes = read_run(&file, 1 + codebook_pages + centroid_pages, n * 4)?;
        let nav_assign: Vec<u32> = assign_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let codes = read_run(
            &file,
            1 + codebook_pages + centroid_pages + assign_pages,
            n * m,
        )?;
        let (slot_of, slot_pages) = if layout == LAYOUT_PACKED {
            let bytes = read_run(
                &file,
                1 + codebook_pages + centroid_pages + assign_pages + code_pages,
                n * 4,
            )?;
            let slots: Vec<u32> = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            if slots.iter().any(|&s| s as usize >= n) {
                return Err(Error::Corrupt("DiskANN slot map out of range".into()));
            }
            (slots, (n * 4).div_ceil(PAGE_SIZE) as u64)
        } else {
            (Vec::new(), 0)
        };
        let record_bytes = 4 + r * 4 + dim * 4;
        let idx = DiskAnnIndex {
            dim,
            n,
            r,
            start,
            metric,
            pq,
            nav_centroids,
            nav_assign,
            codes,
            slot_of,
            cache: Arc::new(PageCache::new(file, cache_pages)),
            records_per_page: PAGE_SIZE / record_bytes,
            data_start: 1
                + codebook_pages
                + centroid_pages
                + assign_pages
                + code_pages
                + slot_pages,
            prefetch: AtomicBool::new(prefetch_default()),
        };
        idx.pin_hot_set(DiskAnnConfig::default().hot_pages)?;
        Ok(idx)
    }

    /// Pin the entry-region pages: the page holding the start node plus
    /// the first `hot` data pages (under the packed layout these are the
    /// start's BFS neighborhood — the pages every query touches first).
    /// Skipped when the cache budget is zero (no memory modeled at all).
    fn pin_hot_set(&self, hot: usize) -> Result<()> {
        if self.cache.budget() == 0 || self.n == 0 || hot == 0 {
            return Ok(());
        }
        let data_pages = (self.n as u64).div_ceil(self.records_per_page as u64);
        let mut ids = vec![self.page_of(self.start)];
        ids.extend((0..(hot as u64).min(data_pages)).map(|p| PageId(self.data_start + p)));
        self.cache.pin(ids)?;
        Ok(())
    }

    /// Toggle asynchronous frontier prefetch (results are identical
    /// either way; only I/O timing changes).
    pub fn set_prefetch(&self, enabled: bool) {
        self.prefetch.store(enabled, Ordering::Relaxed);
    }

    /// The page cache (F7/D1 instrumentation).
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// On-disk layout version (0 = identity, 1 = BFS-packed).
    pub fn layout_version(&self) -> u32 {
        if self.slot_of.is_empty() {
            LAYOUT_IDENTITY
        } else {
            LAYOUT_PACKED
        }
    }

    /// Bytes of memory-resident navigation state per vector.
    pub fn memory_bytes_per_vector(&self) -> usize {
        self.pq.code_len() + if self.slot_of.is_empty() { 0 } else { 4 }
    }

    /// Record slot of node `u` under the active layout.
    #[inline]
    fn slot(&self, u: usize) -> usize {
        if self.slot_of.is_empty() {
            u
        } else {
            self.slot_of[u] as usize
        }
    }

    /// Data page holding node `u`'s record.
    #[inline]
    fn page_of(&self, u: usize) -> PageId {
        PageId(self.data_start + (self.slot(u) / self.records_per_page) as u64)
    }

    /// Read node `u`'s record: neighbor ids into `nbrs`, the stored
    /// vector decoded *once* into `scratch`, and the exact distance to
    /// `query` computed through the dispatched kernel layer.
    fn read_node_into(
        &self,
        u: usize,
        query: &[f32],
        scratch: &mut Vec<f32>,
        nbrs: &mut Vec<u32>,
    ) -> Result<f32> {
        let record_bytes = 4 + self.r * 4 + self.dim * 4;
        let page = self.cache.read(self.page_of(u))?;
        let base = (self.slot(u) % self.records_per_page) * record_bytes;
        let degree = page.read_u32(base) as usize;
        nbrs.clear();
        for j in 0..degree.min(self.r) {
            nbrs.push(page.read_u32(base + 4 + j * 4));
        }
        // One contiguous decode into context scratch, then one kernel call
        // (`Metric::distance` dispatches to the SIMD backend) — no
        // per-float hand-rolled loop on the hot path.
        let voff = base + 4 + self.r * 4;
        scratch.clear();
        scratch.extend(
            page.bytes()[voff..voff + self.dim * 4]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        Ok(self.metric.distance(query, scratch))
    }

    /// Build (lazily) the ADC table for coarse cluster `c`.
    fn ensure_table(
        &self,
        c: usize,
        query: &[f32],
        residual: &mut [f32],
        tables: &mut [Option<AdcTable>],
    ) -> Result<()> {
        if tables[c].is_none() {
            let cent = self.nav_centroids.get(c);
            for i in 0..self.dim {
                residual[i] = query[i] - cent[i];
            }
            tables[c] = Some(self.pq.adc_table(residual)?);
        }
        Ok(())
    }

    fn scan(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&dyn RowFilter>,
    ) -> Result<Vec<Neighbor>> {
        let beam = params.beam_width.max(k);
        let m = self.pq.code_len();
        let prefetch_on = self.prefetch.load(Ordering::Relaxed);
        // Residual codes need one ADC table per coarse cluster, built from
        // the query's residual against that cluster's centroid. Tables are
        // materialized lazily: a query touches only a handful of clusters.
        // Tables, residual buffer, and batch buffers live in the context's
        // extension slot so a reused context allocates nothing.
        ctx.begin(self.n);
        let DiskAnnScratch {
            mut tables,
            mut residual,
            mut pairs,
            mut codebuf,
        } = std::mem::take(ctx.ext::<DiskAnnScratch>());
        tables.clear();
        tables.resize_with(self.nav_centroids.len(), || None);
        residual.clear();
        residual.resize(self.dim, 0.0);

        // Best-first beam search over a bounded frontier: `frontier` is a
        // min-heap of unexpanded candidates ordered by ADC distance;
        // `bound_pool` retains the `beam` best ADC distances seen and its
        // threshold terminates the walk (the candidate-list rescan and
        // O(n) sorted inserts of the original loop are gone).
        ctx.frontier.clear();
        ctx.bound_pool.reset(beam);
        ctx.rerank.reset(k.max(params.rerank.min(beam)));
        ctx.visited.visit(self.start);
        let c0 = self.nav_assign[self.start] as usize;
        self.ensure_table(c0, query, &mut residual, &mut tables)?;
        let d0 = tables[c0]
            .as_ref()
            .expect("just built")
            .distance(&self.codes[self.start * m..(self.start + 1) * m]);
        ctx.frontier.push(Reverse(Neighbor::new(self.start, d0)));
        ctx.bound_pool.push(Neighbor::new(self.start, d0));

        while let Some(Reverse(cand)) = ctx.frontier.pop() {
            if ctx.bound_pool.is_full() && cand.dist > ctx.bound_pool.threshold() {
                break;
            }
            // Expand: one page read (usually already resident thanks to
            // prefetch-on-push below) + exact rescoring via the kernels.
            let dist = self.read_node_into(cand.id, query, &mut ctx.scratch, &mut ctx.ids)?;
            if filter.is_none_or(|f| f.accept(cand.id)) {
                ctx.rerank.push(Neighbor::new(cand.id, dist));
            }
            // Batch-ADC the unvisited neighbors, grouped by coarse cluster
            // so each group scans contiguous gathered codes through the
            // dispatched `adc_scan` kernel.
            pairs.clear();
            for i in 0..ctx.ids.len() {
                let v = ctx.ids[i] as usize;
                if v < self.n && ctx.visited.visit(v) {
                    pairs.push((self.nav_assign[v], v as u32));
                }
            }
            pairs.sort_unstable();
            let mut i = 0;
            while i < pairs.len() {
                let c = pairs[i].0 as usize;
                let mut j = i;
                while j < pairs.len() && pairs[j].0 as usize == c {
                    j += 1;
                }
                self.ensure_table(c, query, &mut residual, &mut tables)?;
                codebuf.clear();
                for &(_, v) in &pairs[i..j] {
                    let v = v as usize;
                    codebuf.extend_from_slice(&self.codes[v * m..(v + 1) * m]);
                }
                ctx.dists.resize(j - i, 0.0);
                tables[c]
                    .as_ref()
                    .expect("just built")
                    .distance_batch(&codebuf, &mut ctx.dists[..j - i]);
                for (&(_, v), &d) in pairs[i..j].iter().zip(ctx.dists.iter()) {
                    let v = v as usize;
                    if !ctx.bound_pool.is_full() || d < ctx.bound_pool.threshold() {
                        ctx.frontier.push(Reverse(Neighbor::new(v, d)));
                        ctx.bound_pool.push(Neighbor::new(v, d));
                    }
                }
                i = j;
            }
            if prefetch_on {
                // Lookahead: queue page reads for the best few frontier
                // candidates — the beam's next expansions — so their I/O
                // runs while this iteration's scoring completes. Resident
                // and in-flight pages are filtered inside `request`.
                let mut best = [Neighbor::new(usize::MAX, f32::INFINITY); PREFETCH_LOOKAHEAD];
                for Reverse(n) in ctx.frontier.iter() {
                    if n.dist < best[PREFETCH_LOOKAHEAD - 1].dist {
                        let mut at = PREFETCH_LOOKAHEAD - 1;
                        best[at] = *n;
                        while at > 0 && best[at].dist < best[at - 1].dist {
                            best.swap(at, at - 1);
                            at -= 1;
                        }
                    }
                }
                for n in best {
                    if n.id != usize::MAX {
                        prefetch::pool().request(&self.cache, self.page_of(n.id));
                    }
                }
            }
        }
        let mut out = ctx.rerank.drain_sorted();
        out.truncate(k);
        *ctx.ext::<DiskAnnScratch>() = DiskAnnScratch {
            tables,
            residual,
            pairs,
            codebuf,
        };
        Ok(out)
    }
}

impl VectorIndex for DiskAnnIndex {
    fn name(&self) -> &'static str {
        "diskann"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> &Metric {
        &self.metric
    }

    fn search_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, None)
    }

    fn search_filtered_with(
        &self,
        ctx: &mut SearchContext,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: &dyn RowFilter,
    ) -> Result<Vec<Neighbor>> {
        check_query(self.dim, query)?;
        if k == 0 || self.n == 0 {
            return Ok(Vec::new());
        }
        self.scan(ctx, query, k, params, Some(filter))
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            memory_bytes: self.codes.len() + self.pq.memory_bytes() + self.slot_of.len() * 4,
            structure_entries: self.n,
            detail: format!(
                "r={} pq_m={} layout=v{}",
                self.r,
                self.pq.m(),
                self.layout_version()
            ),
        }
    }
}

impl std::fmt::Debug for DiskAnnIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DiskAnnIndex(n={}, r={})", self.n, self.r)
    }
}

fn write_run(file: &PagedFile, start_page: u64, bytes: &[u8]) -> Result<()> {
    for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
        let mut page = Page::zeroed();
        page.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
        file.write_page(PageId(start_page + i as u64), &page)?;
    }
    Ok(())
}

fn read_run(file: &PagedFile, start_page: u64, len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len.div_ceil(PAGE_SIZE) {
        let page = file.read_page(PageId(start_page + i as u64))?;
        let take = (len - out.len()).min(PAGE_SIZE);
        out.extend_from_slice(&page.bytes()[..take]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vamana::{VamanaConfig, VamanaIndex};
    use vdb_core::dataset;
    use vdb_core::recall::GroundTruth;
    use vdb_core::rng::Rng;
    use vdb_core::vector::Vectors;
    use vdb_storage::TempDir;

    fn setup(cache_pages: usize) -> (TempDir, DiskAnnIndex, Vectors, GroundTruth) {
        let mut rng = Rng::seed_from_u64(70);
        let data = dataset::clustered(1500, 16, 10, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 20, 0.05, &mut rng);
        let gt = GroundTruth::compute(&data, &queries, Metric::Euclidean, 10).unwrap();
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let dir = TempDir::new("diskann").unwrap();
        let idx = DiskAnnIndex::build(
            dir.file("d.idx"),
            &vam,
            &DiskAnnConfig {
                pq_m: 8,
                nav_nlist: 64,
                cache_pages,
                ..DiskAnnConfig::default()
            },
        )
        .unwrap();
        (dir, idx, queries, gt)
    }

    #[test]
    fn high_recall_from_disk() {
        let (_d, idx, queries, gt) = setup(256);
        let params = SearchParams::default().with_beam_width(64);
        let results: Vec<_> = queries
            .iter()
            .map(|q| idx.search(q, 10, &params).unwrap())
            .collect();
        let r = gt.recall_batch(&results);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn io_per_query_close_to_beam_width() {
        let (_d, idx, queries, _) = setup(0); // cache disabled: count raw reads
        let params = SearchParams::default().with_beam_width(32);
        idx.cache().reset_stats();
        let nq = queries.len() as u64;
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        let reads = idx.cache().stats().disk_reads();
        let per_query = reads as f64 / nq as f64;
        assert!(
            per_query < 100.0,
            "page reads per query should be bounded near the beam width, got {per_query}"
        );
        assert!(
            per_query >= 16.0,
            "a real traversal reads many nodes, got {per_query}"
        );
    }

    #[test]
    fn warm_cache_eliminates_most_io() {
        let (_d, idx, queries, _) = setup(100_000);
        let params = SearchParams::default().with_beam_width(32);
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        idx.cache().reset_stats();
        for q in queries.iter() {
            idx.search(q, 10, &params).unwrap();
        }
        assert!(idx.cache().stats().hit_ratio() > 0.95);
    }

    #[test]
    fn packed_and_identity_layouts_return_identical_results() {
        let mut rng = Rng::seed_from_u64(73);
        let data = dataset::clustered(800, 16, 8, 0.5, &mut rng).vectors;
        let queries = dataset::split_queries(&data, 10, 0.05, &mut rng);
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let dir = TempDir::new("diskann-layout").unwrap();
        let mut cfg = DiskAnnConfig {
            packed_layout: true,
            ..DiskAnnConfig::default()
        };
        let packed = DiskAnnIndex::build(dir.file("p.idx"), &vam, &cfg).unwrap();
        cfg.packed_layout = false;
        let identity = DiskAnnIndex::build(dir.file("i.idx"), &vam, &cfg).unwrap();
        assert_eq!(packed.layout_version(), 1);
        assert_eq!(identity.layout_version(), 0);
        let params = SearchParams::default().with_beam_width(48);
        for q in queries.iter() {
            assert_eq!(
                packed.search(q, 10, &params).unwrap(),
                identity.search(q, 10, &params).unwrap()
            );
        }
    }

    #[test]
    fn prefetch_toggle_is_bit_identical() {
        let (_d, idx, queries, _) = setup(64);
        let params = SearchParams::default().with_beam_width(48);
        for q in queries.iter() {
            idx.set_prefetch(false);
            let off = idx.search(q, 10, &params).unwrap();
            idx.set_prefetch(true);
            let on = idx.search(q, 10, &params).unwrap();
            assert_eq!(off, on);
        }
    }

    #[test]
    fn entry_region_is_pinned() {
        let (_d, idx, _, _) = setup(64);
        assert!(idx.cache().pinned_pages() > 0);
        assert_eq!(
            idx.cache().stats().pinned_pages as usize,
            idx.cache().pinned_pages()
        );
    }

    #[test]
    fn reopen_matches_built() {
        let mut rng = Rng::seed_from_u64(71);
        let data = dataset::clustered(500, 8, 6, 0.4, &mut rng).vectors;
        let vam =
            VamanaIndex::build(data.clone(), Metric::Euclidean, VamanaConfig::default()).unwrap();
        let dir = TempDir::new("diskann-reopen").unwrap();
        let path = dir.file("r.idx");
        let built = DiskAnnIndex::build(&path, &vam, &DiskAnnConfig::default()).unwrap();
        let params = SearchParams::default().with_beam_width(32);
        let q = data.get(7);
        let before = built.search(q, 5, &params).unwrap();
        drop(built);
        let reopened = DiskAnnIndex::open(&path, Metric::Euclidean, 64).unwrap();
        assert_eq!(reopened.len(), 500);
        let after = reopened.search(q, 5, &params).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn memory_footprint_is_codes_not_vectors() {
        let (_d, idx, _, _) = setup(64);
        // 8 bytes of PQ code + 4 bytes of slot map per vector vs 64 bytes
        // of raw vector.
        assert_eq!(idx.memory_bytes_per_vector(), 12);
        assert!(idx.stats().memory_bytes < idx.len() * 16 * 4 / 2);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (_d, idx, queries, _) = setup(256);
        let filter = |id: usize| id.is_multiple_of(2);
        let params = SearchParams::default().with_beam_width(64);
        let hits = idx
            .search_filtered(queries.get(0), 5, &params, &filter)
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|n| n.id % 2 == 0));
    }

    #[test]
    fn corrupt_file_detected() {
        let dir = TempDir::new("diskann-bad").unwrap();
        let path = dir.file("bad.idx");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            DiskAnnIndex::open(&path, Metric::Euclidean, 4),
            Err(Error::Corrupt(_))
        ));
    }
}
