//! Torn-replication-stream property sweep, mirroring `wal_torn_tail.rs`
//! for the shipping codec: a shipped WAL stream truncated at EVERY byte
//! offset must decode without panic or error, yielding exactly the
//! records whose frames are wholly contained in the surviving prefix. A
//! primary can crash mid-send at any byte; nothing about where the
//! stream tears may turn replica catch-up into corruption — and a
//! corrupted COMPLETE frame must be reported, never applied.

use vdb_core::attr::AttrValue;
use vdb_storage::{crc32, decode_shipped, ship_record, WalRecord};

fn records() -> Vec<WalRecord> {
    vec![
        WalRecord::Insert {
            key: 1,
            vector: vec![1.0, 2.0, 3.0],
            attrs: vec![],
        },
        WalRecord::Insert {
            key: 2,
            vector: vec![4.0; 8],
            attrs: vec![
                ("tag".into(), AttrValue::Str("alpha".into())),
                ("score".into(), AttrValue::Int(-7)),
                ("weight".into(), AttrValue::Float(0.25)),
                ("flag".into(), AttrValue::Bool(true)),
                ("hole".into(), AttrValue::Null),
            ],
        },
        WalRecord::Delete { key: 1 },
        WalRecord::Insert {
            key: 3,
            vector: vec![-1.5, 0.0],
            attrs: vec![("tag".into(), AttrValue::Str(String::new()))],
        },
        WalRecord::Delete { key: 99 },
    ]
}

fn shipped_stream(recs: &[WalRecord]) -> Vec<u8> {
    let mut stream = Vec::new();
    for (i, r) in recs.iter().enumerate() {
        ship_record(&mut stream, i as u64 + 1, r);
    }
    stream
}

/// Frame boundaries computed from the wire layout (4-byte length +
/// 4-byte CRC + payload) independently of the writer, cross-checking
/// the shipped format itself.
fn frame_ends(stream: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= stream.len() {
        let len = u32::from_le_bytes(stream[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(stream[off + 4..off + 8].try_into().unwrap());
        let end = off + 8 + len;
        assert!(end <= stream.len(), "shipper produced a torn frame");
        assert_eq!(crc, crc32(&stream[off + 8..end]), "shipper CRC mismatch");
        ends.push(end);
        off = end;
    }
    assert_eq!(off, stream.len(), "trailing garbage after final frame");
    ends
}

#[test]
fn decode_at_every_truncation_offset_returns_exact_prefix() {
    let recs = records();
    let stream = shipped_stream(&recs);
    let ends = frame_ends(&stream);
    assert_eq!(ends.len(), recs.len());

    for cut in 0..=stream.len() {
        let got = decode_shipped(&stream[..cut])
            .unwrap_or_else(|e| panic!("decode failed at truncation offset {cut}: {e}"));
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            got.len(),
            expect,
            "offset {cut}: wrong record count (frame ends at {ends:?})"
        );
        for (i, shipped) in got.iter().enumerate() {
            assert_eq!(shipped.lsn, i as u64 + 1, "offset {cut}: LSN mismatch");
            assert_eq!(shipped.record, recs[i], "offset {cut}: record mismatch");
        }
    }
}

#[test]
fn flipped_byte_in_complete_frame_is_reported_not_decoded() {
    let recs = records();
    let stream = shipped_stream(&recs);
    // Flip every single byte of the stream in turn: whatever it hits —
    // length, CRC, LSN, or record body — the decoder must either error
    // or (when the flip makes a tail frame look torn/short) stop early;
    // it must never hand back a full-length decode with altered data.
    for pos in 0..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 0xFF;
        match decode_shipped(&bad) {
            Err(_) => {}
            Ok(got) => {
                let intact = got
                    .iter()
                    .enumerate()
                    .all(|(i, s)| s.lsn == i as u64 + 1 && s.record == recs[i]);
                assert!(
                    intact && got.len() < recs.len(),
                    "flip at byte {pos}: decoded {} records; silent corruption",
                    got.len()
                );
            }
        }
    }
}
