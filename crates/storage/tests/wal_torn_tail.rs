//! Torn-tail property sweep: a WAL truncated at EVERY byte offset must
//! replay without panic or error, yielding exactly the records whose
//! frames are wholly contained in the surviving prefix. A crash can
//! tear the log at any byte; nothing about where it tears may turn
//! recovery into corruption.

use vdb_core::attr::AttrValue;
use vdb_storage::{crc32, TempDir, Wal, WalRecord};

fn records() -> Vec<WalRecord> {
    vec![
        WalRecord::Insert {
            key: 1,
            vector: vec![1.0, 2.0, 3.0],
            attrs: vec![],
        },
        WalRecord::Insert {
            key: 2,
            vector: vec![4.0; 8],
            attrs: vec![
                ("tag".into(), AttrValue::Str("alpha".into())),
                ("score".into(), AttrValue::Int(-7)),
                ("weight".into(), AttrValue::Float(0.25)),
                ("flag".into(), AttrValue::Bool(true)),
                ("hole".into(), AttrValue::Null),
            ],
        },
        WalRecord::Delete { key: 1 },
        WalRecord::Insert {
            key: 3,
            vector: vec![-1.5, 0.0],
            attrs: vec![("tag".into(), AttrValue::Str(String::new()))],
        },
        WalRecord::Delete { key: 99 },
    ]
}

/// Frame boundaries of a log holding `recs`, computed from the frame
/// layout (4-byte length + 4-byte CRC + payload) independently of the
/// writer, so the test cross-checks the on-disk format too.
fn frame_ends(log: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= log.len() {
        let len = u32::from_le_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(log[off + 4..off + 8].try_into().unwrap());
        let end = off + 8 + len;
        assert!(end <= log.len(), "writer produced a torn frame");
        assert_eq!(crc, crc32(&log[off + 8..end]), "writer CRC mismatch");
        ends.push(end);
        off = end;
    }
    assert_eq!(off, log.len(), "trailing garbage after final frame");
    ends
}

#[test]
fn replay_at_every_truncation_offset_returns_exact_prefix() {
    let dir = TempDir::new("wal-torn-sweep").unwrap();
    let path = dir.file("sweep.wal");
    let recs = records();
    {
        let mut wal = Wal::open(&path).unwrap();
        for r in &recs {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
    }
    let full = std::fs::read(&path).unwrap();
    let ends = frame_ends(&full);
    assert_eq!(ends.len(), recs.len());

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let got = Wal::replay(&path)
            .unwrap_or_else(|e| panic!("replay failed at truncation offset {cut}: {e}"));
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            got.len(),
            expect,
            "offset {cut}: wrong record count (frame ends at {ends:?})"
        );
        assert_eq!(got, recs[..expect], "offset {cut}: prefix mismatch");
    }
}

#[test]
fn flipped_byte_in_complete_record_is_reported_not_replayed() {
    // Contrast case: tearing is tolerated, silent corruption is not. A
    // bit flip inside a COMPLETE frame must surface as an error.
    let dir = TempDir::new("wal-flip").unwrap();
    let path = dir.file("flip.wal");
    {
        let mut wal = Wal::open(&path).unwrap();
        for r in &records() {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        Wal::replay(&path).is_err(),
        "corrupted complete record must not replay silently"
    );
}
