//! Checkpointed collection snapshots: the durable merged state.
//!
//! A snapshot captures everything the merge step folded into the main
//! part of a collection — row keys, vectors, attribute columns, and a
//! fingerprint of the index spec that was built over them — so recovery
//! becomes *snapshot load + WAL-tail replay* instead of a full-history
//! WAL replay, and the WAL can be truncated after every merge.
//!
//! ## On-disk format
//!
//! ```text
//! "VDBSNAP1"                                    8-byte magic
//! [tag u8][len u32][crc32 u32][payload]         CRC-framed sections:
//!   1 META    fingerprint, dim, rows, #columns
//!   2 KEYS    row keys (u64 × rows)
//!   3 VECTORS row-major f32 × rows × dim
//!   4 COLUMN  name, type, values (one section per column)
//!   5 END     empty terminator
//! ```
//!
//! Sections reuse the WAL's [`crc32`] framing. A snapshot is only ever
//! observed complete: [`write`] builds `<name>.tmp` in the same
//! directory, fsyncs it, renames it over the target, and fsyncs the
//! directory — a crash at any point leaves either the old snapshot or
//! the new one, never a mixture. [`read`] still verifies the magic,
//! every section CRC, and the END terminator, so a snapshot damaged
//! *after* it was written (bit rot, manual truncation) is reported as
//! [`Error::Corrupt`] rather than silently replayed.
//!
//! Every durable step passes through a [`crate::failpoint`] crash point,
//! which is how the crash-fault-injection harness sweeps this protocol.

use crate::codec::{self, Reader};
use crate::failpoint;
use crate::file::sync_dir;
use crate::wal::crc32;
use std::fs::{File, OpenOptions};
use std::path::Path;
use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::error::{Error, Result};
use vdb_core::vector::Vectors;

const MAGIC: &[u8; 8] = b"VDBSNAP1";

const SEC_META: u8 = 1;
const SEC_KEYS: u8 = 2;
const SEC_VECTORS: u8 = 3;
const SEC_COLUMN: u8 = 4;
const SEC_END: u8 = 5;
/// Serialized full-text index over the rows (optional; absent in
/// snapshots from before text indexing existed and in collections with
/// no text-indexed column). The payload is opaque to the storage layer —
/// the text subsystem owns its own versioned format, and a reader that
/// cannot use the bytes rebuilds the index from the source column.
const SEC_TEXT: u8 = 6;

/// One attribute column of a snapshot, aligned with the row keys.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotColumn {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
    /// One value per row (Null for missing).
    pub values: Vec<AttrValue>,
}

/// A collection's merged state at checkpoint time.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Fingerprint of the index spec the main index was built with
    /// (diagnostics: recovery rebuilds from vectors, so a changed spec
    /// is honored rather than rejected).
    pub fingerprint: String,
    /// External key of each row, aligned with `vectors`.
    pub row_keys: Vec<u64>,
    /// The merged vectors.
    pub vectors: Vectors,
    /// Attribute columns, each aligned with `row_keys`.
    pub columns: Vec<SnapshotColumn>,
    /// Serialized full-text index (row-aligned doc ids), if the
    /// collection maintains one. `None` round-trips to a byte-identical
    /// legacy snapshot.
    pub text: Option<Vec<u8>>,
}

impl Snapshot {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_keys.len()
    }
}

fn section_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(9 + payload.len());
    frame.push(tag);
    codec::put_u32(&mut frame, payload.len() as u32);
    codec::put_u32(&mut frame, crc32(payload));
    frame.extend_from_slice(payload);
    frame
}

fn write_section(file: &mut File, tag: u8, payload: &[u8], site: &'static str) -> Result<()> {
    failpoint::write_all_torn(file, &section_frame(tag, payload), site)
}

fn meta_payload(snap: &Snapshot) -> Vec<u8> {
    let mut meta = Vec::new();
    codec::put_str(&mut meta, &snap.fingerprint);
    codec::put_u32(&mut meta, snap.vectors.dim() as u32);
    codec::put_u64(&mut meta, snap.row_keys.len() as u64);
    codec::put_u32(&mut meta, snap.columns.len() as u32);
    meta
}

fn keys_payload(snap: &Snapshot) -> Vec<u8> {
    let mut keys = Vec::with_capacity(snap.row_keys.len() * 8);
    for &k in &snap.row_keys {
        codec::put_u64(&mut keys, k);
    }
    keys
}

fn vectors_payload(snap: &Snapshot) -> Vec<u8> {
    let mut vecs = Vec::with_capacity(snap.vectors.as_flat().len() * 4);
    for x in snap.vectors.as_flat() {
        vecs.extend_from_slice(&x.to_le_bytes());
    }
    vecs
}

fn column_payload(col: &SnapshotColumn) -> Vec<u8> {
    let mut payload = Vec::new();
    codec::put_str(&mut payload, &col.name);
    payload.push(codec::attr_type_tag(col.ty));
    for v in &col.values {
        codec::put_attr(&mut payload, v);
    }
    payload
}

fn validate(snap: &Snapshot) -> Result<()> {
    if snap.vectors.len() != snap.row_keys.len() {
        return Err(Error::InvalidParameter(format!(
            "snapshot has {} keys but {} vectors",
            snap.row_keys.len(),
            snap.vectors.len()
        )));
    }
    for col in &snap.columns {
        if col.values.len() != snap.row_keys.len() {
            return Err(Error::InvalidParameter(format!(
                "snapshot column `{}` has {} values for {} rows",
                col.name,
                col.values.len(),
                snap.row_keys.len()
            )));
        }
    }
    Ok(())
}

/// Serialize a snapshot to bytes in the on-disk format (magic included),
/// for shipping over the wire during replica bootstrap. The bytes are
/// exactly what [`write`] would put on disk, so [`decode`] and [`read`]
/// verify the same magic, section CRCs, and END terminator.
pub fn encode(snap: &Snapshot) -> Result<Vec<u8>> {
    validate(snap)?;
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&section_frame(SEC_META, &meta_payload(snap)));
    out.extend_from_slice(&section_frame(SEC_KEYS, &keys_payload(snap)));
    out.extend_from_slice(&section_frame(SEC_VECTORS, &vectors_payload(snap)));
    for col in &snap.columns {
        out.extend_from_slice(&section_frame(SEC_COLUMN, &column_payload(col)));
    }
    if let Some(text) = &snap.text {
        out.extend_from_slice(&section_frame(SEC_TEXT, text));
    }
    out.extend_from_slice(&section_frame(SEC_END, &[]));
    Ok(out)
}

/// Atomically replace the snapshot at `path` with `snap`:
/// write-to-temp, fsync, rename, fsync-directory.
pub fn write(path: &Path, snap: &Snapshot) -> Result<()> {
    validate(snap)?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| Error::InvalidParameter("snapshot path has no file name".into()))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));

    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;

    // META (with the magic prepended so the first write stamps the file).
    let meta = meta_payload(snap);
    let mut head = Vec::with_capacity(8 + 9 + meta.len());
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&section_frame(SEC_META, &meta));
    failpoint::write_all_torn(&mut file, &head, "snapshot.meta")?;

    // KEYS.
    write_section(&mut file, SEC_KEYS, &keys_payload(snap), "snapshot.keys")?;

    // VECTORS.
    write_section(
        &mut file,
        SEC_VECTORS,
        &vectors_payload(snap),
        "snapshot.vectors",
    )?;

    // One section per COLUMN.
    for col in &snap.columns {
        write_section(
            &mut file,
            SEC_COLUMN,
            &column_payload(col),
            "snapshot.column",
        )?;
    }

    // TEXT (only when the collection maintains a text index).
    if let Some(text) = &snap.text {
        write_section(&mut file, SEC_TEXT, text, "snapshot.text")?;
    }

    // END terminator, then make it durable and visible.
    write_section(&mut file, SEC_END, &[], "snapshot.end")?;
    failpoint::hit("snapshot.sync")?;
    file.sync_all()?;
    drop(file);
    failpoint::hit("snapshot.rename")?;
    std::fs::rename(&tmp, path)?;
    failpoint::hit("snapshot.dir_sync")?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Load the snapshot at `path`. Returns `Ok(None)` if no snapshot file
/// exists (a collection that never checkpointed); any structural damage
/// to an existing file is [`Error::Corrupt`].
pub fn read(path: &Path) -> Result<Option<Snapshot>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    decode(&bytes).map(Some)
}

/// Parse snapshot bytes produced by [`encode`] (or read back from a file
/// [`write`] produced). Verifies magic, every section CRC, and the END
/// terminator — identical guarantees to [`read`].
pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
    let corrupt = |what: &str| Error::Corrupt(format!("snapshot {what}"));
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("has bad magic"));
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);

    let mut fingerprint = None;
    let mut dim = 0usize;
    let mut rows = 0usize;
    let mut ncols = 0usize;
    let mut row_keys: Option<Vec<u64>> = None;
    let mut vectors: Option<Vectors> = None;
    let mut columns: Vec<SnapshotColumn> = Vec::new();
    let mut text: Option<Vec<u8>> = None;
    let mut ended = false;

    while !r.is_empty() {
        let tag = r.u8()?;
        let len = r.u32()? as usize;
        let crc = r.u32()?;
        let payload = r.take(len)?;
        if crc32(payload) != crc {
            return Err(corrupt("section checksum mismatch"));
        }
        let mut p = Reader::new(payload);
        match tag {
            SEC_META => {
                fingerprint = Some(p.string()?);
                dim = p.u32()? as usize;
                rows = p.u64()? as usize;
                ncols = p.u32()? as usize;
            }
            SEC_KEYS => {
                let mut keys = Vec::with_capacity(rows);
                for _ in 0..rows {
                    keys.push(p.u64()?);
                }
                if !p.is_empty() {
                    return Err(corrupt("keys section has trailing bytes"));
                }
                row_keys = Some(keys);
            }
            SEC_VECTORS => {
                let flat = p.f32s(rows * dim)?;
                if !p.is_empty() {
                    return Err(corrupt("vectors section has trailing bytes"));
                }
                vectors = Some(Vectors::from_flat(dim.max(1), flat)?);
            }
            SEC_COLUMN => {
                let name = p.string()?;
                let ty = codec::attr_type_from_tag(p.u8()?)?;
                let mut values = Vec::with_capacity(rows);
                for _ in 0..rows {
                    values.push(p.attr()?);
                }
                if !p.is_empty() {
                    return Err(corrupt("column section has trailing bytes"));
                }
                columns.push(SnapshotColumn { name, ty, values });
            }
            SEC_TEXT => {
                text = Some(payload.to_vec());
            }
            SEC_END => {
                ended = true;
                break;
            }
            other => return Err(Error::Corrupt(format!("unknown snapshot section {other}"))),
        }
    }
    if !ended {
        return Err(corrupt("is missing its END terminator"));
    }
    let fingerprint = fingerprint.ok_or_else(|| corrupt("is missing its META section"))?;
    let row_keys = row_keys.ok_or_else(|| corrupt("is missing its KEYS section"))?;
    let vectors = vectors.ok_or_else(|| corrupt("is missing its VECTORS section"))?;
    if columns.len() != ncols {
        return Err(corrupt("column count does not match META"));
    }
    Ok(Snapshot {
        fingerprint,
        row_keys,
        vectors,
        columns,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::TempDir;

    fn sample(rows: usize) -> Snapshot {
        let dim = 3;
        let mut vectors = Vectors::new(dim);
        let mut keys = Vec::new();
        let mut tags = Vec::new();
        let mut scores = Vec::new();
        for i in 0..rows {
            vectors.push(&[i as f32, 0.5, -1.0]).unwrap();
            keys.push(100 + i as u64);
            tags.push(if i % 3 == 0 {
                AttrValue::Null
            } else {
                AttrValue::Str(format!("t{i}"))
            });
            scores.push(AttrValue::Int(i as i64 * 7));
        }
        Snapshot {
            fingerprint: "hnsw:deadbeef".into(),
            row_keys: keys,
            vectors,
            text: None,
            columns: vec![
                SnapshotColumn {
                    name: "tag".into(),
                    ty: AttrType::Str,
                    values: tags,
                },
                SnapshotColumn {
                    name: "score".into(),
                    ty: AttrType::Int,
                    values: scores,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = TempDir::new("snap-rt").unwrap();
        let path = dir.file("c.snap");
        let snap = sample(17);
        write(&path, &snap).unwrap();
        let back = read(&path).unwrap().expect("snapshot exists");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_collection_roundtrip() {
        let dir = TempDir::new("snap-empty").unwrap();
        let path = dir.file("c.snap");
        let mut snap = sample(0);
        snap.columns.clear();
        write(&path, &snap).unwrap();
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back.rows(), 0);
        assert!(back.columns.is_empty());
    }

    #[test]
    fn encode_matches_on_disk_bytes_and_decodes() {
        let dir = TempDir::new("snap-enc").unwrap();
        let path = dir.file("c.snap");
        let snap = sample(11);
        write(&path, &snap).unwrap();
        let disk = std::fs::read(&path).unwrap();
        let wire = encode(&snap).unwrap();
        assert_eq!(wire, disk, "wire encoding is byte-identical to disk");
        assert_eq!(decode(&wire).unwrap(), snap);
    }

    #[test]
    fn text_section_roundtrips_and_stays_optional() {
        let dir = TempDir::new("snap-text").unwrap();
        let path = dir.file("c.snap");
        let mut snap = sample(5);
        snap.text = Some(vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F]);
        write(&path, &snap).unwrap();
        let back = read(&path).unwrap().unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.text.as_deref(), Some(&snap.text.clone().unwrap()[..]));
        // A text-less snapshot stays byte-identical to the legacy format:
        // the section is simply absent, so old readers keep working.
        let legacy = sample(5);
        let with = encode(&snap).unwrap();
        let without = encode(&legacy).unwrap();
        assert!(with.len() > without.len());
        assert!(read(&path).unwrap().unwrap().text.is_some());
        write(&path, &legacy).unwrap();
        assert!(read(&path).unwrap().unwrap().text.is_none());
    }

    #[test]
    fn missing_file_is_none() {
        let dir = TempDir::new("snap-miss").unwrap();
        assert!(read(&dir.file("nope.snap")).unwrap().is_none());
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let dir = TempDir::new("snap-ow").unwrap();
        let path = dir.file("c.snap");
        write(&path, &sample(5)).unwrap();
        write(&path, &sample(9)).unwrap();
        assert_eq!(read(&path).unwrap().unwrap().rows(), 9);
        assert!(!path.with_file_name("c.snap.tmp").exists());
    }

    #[test]
    fn truncation_and_bitflips_detected() {
        let dir = TempDir::new("snap-corrupt").unwrap();
        let path = dir.file("c.snap");
        write(&path, &sample(6)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncations anywhere are Corrupt (never a panic, never Ok).
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(read(&path), Err(Error::Corrupt(_))),
                "cut at {cut} must be corrupt"
            );
        }
        // A flipped payload byte fails its section CRC.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(read(&path).is_err());
    }

    #[test]
    fn crash_during_write_preserves_old_snapshot() {
        let dir = TempDir::new("snap-crash").unwrap();
        let path = dir.file("c.snap");
        let old = sample(4);
        let new = sample(8);
        let (res, points) =
            crate::failpoint::count_crash_points(|| write(&dir.file("scratch.snap"), &new));
        res.unwrap();
        assert!(points >= 9, "meta+keys+vectors+2 cols+end+sync+rename+dir");
        for n in 1..=points {
            write(&path, &old).unwrap();
            crate::failpoint::arm(n);
            let err = write(&path, &new).unwrap_err();
            assert!(crate::failpoint::is_crash(&err));
            crate::failpoint::disarm();
            let back = read(&path).unwrap().unwrap();
            assert!(
                back == old || back == new,
                "crash point {n} left a mixed snapshot"
            );
            if n < points - 1 {
                // Every crash before the rename step preserves the old file.
                assert_eq!(back, old, "crash point {n} must not touch the target");
            }
        }
    }
}
