//! Asynchronous page prefetch: a std-only I/O worker pool.
//!
//! The disk-resident indexes (DiskANN beam search, SPANN posting-list
//! probes) know which pages they will need one step before they score
//! them: every candidate pushed onto the frontier names the page holding
//! its record, and every probed posting list enumerates its page run up
//! front. This module turns that knowledge into overlap — page reads are
//! *issued* the moment a candidate is queued and *awaited* only when the
//! search actually expands it, so query latency approaches
//! `max(io_stream, compute)` instead of `hops × (seek + compute)`.
//!
//! # Design
//!
//! A small process-global pool of blocking reader threads drains a
//! bounded queue of `(cache, page)` requests and installs completed pages
//! through [`PageCache::prefetch_read`]. The cache's in-flight table makes
//! a demand read for a page already being prefetched *wait* for that read
//! instead of duplicating it, and completed pages are ordinary cache
//! residents — so prefetch is invisible to search results by
//! construction: it can only change *when* a page enters memory, never
//! what any page contains. Requests are best-effort: a full queue drops
//! the request (the demand read simply pays the miss), and pages already
//! resident or in flight are skipped before enqueueing.
//!
//! # io_uring seam
//!
//! The pool dispatches through the [`IoBackend`] trait, whose only
//! current implementation is [`SyncReadBackend`] (one blocking `pread`
//! per worker — portable, std-only). A real async backend (io_uring on
//! Linux) would implement `IoBackend` by batching the queued page ids
//! into submission-queue entries and completing them onto the same
//! `PageCache::prefetch_read`-equivalent install path; everything above
//! this trait (request dedup, accounting, waiting demand reads) is
//! backend-agnostic.

use crate::cache::PageCache;
use crate::page::PageId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use vdb_core::sync::Mutex;

/// How a worker services one prefetch request. The seam behind which an
/// io_uring (or other async I/O) backend would slot; see the module docs.
pub trait IoBackend: Send + Sync + 'static {
    /// Bring `id` into `cache`, accounting the read as a prefetch.
    fn fetch(&self, cache: &PageCache, id: PageId);
}

/// The std-only backend: one synchronous positioned read per request.
#[derive(Debug, Default)]
pub struct SyncReadBackend;

impl IoBackend for SyncReadBackend {
    fn fetch(&self, cache: &PageCache, id: PageId) {
        // Errors are swallowed here by design: a failed prefetch costs
        // nothing; the demand read retries and surfaces the error.
        let _ = cache.prefetch_read(id);
    }
}

struct Queue {
    jobs: VecDeque<(Arc<PageCache>, PageId)>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    ready: Condvar,
    backend: Box<dyn IoBackend>,
    cap: usize,
    /// Requests dropped because the queue was full (observability; a
    /// dropped prefetch only costs the demand miss it would have hidden).
    dropped: AtomicU64,
    issued: AtomicU64,
}

/// A pool of prefetch I/O workers shared by every disk-resident index in
/// the process (see [`pool`] for the global instance).
pub struct PrefetchPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl PrefetchPool {
    /// Spawn a pool with `workers` reader threads over `backend`.
    pub fn with_backend(workers: usize, backend: Box<dyn IoBackend>) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            backend,
            cap: 1024,
            dropped: AtomicU64::new(0),
            issued: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vdb-prefetch-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn prefetch worker")
            })
            .collect();
        PrefetchPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Spawn a pool of `workers` synchronous readers.
    pub fn new(workers: usize) -> Self {
        PrefetchPool::with_backend(workers, Box::new(SyncReadBackend))
    }

    /// Queue a page read. Skips pages already resident or in flight
    /// (cheap check) and drops the request if the queue is full; never
    /// blocks the caller.
    pub fn request(&self, cache: &Arc<PageCache>, id: PageId) {
        if cache.budget() == 0 || cache.contains_or_inflight(id) {
            return;
        }
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return;
            }
            if q.jobs.len() >= self.shared.cap {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            q.jobs.push_back((Arc::clone(cache), id));
            self.shared.issued.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.ready.notify_one();
    }

    /// Requests accepted so far (queued for a worker).
    pub fn issued(&self) -> u64 {
        self.shared.issued.load(Ordering::Relaxed)
    }

    /// Requests dropped on a full queue so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Block until the queue is empty and workers are idle-ish (test
    /// helper: the queue being drained means every accepted request has
    /// at least reached its worker; in-flight installs are then awaited
    /// by the cache's own in-flight table).
    pub fn drain(&self) {
        loop {
            {
                let q = self.shared.queue.lock();
                if q.jobs.is_empty() {
                    break;
                }
            }
            std::thread::yield_now();
        }
    }
}

impl Drop for PrefetchPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
            q.jobs.clear();
        }
        self.shared.ready.notify_all();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for PrefetchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PrefetchPool(issued={}, dropped={})",
            self.issued(),
            self.dropped()
        )
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                q = shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared.backend.fetch(&job.0, job.1);
    }
}

/// The process-global prefetch pool, spawned on first use. Worker count
/// comes from `VDB_PREFETCH_WORKERS` (default 4 — blocking readers spend
/// their time in the kernel, so the count need not match CPU cores).
pub fn pool() -> &'static PrefetchPool {
    static POOL: OnceLock<PrefetchPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::env::var("VDB_PREFETCH_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(4);
        PrefetchPool::new(workers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{PagedFile, TempDir};
    use crate::page::Page;

    fn setup(pages: u64, budget: usize) -> (TempDir, Arc<PageCache>) {
        let dir = TempDir::new("prefetch").unwrap();
        let file = Arc::new(PagedFile::create(dir.file("p.pages")).unwrap());
        file.allocate(pages).unwrap();
        for i in 0..pages {
            let mut p = Page::zeroed();
            p.write_u32(0, i as u32);
            file.write_page(PageId(i), &p).unwrap();
        }
        (dir, Arc::new(PageCache::new(file, budget)))
    }

    #[test]
    fn prefetched_pages_become_hits() {
        let (_dir, cache) = setup(16, 16);
        let pool = PrefetchPool::new(2);
        for i in 0..16u64 {
            pool.request(&cache, PageId(i));
        }
        pool.drain();
        // Wait for installs to land (drain only proves dequeue).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cache.stats().prefetched < 16 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        for i in 0..16u64 {
            assert_eq!(cache.read(PageId(i)).unwrap().read_u32(0), i as u32);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 0, "all demand reads served from prefetch: {s:?}");
        assert_eq!(s.hits, 16);
        assert_eq!(s.disk_reads(), 16);
    }

    #[test]
    fn resident_pages_are_not_reprefetched() {
        let (_dir, cache) = setup(4, 4);
        cache.read(PageId(0)).unwrap();
        let pool = PrefetchPool::new(1);
        pool.request(&cache, PageId(0));
        pool.drain();
        assert_eq!(pool.issued(), 0, "resident page filtered before enqueue");
    }

    #[test]
    fn demand_read_waits_for_inflight_prefetch() {
        // Deterministic interleaving: mark the page in flight by hand,
        // then complete the prefetch from another thread while a demand
        // read is blocked on it.
        let (_dir, cache) = setup(4, 4);
        let slow = Arc::clone(&cache);
        let t = std::thread::spawn(move || slow.read(PageId(1)).unwrap().read_u32(0));
        // Racy but harmless: whichever path reads the page, the result and
        // the total disk-read count must agree.
        assert!(cache.prefetch_read(PageId(1)).unwrap() || cache.contains(PageId(1)));
        assert_eq!(t.join().unwrap(), 1);
        assert!(cache.stats().disk_reads() <= 2);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let (_dir, cache) = setup(4, 4);
        let pool = PrefetchPool::new(3);
        pool.request(&cache, PageId(2));
        drop(pool); // must not hang
    }
}
