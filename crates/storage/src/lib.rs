//! # vdb-storage
//!
//! The storage manager of the `vectordb-rs` VDBMS (Figure 1 of the paper):
//!
//! - [`page`] / [`file`] — fixed-size pages over files, the unit of I/O
//!   accounting for disk-resident indexes (§2.2),
//! - [`cache`] — read-through page cache with pinning, scan-resistant
//!   admission-controlled eviction, and lock-free hit/miss/eviction
//!   counters (the instrument of experiments F7/D1),
//! - [`prefetch`] — std-only asynchronous I/O worker pool feeding the
//!   cache (the disk pipeline's overlap engine, with an io_uring seam),
//! - [`vector_store`] — page-aligned disk-resident vector records,
//! - [`column`] — typed, nullable attribute columns with statistics for
//!   selectivity estimation (§2.1 hybrid queries),
//! - [`lsm`] — LSM-style out-of-place update buffer (§2.3(3)),
//! - [`wal`] — checksummed write-ahead log with torn-tail-tolerant replay,
//! - [`snapshot`] — atomic write-then-rename checkpoints of merged
//!   collection state (vectors, keys, attributes, index fingerprint),
//! - [`failpoint`] — deterministic crash-fault injection over every
//!   durable step, driving the crash-recovery test harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Index loops over parallel slices/pages are clearer than zipped
// iterator chains in the kernels and (de)serializers below.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]
#![allow(clippy::manual_checked_ops)] // branch selects record layout, not a guard

pub mod cache;
mod codec;
pub mod column;
pub mod failpoint;
pub mod file;
pub mod lsm;
pub mod page;
pub mod prefetch;
pub mod snapshot;
pub mod vector_store;
pub mod wal;

pub use cache::{global_cache_stats, CacheStats, PageCache};
pub use column::{AttributeStore, Column, ColumnStats};
pub use file::{PagedFile, TempDir};
pub use lsm::{KeyedNeighbor, LsmConfig, LsmStore};
pub use page::{Page, PageId, PAGE_SIZE};
pub use prefetch::{IoBackend, PrefetchPool};
pub use snapshot::{Snapshot, SnapshotColumn};
pub use vector_store::DiskVectorStore;
pub use wal::{crc32, decode_shipped, ship_record, ShippedRecord, Wal, WalRecord};
