//! LSM-style out-of-place updates for vector collections (§2.3(3)).
//!
//! Data-dependent indexes (graphs, trees, learned buckets) are expensive to
//! update in place, so VDBMSs buffer writes in a fast temporary structure
//! and merge them into the main index in bulk. [`LsmStore`] provides that
//! buffer: a mutable memtable plus immutable sealed segments, searched by
//! brute force (they are small by construction), with tombstones for
//! deletes and newest-version-wins semantics for re-inserted keys. The
//! VDBMS facade pairs it with a static main index and drains it on merge.

use std::collections::HashSet;
use vdb_core::error::{Error, Result};
use vdb_core::metric::Metric;
use vdb_core::topk::{Neighbor, TopK};
use vdb_core::vector::Vectors;

/// Tuning for the update buffer.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Rows in the memtable before it is sealed into a segment.
    pub memtable_capacity: usize,
    /// Segment count that triggers compaction into one segment.
    pub max_segments: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_capacity: 1024,
            max_segments: 8,
        }
    }
}

/// An immutable sealed run of vectors.
#[derive(Debug, Clone)]
struct Segment {
    keys: Vec<u64>,
    vectors: Vectors,
}

/// A search hit from the buffer: external key plus distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyedNeighbor {
    /// Caller-assigned external key.
    pub key: u64,
    /// Distance to the query.
    pub dist: f32,
}

/// The out-of-place update buffer.
#[derive(Debug)]
pub struct LsmStore {
    dim: usize,
    metric: Metric,
    cfg: LsmConfig,
    mem_keys: Vec<u64>,
    mem_vectors: Vectors,
    /// Sealed segments, oldest first.
    segments: Vec<Segment>,
    tombstones: HashSet<u64>,
    /// Keys currently live somewhere in the buffer.
    live: HashSet<u64>,
}

impl LsmStore {
    /// New empty buffer for `dim`-dimensional vectors under `metric`.
    pub fn new(dim: usize, metric: Metric, cfg: LsmConfig) -> Self {
        LsmStore {
            dim,
            metric,
            cfg,
            mem_keys: Vec::new(),
            mem_vectors: Vectors::new(dim),
            segments: Vec::new(),
            tombstones: HashSet::new(),
            live: HashSet::new(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live (non-deleted, non-shadowed) keys in the buffer.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the buffer holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total buffered rows including shadowed versions (space accounting).
    pub fn physical_rows(&self) -> usize {
        self.mem_vectors.len() + self.segments.iter().map(|s| s.vectors.len()).sum::<usize>()
    }

    /// Insert or overwrite `key`. Newest version wins on search.
    pub fn insert(&mut self, key: u64, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: vector.len(),
            });
        }
        self.mem_vectors.push(vector)?;
        self.mem_keys.push(key);
        self.tombstones.remove(&key);
        self.live.insert(key);
        if self.mem_vectors.len() >= self.cfg.memtable_capacity {
            self.seal();
        }
        Ok(())
    }

    /// Delete `key` from the buffer's view. Also shadows any version of the
    /// key living in the main index (callers consult [`LsmStore::is_deleted`]).
    pub fn delete(&mut self, key: u64) {
        self.tombstones.insert(key);
        self.live.remove(&key);
    }

    /// Whether `key` has a tombstone.
    pub fn is_deleted(&self, key: u64) -> bool {
        self.tombstones.contains(&key)
    }

    /// Whether the buffer holds a live version of `key` (which shadows the
    /// main index's version).
    pub fn contains(&self, key: u64) -> bool {
        self.live.contains(&key)
    }

    /// Fetch the newest live version of `key`.
    pub fn get(&self, key: u64) -> Option<&[f32]> {
        if self.is_deleted(key) || !self.live.contains(&key) {
            return None;
        }
        // Memtable is newest: scan back-to-front.
        for i in (0..self.mem_keys.len()).rev() {
            if self.mem_keys[i] == key {
                return Some(self.mem_vectors.get(i));
            }
        }
        for seg in self.segments.iter().rev() {
            for i in (0..seg.keys.len()).rev() {
                if seg.keys[i] == key {
                    return Some(seg.vectors.get(i));
                }
            }
        }
        None
    }

    /// Seal the memtable into a segment, compacting if needed.
    pub fn seal(&mut self) {
        if self.mem_vectors.is_empty() {
            return;
        }
        let keys = std::mem::take(&mut self.mem_keys);
        let vectors = std::mem::replace(&mut self.mem_vectors, Vectors::new(self.dim));
        self.segments.push(Segment { keys, vectors });
        if self.segments.len() > self.cfg.max_segments {
            self.compact();
        }
    }

    /// Merge all segments into one, dropping tombstoned and shadowed rows.
    pub fn compact(&mut self) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut keys = Vec::new();
        let mut vectors = Vectors::new(self.dim);
        // Hoisted once: probing the memtable per row would make
        // compaction O(rows × memtable).
        let mem_keys: HashSet<u64> = self.mem_keys.iter().copied().collect();
        // Newest segment last in self.segments; iterate newest-first and
        // keep the first (newest) version of each key.
        for seg in self.segments.iter().rev() {
            for i in (0..seg.keys.len()).rev() {
                let k = seg.keys[i];
                if self.tombstones.contains(&k) || seen.contains(&k) || !self.live.contains(&k) {
                    continue;
                }
                // Skip keys shadowed by the memtable.
                if mem_keys.contains(&k) {
                    continue;
                }
                seen.insert(k);
                keys.push(k);
                vectors
                    .push(seg.vectors.get(i))
                    .expect("stored vector is valid");
            }
        }
        self.segments.clear();
        if !keys.is_empty() {
            self.segments.push(Segment { keys, vectors });
        }
    }

    /// Brute-force search across memtable and segments, newest version
    /// wins, tombstones excluded. Returns up to `k` hits sorted best-first.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<KeyedNeighbor>> {
        if query.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let mut seen: HashSet<u64> = HashSet::new();
        let mut hits: Vec<KeyedNeighbor> = Vec::new();
        // Memtable (newest) back-to-front, then segments newest-first.
        for i in (0..self.mem_keys.len()).rev() {
            let key = self.mem_keys[i];
            if self.tombstones.contains(&key) || !seen.insert(key) {
                continue;
            }
            hits.push(KeyedNeighbor {
                key,
                dist: self.metric.distance(query, self.mem_vectors.get(i)),
            });
        }
        for seg in self.segments.iter().rev() {
            for i in (0..seg.keys.len()).rev() {
                let key = seg.keys[i];
                if self.tombstones.contains(&key) || !seen.insert(key) {
                    continue;
                }
                hits.push(KeyedNeighbor {
                    key,
                    dist: self.metric.distance(query, seg.vectors.get(i)),
                });
            }
        }
        let mut top = TopK::new(k);
        // Reuse TopK by mapping keys through an id table.
        let mut keytab = Vec::with_capacity(hits.len());
        for (i, h) in hits.iter().enumerate() {
            keytab.push(h.key);
            top.push(Neighbor::new(i, h.dist));
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|n| KeyedNeighbor {
                key: keytab[n.id],
                dist: n.dist,
            })
            .collect())
    }

    /// Drain every live row out of the buffer (for merging into the main
    /// index), leaving the buffer empty. Tombstones are *kept*: they may
    /// still shadow rows in the main index until the caller applies them.
    pub fn drain_live(&mut self) -> (Vec<u64>, Vectors) {
        self.seal();
        self.compact();
        let mut keys = Vec::new();
        let mut vectors = Vectors::new(self.dim);
        for seg in self.segments.drain(..) {
            for (i, &k) in seg.keys.iter().enumerate() {
                keys.push(k);
                vectors
                    .push(seg.vectors.get(i))
                    .expect("stored vector is valid");
            }
        }
        self.live.clear();
        (keys, vectors)
    }

    /// Take and clear the tombstone set (after the caller has applied the
    /// deletes to the main index).
    pub fn take_tombstones(&mut self) -> HashSet<u64> {
        std::mem::take(&mut self.tombstones)
    }

    /// Copy of every live row, newest version wins, *without* draining —
    /// the buffer keeps serving reads and absorbing writes while a
    /// background merge folds the copy into a new main index.
    pub fn snapshot_live(&self) -> (Vec<u64>, Vectors) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut keys = Vec::new();
        let mut vectors = Vectors::new(self.dim);
        for i in (0..self.mem_keys.len()).rev() {
            let k = self.mem_keys[i];
            if !self.live.contains(&k) || !seen.insert(k) {
                continue;
            }
            keys.push(k);
            vectors
                .push(self.mem_vectors.get(i))
                .expect("stored vector is valid");
        }
        for seg in self.segments.iter().rev() {
            for i in (0..seg.keys.len()).rev() {
                let k = seg.keys[i];
                if !self.live.contains(&k) || !seen.insert(k) {
                    continue;
                }
                keys.push(k);
                vectors
                    .push(seg.vectors.get(i))
                    .expect("stored vector is valid");
            }
        }
        (keys, vectors)
    }

    /// Retire rows that a finished merge folded into the main index:
    /// each `(key, vector)` pair from an earlier [`LsmStore::snapshot_live`]
    /// is dropped *only if* the buffer still holds exactly that version —
    /// a key overwritten or deleted during the merge keeps its newer state
    /// (which still shadows the main index). Space is reclaimed physically.
    pub fn purge_merged(&mut self, keys: &[u64], vectors: &Vectors) {
        for (i, &k) in keys.iter().enumerate() {
            if self.get(k) == Some(vectors.get(i)) {
                self.live.remove(&k);
            }
        }
        self.seal();
        self.compact();
    }

    /// Iterate the pending tombstones without clearing them.
    pub fn tombstones(&self) -> impl Iterator<Item = u64> + '_ {
        self.tombstones.iter().copied()
    }

    /// Clear only the given tombstones (the set a finished merge actually
    /// applied); tombstones added during the merge stay pending.
    pub fn clear_tombstones<I: IntoIterator<Item = u64>>(&mut self, applied: I) {
        for k in applied {
            self.tombstones.remove(&k);
        }
    }

    /// Number of pending tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// The live buffered keys, sorted (state enumeration for recovery
    /// audits and tests).
    pub fn live_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.live.iter().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cap: usize) -> LsmStore {
        LsmStore::new(
            2,
            Metric::Euclidean,
            LsmConfig {
                memtable_capacity: cap,
                max_segments: 3,
            },
        )
    }

    #[test]
    fn insert_search_basic() {
        let mut s = store(100);
        s.insert(1, &[0.0, 0.0]).unwrap();
        s.insert(2, &[5.0, 0.0]).unwrap();
        let hits = s.search(&[1.0, 0.0], 2).unwrap();
        assert_eq!(hits[0].key, 1);
        assert_eq!(hits[1].key, 2);
        assert!((hits[0].dist - 1.0).abs() < 1e-6);
    }

    #[test]
    fn delete_hides_key() {
        let mut s = store(100);
        s.insert(1, &[0.0, 0.0]).unwrap();
        s.delete(1);
        assert!(s.search(&[0.0, 0.0], 5).unwrap().is_empty());
        assert!(s.get(1).is_none());
        assert!(s.is_deleted(1));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn reinsert_after_delete_revives() {
        let mut s = store(100);
        s.insert(1, &[0.0, 0.0]).unwrap();
        s.delete(1);
        s.insert(1, &[9.0, 9.0]).unwrap();
        assert!(!s.is_deleted(1));
        assert_eq!(s.get(1).unwrap(), &[9.0, 9.0]);
    }

    #[test]
    fn newest_version_wins() {
        let mut s = store(2); // tiny memtable: forces sealing
        s.insert(7, &[0.0, 0.0]).unwrap();
        s.insert(8, &[1.0, 1.0]).unwrap(); // seals here
        s.insert(7, &[100.0, 100.0]).unwrap(); // newer version in memtable
        assert_eq!(s.get(7).unwrap(), &[100.0, 100.0]);
        let hits = s.search(&[0.0, 0.0], 10).unwrap();
        let h7 = hits.iter().find(|h| h.key == 7).unwrap();
        assert!(h7.dist > 100.0, "search must see the new far-away version");
        assert_eq!(hits.len(), 2, "old version not double-counted");
    }

    #[test]
    fn sealing_and_compaction_preserve_contents() {
        let mut s = store(4);
        for i in 0..40u64 {
            s.insert(i, &[i as f32, 0.0]).unwrap();
        }
        assert!(s.segment_count() <= 3 + 1, "compaction bounds segments");
        assert_eq!(s.len(), 40);
        let hits = s.search(&[0.0, 0.0], 40).unwrap();
        assert_eq!(hits.len(), 40);
        assert_eq!(hits[0].key, 0);
    }

    #[test]
    fn compact_drops_tombstones_and_shadows() {
        let mut s = store(2);
        for i in 0..10u64 {
            s.insert(i, &[i as f32, 0.0]).unwrap();
        }
        for i in 0..5u64 {
            s.delete(i);
        }
        s.seal();
        s.compact();
        assert_eq!(s.len(), 5);
        assert!(s.physical_rows() <= 5, "compaction reclaims space");
    }

    #[test]
    fn drain_live_returns_everything_once() {
        let mut s = store(3);
        for i in 0..10u64 {
            s.insert(i, &[i as f32, 0.0]).unwrap();
        }
        s.insert(3, &[333.0, 0.0]).unwrap(); // newer version
        s.delete(9);
        let (keys, vectors) = s.drain_live();
        assert_eq!(keys.len(), 9, "10 keys - 1 delete");
        assert_eq!(vectors.len(), 9);
        let pos = keys.iter().position(|&k| k == 3).unwrap();
        assert_eq!(vectors.get(pos), &[333.0, 0.0], "newest version drained");
        assert!(s.is_empty());
        // Tombstones survive the drain until explicitly taken.
        assert!(s.is_deleted(9));
        let t = s.take_tombstones();
        assert!(t.contains(&9));
        assert!(!s.is_deleted(9));
    }

    #[test]
    fn snapshot_live_is_nondestructive_and_purge_respects_newer_versions() {
        let mut s = store(3);
        for i in 0..8u64 {
            s.insert(i, &[i as f32, 0.0]).unwrap();
        }
        s.delete(7);
        let (keys, vectors) = s.snapshot_live();
        assert_eq!(keys.len(), 7, "8 keys - 1 delete");
        assert_eq!(s.len(), 7, "snapshot leaves the buffer intact");
        // Writes land while the "merge" is in flight.
        s.insert(3, &[333.0, 0.0]).unwrap(); // overwritten since snapshot
        s.delete(5); // deleted since snapshot
        s.insert(100, &[9.0, 9.0]).unwrap(); // brand new
        s.purge_merged(&keys, &vectors);
        // Unchanged snapshot rows retired; newer state survives.
        assert!(!s.contains(0) && !s.contains(6));
        assert_eq!(s.get(3).unwrap(), &[333.0, 0.0]);
        assert!(s.is_deleted(5));
        assert_eq!(s.get(100).unwrap(), &[9.0, 9.0]);
        assert_eq!(s.len(), 2, "only key 3 and key 100 remain live");
        // Applied tombstones clear selectively; new ones stay.
        s.clear_tombstones([7u64]);
        assert!(!s.is_deleted(7));
        assert!(s.is_deleted(5));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = store(10);
        assert!(s.insert(1, &[1.0]).is_err());
        assert!(s.search(&[1.0], 1).is_err());
    }
}
