//! Page abstraction for disk-resident structures.
//!
//! Disk-resident indexes (DiskANN, SPANN; §2.2 of the paper) are designed
//! around the number of page-granular I/Os per query. Everything below the
//! cache works in fixed-size pages so that experiments can report *page
//! reads per query* — the hardware-independent cost those indexes optimize.

/// Size of one storage page in bytes (4 KiB, the common SSD/OS unit).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within one paged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in its file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// An owned page buffer.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Wrap an existing buffer (must be exactly `PAGE_SIZE` bytes).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        assert_eq!(data.len(), PAGE_SIZE, "page buffers are fixed-size");
        Page {
            data: data.into_boxed_slice(),
        }
    }

    /// Read access to the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Write access to the page bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read a little-endian `u32` at `offset`.
    pub fn read_u32(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.data[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Write a little-endian `u32` at `offset`.
    pub fn write_u32(&mut self, offset: usize, v: u32) {
        self.data[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `f32` at `offset`.
    pub fn read_f32(&self, offset: usize) -> f32 {
        f32::from_le_bytes(self.data[offset..offset + 4].try_into().expect("4 bytes"))
    }

    /// Write a little-endian `f32` at `offset`.
    pub fn write_f32(&mut self, offset: usize, v: f32) {
        self.data[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", self.data.len())
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * 4096);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = Page::zeroed();
        p.write_u32(0, 0xDEADBEEF);
        p.write_f32(8, -1.5);
        assert_eq!(p.read_u32(0), 0xDEADBEEF);
        assert_eq!(p.read_f32(8), -1.5);
        assert_eq!(p.read_u32(4), 0, "untouched bytes stay zero");
    }

    #[test]
    #[should_panic(expected = "fixed-size")]
    fn from_bytes_enforces_size() {
        Page::from_bytes(vec![0u8; 100]);
    }
}
