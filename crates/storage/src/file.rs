//! Page-granular file I/O.
//!
//! Reads are *positioned* on unix (`pread` via [`std::os::unix::fs::FileExt`])
//! so concurrent readers — the prefetch worker pool and the search thread —
//! overlap at the syscall level instead of serializing on a seek lock. On
//! other platforms reads fall back to seek+read under the handle mutex.
//!
//! # Simulated device latency
//!
//! Real NVMe reads cost tens of microseconds; a warm OS page cache serves
//! them in ~1 µs, which hides the I/O-overlap effects the disk-serving
//! experiments measure. Setting `VDB_SIM_READ_LAT_US=<micros>` (parsed per
//! file at create/open time) makes every page read sleep that long first,
//! modeling a device with that access latency. Writes are unaffected.

use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
#[cfg(not(unix))]
use std::io::Read;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;
use vdb_core::error::Result;
use vdb_core::sync::Mutex;

/// A file accessed in whole pages, with allocation tracking.
///
/// Thread-safe: on unix, page reads use positioned I/O on a dup'ed handle
/// and never take a lock; writes and metadata operations go through the
/// seek-based handle under a mutex (portable fallback for reads too).
pub struct PagedFile {
    inner: Mutex<File>,
    /// Dup of the same descriptor used for lock-free positioned reads.
    #[cfg(unix)]
    reader: File,
    path: PathBuf,
    pages: Mutex<u64>,
    /// Simulated per-read device latency (`VDB_SIM_READ_LAT_US`).
    read_delay: Option<Duration>,
}

fn read_delay_from_env() -> Option<Duration> {
    let us: u64 = std::env::var("VDB_SIM_READ_LAT_US")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    (us > 0).then(|| Duration::from_micros(us))
}

impl PagedFile {
    fn wrap(file: File, path: &Path, pages: u64) -> Result<Self> {
        #[cfg(unix)]
        let reader = file.try_clone()?;
        Ok(PagedFile {
            inner: Mutex::new(file),
            #[cfg(unix)]
            reader,
            path: path.to_path_buf(),
            pages: Mutex::new(pages),
            read_delay: read_delay_from_env(),
        })
    }

    /// Create (truncating) a new paged file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        PagedFile::wrap(file, path.as_ref(), 0)
    }

    /// Open an existing paged file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        PagedFile::wrap(file, path.as_ref(), len / PAGE_SIZE as u64)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u64 {
        *self.pages.lock()
    }

    /// Allocate `n` fresh zeroed pages, returning the id of the first.
    pub fn allocate(&self, n: u64) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let first = *pages;
        *pages += n;
        // Extend the file so reads of the new pages succeed.
        let file = self.inner.lock();
        file.set_len(*pages * PAGE_SIZE as u64)?;
        Ok(PageId(first))
    }

    /// Read one page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if let Some(d) = self.read_delay {
            std::thread::sleep(d);
        }
        let mut page = Page::zeroed();
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.reader.read_exact_at(page.bytes_mut(), id.offset())?;
        }
        #[cfg(not(unix))]
        {
            let mut file = self.inner.lock();
            file.seek(SeekFrom::Start(id.offset()))?;
            file.read_exact(page.bytes_mut())?;
        }
        Ok(page)
    }

    /// Write one page.
    pub fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        let mut file = self.inner.lock();
        file.seek(SeekFrom::Start(id.offset()))?;
        file.write_all(page.bytes())?;
        Ok(())
    }

    /// Flush to the OS.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().sync_data()?;
        Ok(())
    }
}

impl std::fmt::Debug for PagedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PagedFile({:?}, {} pages)", self.path, self.num_pages())
    }
}

/// Fsync a directory so metadata operations inside it (file creation,
/// rename) survive a crash. No-op on platforms where directories cannot
/// be opened as files.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// A unique temporary directory for tests and experiments; removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("vdb-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let dir = TempDir::new("pagedfile").unwrap();
        let f = PagedFile::create(dir.file("a.pages")).unwrap();
        let first = f.allocate(2).unwrap();
        assert_eq!(first, PageId(0));
        assert_eq!(f.num_pages(), 2);

        let mut p = Page::zeroed();
        p.write_u32(0, 42);
        p.write_u32(PAGE_SIZE - 4, 7);
        f.write_page(PageId(1), &p).unwrap();

        let back = f.read_page(PageId(1)).unwrap();
        assert_eq!(back.read_u32(0), 42);
        assert_eq!(back.read_u32(PAGE_SIZE - 4), 7);
        // Unwritten page reads as zeros.
        assert_eq!(f.read_page(PageId(0)).unwrap().read_u32(0), 0);
    }

    #[test]
    fn reopen_preserves_contents() {
        let dir = TempDir::new("reopen").unwrap();
        let path = dir.file("b.pages");
        {
            let f = PagedFile::create(&path).unwrap();
            f.allocate(1).unwrap();
            let mut p = Page::zeroed();
            p.write_f32(16, 2.5);
            f.write_page(PageId(0), &p).unwrap();
            f.sync().unwrap();
        }
        let f = PagedFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 1);
        assert_eq!(f.read_page(PageId(0)).unwrap().read_f32(16), 2.5);
    }

    #[test]
    fn concurrent_positioned_reads_agree() {
        let dir = TempDir::new("pread").unwrap();
        let f = std::sync::Arc::new(PagedFile::create(dir.file("c.pages")).unwrap());
        f.allocate(64).unwrap();
        for i in 0..64u64 {
            let mut p = Page::zeroed();
            p.write_u32(0, i as u32);
            f.write_page(PageId(i), &p).unwrap();
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || {
                    for round in 0..8 {
                        for i in 0..64u64 {
                            let id = (i + t * 13 + round) % 64;
                            assert_eq!(f.read_page(PageId(id)).unwrap().read_u32(0), id as u32);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tempdir_cleans_up() {
        let path;
        {
            let dir = TempDir::new("cleanup").unwrap();
            path = dir.path().to_path_buf();
            std::fs::write(dir.file("x"), b"hello").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
