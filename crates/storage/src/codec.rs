//! Shared little-endian (de)serialization helpers for the WAL and the
//! snapshot format: primitives, strings, and [`AttrValue`]s.

use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::error::{Error, Result};

const ATTR_NULL: u8 = 0;
const ATTR_INT: u8 = 1;
const ATTR_FLOAT: u8 = 2;
const ATTR_STR: u8 = 3;
const ATTR_BOOL: u8 = 4;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_attr(out: &mut Vec<u8>, v: &AttrValue) {
    match v {
        AttrValue::Null => out.push(ATTR_NULL),
        AttrValue::Int(i) => {
            out.push(ATTR_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        AttrValue::Float(f) => {
            out.push(ATTR_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        AttrValue::Str(s) => {
            out.push(ATTR_STR);
            put_str(out, s);
        }
        AttrValue::Bool(b) => {
            out.push(ATTR_BOOL);
            out.push(*b as u8);
        }
    }
}

pub(crate) fn attr_type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::Int => 0,
        AttrType::Float => 1,
        AttrType::Str => 2,
        AttrType::Bool => 3,
    }
}

pub(crate) fn attr_type_from_tag(tag: u8) -> Result<AttrType> {
    match tag {
        0 => Ok(AttrType::Int),
        1 => Ok(AttrType::Float),
        2 => Ok(AttrType::Str),
        3 => Ok(AttrType::Bool),
        other => Err(Error::Corrupt(format!("unknown attr type tag {other}"))),
    }
}

/// A bounds-checked little-endian reader over a byte slice; every decode
/// error maps to [`Error::Corrupt`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::Corrupt("truncated payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f32s(&mut self, n: usize) -> Result<Vec<f32>> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| Error::Corrupt("vector length overflow".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("invalid UTF-8 in stored string".into()))
    }

    pub(crate) fn attr(&mut self) -> Result<AttrValue> {
        match self.u8()? {
            ATTR_NULL => Ok(AttrValue::Null),
            ATTR_INT => Ok(AttrValue::Int(self.i64()?)),
            ATTR_FLOAT => Ok(AttrValue::Float(self.f64()?)),
            ATTR_STR => Ok(AttrValue::Str(self.string()?)),
            ATTR_BOOL => Ok(AttrValue::Bool(self.u8()? != 0)),
            other => Err(Error::Corrupt(format!("unknown attr value tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_roundtrip() {
        let values = [
            AttrValue::Null,
            AttrValue::Int(-42),
            AttrValue::Float(2.5),
            AttrValue::Str("héllo".into()),
            AttrValue::Bool(true),
            AttrValue::Bool(false),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_attr(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            assert_eq!(&r.attr().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_attr(&mut buf, &AttrValue::Str("long enough".into()));
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(matches!(r.attr(), Err(Error::Corrupt(_))), "cut {cut}");
        }
    }

    #[test]
    fn attr_type_tags_roundtrip() {
        for ty in [
            AttrType::Int,
            AttrType::Float,
            AttrType::Str,
            AttrType::Bool,
        ] {
            assert_eq!(attr_type_from_tag(attr_type_tag(ty)).unwrap(), ty);
        }
        assert!(attr_type_from_tag(9).is_err());
    }
}
