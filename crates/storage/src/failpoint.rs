//! Deterministic crash-fault injection for durability testing.
//!
//! Every durability-critical step in the storage layer (WAL appends and
//! syncs, snapshot section writes, the snapshot rename, directory syncs,
//! WAL truncation) passes through a *crash point*. In normal operation a
//! crash point is free. A test can:
//!
//! 1. **count** the crash points an operation passes through
//!    ([`count_crash_points`]), then
//! 2. **arm** the Nth point ([`arm`]) and re-run the operation: the Nth
//!    step fails exactly as a process crash would — a write is torn
//!    mid-frame, and every *subsequent* storage step fails too (the
//!    "process" is dead until [`disarm`]).
//!
//! Crashing at every N in `1..=count` sweeps every interleaving of a
//! crash with the operation's durable steps, which is how
//! `tests/crash_recovery.rs` proves recovery always lands on exactly the
//! pre-op or post-op state.
//!
//! State is thread-local, so concurrent tests do not interfere. The
//! `VDB_CRASH_POINT` environment variable (read by [`arm_from_env`])
//! arms the calling thread from the outside, for driving whole-process
//! crash experiments from a shell.
//!
//! This module simulates a *process* crash: bytes already handed to the
//! OS survive, bytes not yet written are lost, and a torn frame may be
//! left at the injection point. (Power-loss reordering below the OS is
//! out of scope; the recovery protocol orders its syncs so that model
//! would need no extra machinery, only a different injector.)

use std::cell::Cell;
use std::fs::File;
use std::io::Write;
use vdb_core::error::{Error, Result};

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Crash points are free (production).
    Off,
    /// Count crash points without crashing.
    Counting(u64),
    /// Crash at the point where `remaining` reaches zero; once `dead`,
    /// every further point fails.
    Armed { remaining: u64, dead: bool },
}

/// What a crash point should do, decided against the thread's mode.
enum Outcome {
    /// Perform the step normally.
    Proceed,
    /// This is the armed point: the step dies *mid-way* (tear a write).
    Fired,
    /// The process already crashed earlier: do nothing at all.
    Dead,
}

thread_local! {
    static MODE: Cell<Mode> = const { Cell::new(Mode::Off) };
}

fn crash_error(site: &str) -> Error {
    Error::Io(std::io::Error::other(format!("simulated crash at {site}")))
}

/// Whether `err` is a simulated crash produced by this module.
pub fn is_crash(err: &Error) -> bool {
    matches!(err, Error::Io(e) if e.to_string().starts_with("simulated crash at "))
}

/// Arm the calling thread to crash at the `nth` crash point (1-based).
///
/// # Panics
/// Panics if `nth` is zero.
pub fn arm(nth: u64) {
    assert!(nth > 0, "crash points are 1-based");
    MODE.with(|m| {
        m.set(Mode::Armed {
            remaining: nth,
            dead: false,
        })
    });
}

/// Arm from the `VDB_CRASH_POINT` environment variable, if set to a
/// positive integer. Returns whether the thread was armed.
pub fn arm_from_env() -> bool {
    match std::env::var("VDB_CRASH_POINT") {
        Ok(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => {
                arm(n);
                true
            }
            _ => false,
        },
        Err(_) => false,
    }
}

/// Disable injection on the calling thread (the "process" restarts).
pub fn disarm() {
    MODE.with(|m| m.set(Mode::Off));
}

/// Whether an armed crash has fired on this thread since [`arm`].
pub fn crashed() -> bool {
    MODE.with(|m| matches!(m.get(), Mode::Armed { dead: true, .. }))
}

/// Run `f` with crash points counted (never crashing), returning `f`'s
/// result and the number of crash points it passed through.
pub fn count_crash_points<T>(f: impl FnOnce() -> T) -> (T, u64) {
    MODE.with(|m| m.set(Mode::Counting(0)));
    let out = f();
    let n = MODE.with(|m| match m.get() {
        Mode::Counting(n) => n,
        _ => 0,
    });
    MODE.with(|m| m.set(Mode::Off));
    (out, n)
}

fn check() -> Outcome {
    MODE.with(|m| match m.get() {
        Mode::Off => Outcome::Proceed,
        Mode::Counting(n) => {
            m.set(Mode::Counting(n + 1));
            Outcome::Proceed
        }
        Mode::Armed { dead: true, .. } => Outcome::Dead,
        Mode::Armed { remaining: 1, .. } => {
            m.set(Mode::Armed {
                remaining: 0,
                dead: true,
            });
            Outcome::Fired
        }
        Mode::Armed { remaining, dead } => {
            m.set(Mode::Armed {
                remaining: remaining - 1,
                dead,
            });
            Outcome::Proceed
        }
    })
}

/// Pass through one crash point. Free when off; fails once the armed
/// point is reached and forever after until [`disarm`].
pub fn hit(site: &'static str) -> Result<()> {
    match check() {
        Outcome::Proceed => Ok(()),
        Outcome::Fired | Outcome::Dead => Err(crash_error(site)),
    }
}

/// Write `buf` to `file` through a crash point. At the firing point the
/// write is *torn*: the first half of `buf` reaches the file before the
/// crash error is returned, exactly like a process dying mid-`write`.
/// After the crash (dead), nothing is written at all.
pub fn write_all_torn(file: &mut File, buf: &[u8], site: &'static str) -> Result<()> {
    match check() {
        Outcome::Proceed => {
            file.write_all(buf)?;
            Ok(())
        }
        Outcome::Fired => {
            let _ = file.write_all(&buf[..buf.len() / 2]);
            Err(crash_error(site))
        }
        Outcome::Dead => Err(crash_error(site)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_free() {
        assert!(hit("x").is_ok());
        assert!(!crashed());
    }

    #[test]
    fn counting_counts() {
        let ((), n) = count_crash_points(|| {
            for _ in 0..5 {
                hit("c").unwrap();
            }
        });
        assert_eq!(n, 5);
        assert!(hit("after").is_ok(), "counting mode ends cleanly");
    }

    #[test]
    fn armed_fires_at_nth_and_stays_dead() {
        arm(3);
        assert!(hit("a").is_ok());
        assert!(hit("b").is_ok());
        let e = hit("c").unwrap_err();
        assert!(is_crash(&e), "{e}");
        assert!(crashed());
        assert!(hit("d").is_err(), "dead until disarm");
        disarm();
        assert!(hit("e").is_ok());
    }

    #[test]
    fn torn_write_leaves_prefix_then_nothing() {
        let dir = crate::file::TempDir::new("fp-torn").unwrap();
        let mut f = File::create(dir.file("t")).unwrap();
        arm(1);
        let err = write_all_torn(&mut f, &[7u8; 10], "w").unwrap_err();
        assert!(is_crash(&err));
        assert!(write_all_torn(&mut f, &[9u8; 4], "w2").is_err());
        disarm();
        drop(f);
        let bytes = std::fs::read(dir.file("t")).unwrap();
        assert_eq!(bytes, vec![7u8; 5], "half the frame survives the crash");
    }

    #[test]
    fn env_arming() {
        assert!(!arm_from_env(), "unset env does not arm");
    }
}
