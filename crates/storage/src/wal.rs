//! Write-ahead log for vector DML.
//!
//! Inserts and deletes are appended to the log before being applied to the
//! in-memory update buffer, so a crash between acknowledgement and merge
//! loses nothing. Records are length-prefixed and checksummed; replay stops
//! cleanly at the first torn or corrupt record (the crash point).
//!
//! Insert records are versioned: the current format (tag 3) carries the
//! full attribute payload alongside the vector, so recovery reproduces
//! hybrid state exactly; logs written by the original attribute-less
//! format (tag 1) still replay, with empty attributes.
//!
//! Durability protocol: the log file is fsynced per batch ([`Wal::sync`]),
//! the *directory* is fsynced when the log is first created (so the file
//! name itself survives a crash), and truncation after a checkpoint
//! ([`Wal::reset`]) truncates in place and fsyncs before returning —
//! the append handle stays valid throughout.

use crate::codec::{self, Reader};
use crate::failpoint;
use crate::file::sync_dir;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use vdb_core::attr::AttrValue;
use vdb_core::error::{Error, Result};

/// A logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert (or overwrite) `key` with a vector and its attributes.
    Insert {
        /// External key.
        key: u64,
        /// The vector payload.
        vector: Vec<f32>,
        /// Attribute assignments `(column, value)`; columns not listed
        /// default to NULL at replay, matching the live insert path.
        attrs: Vec<(String, AttrValue)>,
    },
    /// Delete `key`.
    Delete {
        /// External key.
        key: u64,
    },
}

/// Legacy insert without attributes (logs written before the attribute
/// payload existed replay as this; decoded with empty `attrs`).
const TAG_INSERT_V1: u8 = 1;
const TAG_DELETE: u8 = 2;
/// Current insert: vector + attribute list.
const TAG_INSERT_V2: u8 = 3;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending. On
    /// first creation the parent directory is fsynced so the new file
    /// name survives a crash.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        let existed = path.exists();
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if !existed {
            failpoint::hit("wal.create_dir_sync")?;
            if let Some(dir) = path.parent() {
                sync_dir(dir)?;
            }
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one record (buffered; call [`Wal::sync`] for durability).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let payload = encode(rec);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        failpoint::write_all_torn(&mut self.file, &frame, "wal.append")
    }

    /// Flush to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        failpoint::hit("wal.sync")?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay all complete, checksum-valid records from the start of the
    /// log. A torn tail (partial final record) ends replay without error;
    /// a checksum mismatch on a *complete* record is reported as corruption.
    pub fn replay<P: AsRef<Path>>(path: P) -> Result<Vec<WalRecord>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut reader = BufReader::new(file);
        let mut out = Vec::new();
        loop {
            let mut header = [0u8; 8];
            match read_exact_or_eof(&mut reader, &mut header)? {
                ReadOutcome::Eof => break,
                ReadOutcome::Partial => break, // torn header
                ReadOutcome::Full => {}
            }
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > 1 << 30 {
                return Err(Error::Corrupt("unreasonable WAL record length".into()));
            }
            let mut payload = vec![0u8; len];
            match read_exact_or_eof(&mut reader, &mut payload)? {
                ReadOutcome::Full => {}
                _ => break, // torn payload
            }
            if crc32(&payload) != crc {
                return Err(Error::Corrupt("WAL checksum mismatch".into()));
            }
            out.push(decode(&payload)?);
        }
        Ok(out)
    }

    /// Truncate the log in place (after its contents have been merged
    /// durably) and fsync the truncation. The append handle is kept, so
    /// a crash here can never resurrect stale bytes through a dangling
    /// pre-truncation file descriptor.
    pub fn reset(&mut self) -> Result<()> {
        failpoint::hit("wal.reset.truncate")?;
        self.file.set_len(0)?;
        failpoint::hit("wal.reset.sync")?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Size of the log file in bytes (durability/space accounting).
    pub fn size_bytes(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Atomically replace the log's contents with `records`:
    /// write-to-temp, fsync, rename over the log, fsync-directory, then
    /// swing the append handle to the new file. A crash at any point
    /// leaves either the complete old log or the complete new one —
    /// never a mixture — which is what lets a background merge retire
    /// only the *merged prefix* of operations while preserving a tail of
    /// operations that arrived during the rebuild.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<()> {
        let file_name = self
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| Error::InvalidParameter("WAL path has no file name".into()))?;
        let tmp = self.path.with_file_name(format!("{file_name}.tmp"));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        for rec in records {
            let payload = encode(rec);
            let mut frame = Vec::with_capacity(8 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            failpoint::write_all_torn(&mut file, &frame, "wal.rewrite.write")?;
        }
        failpoint::hit("wal.rewrite.sync")?;
        file.sync_all()?;
        drop(file);
        failpoint::hit("wal.rewrite.rename")?;
        std::fs::rename(&tmp, &self.path)?;
        failpoint::hit("wal.rewrite.dir_sync")?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }
        // Appends must land after the preserved tail, not in the unlinked
        // pre-rewrite file the old handle still points at.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// A WAL record stamped with its log sequence number, as shipped from a
/// replication primary to its replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct ShippedRecord {
    /// The primary's logical mutation counter at the time this record was
    /// applied (1-based, strictly increasing, gap-free within a primary
    /// incarnation).
    pub lsn: u64,
    /// The logged operation itself.
    pub record: WalRecord,
}

/// Append one LSN-stamped record to a replication stream buffer.
///
/// The framing is the WAL's own: `[len u32][crc32 u32][payload]`, where the
/// payload is the LSN (little-endian u64) followed by the record encoding.
/// Because the stream reuses the torn-tail-tolerant frame layout, a
/// truncated stream decodes to an exact record prefix — a replica that
/// receives a partial shipment applies a prefix and asks for the rest.
pub fn ship_record(out: &mut Vec<u8>, lsn: u64, rec: &WalRecord) {
    let mut payload = Vec::with_capacity(16);
    codec::put_u64(&mut payload, lsn);
    payload.extend_from_slice(&encode(rec));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Decode a replication stream produced by [`ship_record`].
///
/// Mirrors [`Wal::replay`]: a torn tail (truncated final frame) ends the
/// decode cleanly with the complete prefix, while a checksum mismatch on a
/// *complete* frame — actual corruption rather than truncation — is an
/// error.
pub fn decode_shipped(stream: &[u8]) -> Result<Vec<ShippedRecord>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while stream.len() - at >= 8 {
        let len = u32::from_le_bytes(stream[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(stream[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > 1 << 30 {
            return Err(Error::Corrupt(
                "unreasonable replication record length".into(),
            ));
        }
        if stream.len() - at - 8 < len {
            break; // torn payload
        }
        let payload = &stream[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return Err(Error::Corrupt(
                "replication stream checksum mismatch".into(),
            ));
        }
        if payload.len() < 8 {
            return Err(Error::Corrupt("replication record shorter than LSN".into()));
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let record = decode(&payload[8..])?;
        out.push(ShippedRecord { lsn, record });
        at += 8 + len;
    }
    Ok(out)
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial
            });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

fn encode(rec: &WalRecord) -> Vec<u8> {
    match rec {
        WalRecord::Insert { key, vector, attrs } => {
            let mut out = Vec::with_capacity(17 + vector.len() * 4);
            out.push(TAG_INSERT_V2);
            codec::put_u64(&mut out, *key);
            codec::put_u32(&mut out, vector.len() as u32);
            for x in vector {
                out.extend_from_slice(&x.to_le_bytes());
            }
            codec::put_u32(&mut out, attrs.len() as u32);
            for (name, value) in attrs {
                codec::put_str(&mut out, name);
                codec::put_attr(&mut out, value);
            }
            out
        }
        WalRecord::Delete { key } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_DELETE);
            codec::put_u64(&mut out, *key);
            out
        }
    }
}

fn decode(payload: &[u8]) -> Result<WalRecord> {
    let corrupt = || Error::Corrupt("malformed WAL payload".into());
    let mut r = Reader::new(payload);
    match r.u8()? {
        TAG_INSERT_V1 => {
            let key = r.u64()?;
            let dim = r.u32()? as usize;
            let vector = r.f32s(dim)?;
            if !r.is_empty() {
                return Err(corrupt());
            }
            Ok(WalRecord::Insert {
                key,
                vector,
                attrs: Vec::new(),
            })
        }
        TAG_INSERT_V2 => {
            let key = r.u64()?;
            let dim = r.u32()? as usize;
            let vector = r.f32s(dim)?;
            let nattrs = r.u32()? as usize;
            let mut attrs = Vec::with_capacity(nattrs.min(1024));
            for _ in 0..nattrs {
                let name = r.string()?;
                let value = r.attr()?;
                attrs.push((name, value));
            }
            if !r.is_empty() {
                return Err(corrupt());
            }
            Ok(WalRecord::Insert { key, vector, attrs })
        }
        TAG_DELETE => {
            let key = r.u64()?;
            if !r.is_empty() {
                return Err(corrupt());
            }
            Ok(WalRecord::Delete { key })
        }
        _ => Err(corrupt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::TempDir;

    fn insert(key: u64, vector: Vec<f32>) -> WalRecord {
        WalRecord::Insert {
            key,
            vector,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn append_and_replay() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("log.wal");
        let recs = vec![
            WalRecord::Insert {
                key: 1,
                vector: vec![1.0, 2.0],
                attrs: vec![
                    ("tag".into(), AttrValue::Str("a".into())),
                    ("score".into(), AttrValue::Int(7)),
                    ("flag".into(), AttrValue::Null),
                ],
            },
            WalRecord::Delete { key: 9 },
            insert(2, vec![-0.5; 7]),
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), recs);
    }

    #[test]
    fn legacy_v1_insert_still_replays() {
        let dir = TempDir::new("wal-v1").unwrap();
        let path = dir.file("old.wal");
        // Hand-encode a v1 record: tag, key, dim, components.
        let mut payload = vec![TAG_INSERT_V1];
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&1.5f32.to_le_bytes());
        payload.extend_from_slice(&(-2.0f32).to_le_bytes());
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        std::fs::write(&path, &frame).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs, vec![insert(5, vec![1.5, -2.0])]);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = TempDir::new("wal-missing").unwrap();
        assert!(Wal::replay(dir.file("nope.wal")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let dir = TempDir::new("wal-torn").unwrap();
        let path = dir.file("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&insert(1, vec![1.0])).unwrap();
            wal.append(&insert(2, vec![2.0])).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-write: chop off the last 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1, "only the complete record survives");
        assert_eq!(recs[0], insert(1, vec![1.0]));
    }

    #[test]
    fn bitflip_detected() {
        let dir = TempDir::new("wal-flip").unwrap();
        let path = dir.file("flip.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&insert(1, vec![1.0, 2.0, 3.0])).unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt inside the payload
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::replay(&path), Err(Error::Corrupt(_))));
    }

    #[test]
    fn reset_truncates_in_place_and_appends_continue() {
        let dir = TempDir::new("wal-reset").unwrap();
        let path = dir.file("r.wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Delete { key: 5 }).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        assert_eq!(wal.size_bytes().unwrap(), 0);
        // The same handle keeps appending from offset zero.
        wal.append(&WalRecord::Delete { key: 6 }).unwrap();
        wal.sync().unwrap();
        assert_eq!(
            Wal::replay(&path).unwrap(),
            vec![WalRecord::Delete { key: 6 }]
        );
    }

    #[test]
    fn rewrite_replaces_contents_atomically_and_appends_continue() {
        let dir = TempDir::new("wal-rewrite").unwrap();
        let path = dir.file("rw.wal");
        let mut wal = Wal::open(&path).unwrap();
        for k in 0..5 {
            wal.append(&insert(k, vec![k as f32])).unwrap();
        }
        wal.sync().unwrap();
        // Retire the merged prefix, preserve a two-record tail.
        let tail = vec![insert(3, vec![3.0]), insert(4, vec![4.0])];
        wal.rewrite(&tail).unwrap();
        assert_eq!(Wal::replay(&path).unwrap(), tail);
        // The swung handle appends after the preserved tail.
        wal.append(&WalRecord::Delete { key: 3 }).unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], WalRecord::Delete { key: 3 });
        // Rewrite to empty behaves like reset.
        wal.rewrite(&[]).unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn shipped_stream_roundtrips() {
        let recs = [
            WalRecord::Insert {
                key: 1,
                vector: vec![1.0, 2.0],
                attrs: vec![("tag".into(), AttrValue::Str("a".into()))],
            },
            WalRecord::Delete { key: 9 },
        ];
        let mut stream = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            ship_record(&mut stream, i as u64 + 1, r);
        }
        let shipped = decode_shipped(&stream).unwrap();
        assert_eq!(shipped.len(), 2);
        assert_eq!(shipped[0].lsn, 1);
        assert_eq!(shipped[1].lsn, 2);
        assert_eq!(shipped[0].record, recs[0]);
        assert_eq!(shipped[1].record, recs[1]);
        // A flipped bit in a complete frame is corruption, not truncation.
        let mut bad = stream.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(decode_shipped(&bad), Err(Error::Corrupt(_))));
    }

    #[test]
    fn crc32_known_value() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = TempDir::new("wal-reopen").unwrap();
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Delete { key: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Delete { key: 2 }).unwrap();
            wal.sync().unwrap();
        }
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
    }
}
