//! Write-ahead log for vector DML.
//!
//! Inserts and deletes are appended to the log before being applied to the
//! in-memory update buffer, so a crash between acknowledgement and merge
//! loses nothing. Records are length-prefixed and checksummed; replay stops
//! cleanly at the first torn or corrupt record (the crash point).

use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use vdb_core::error::{Error, Result};

/// A logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert (or overwrite) `key` with a vector.
    Insert {
        /// External key.
        key: u64,
        /// The vector payload.
        vector: Vec<f32>,
    },
    /// Delete `key`.
    Delete {
        /// External key.
        key: u64,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(Wal {
            file,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Append one record (buffered; call [`Wal::sync`] for durability).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let payload = encode(rec);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// Flush to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay all complete, checksum-valid records from the start of the
    /// log. A torn tail (partial final record) ends replay without error;
    /// a checksum mismatch on a *complete* record is reported as corruption.
    pub fn replay<P: AsRef<Path>>(path: P) -> Result<Vec<WalRecord>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut reader = BufReader::new(file);
        let mut out = Vec::new();
        loop {
            let mut header = [0u8; 8];
            match read_exact_or_eof(&mut reader, &mut header)? {
                ReadOutcome::Eof => break,
                ReadOutcome::Partial => break, // torn header
                ReadOutcome::Full => {}
            }
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > 1 << 30 {
                return Err(Error::Corrupt("unreasonable WAL record length".into()));
            }
            let mut payload = vec![0u8; len];
            match read_exact_or_eof(&mut reader, &mut payload)? {
                ReadOutcome::Full => {}
                _ => break, // torn payload
            }
            if crc32(&payload) != crc {
                return Err(Error::Corrupt("WAL checksum mismatch".into()));
            }
            out.push(decode(&payload)?);
        }
        Ok(out)
    }

    /// Truncate the log (after its contents have been merged durably).
    pub fn reset(&mut self) -> Result<()> {
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        Ok(())
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial
            });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

fn encode(rec: &WalRecord) -> Vec<u8> {
    match rec {
        WalRecord::Insert { key, vector } => {
            let mut out = Vec::with_capacity(13 + vector.len() * 4);
            out.push(TAG_INSERT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for x in vector {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        WalRecord::Delete { key } => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_DELETE);
            out.extend_from_slice(&key.to_le_bytes());
            out
        }
    }
}

fn decode(payload: &[u8]) -> Result<WalRecord> {
    let corrupt = || Error::Corrupt("malformed WAL payload".into());
    let (&tag, rest) = payload.split_first().ok_or_else(corrupt)?;
    match tag {
        TAG_INSERT => {
            if rest.len() < 12 {
                return Err(corrupt());
            }
            let key = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
            let dim = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
            let body = &rest[12..];
            if body.len() != dim * 4 {
                return Err(corrupt());
            }
            let vector = body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            Ok(WalRecord::Insert { key, vector })
        }
        TAG_DELETE => {
            if rest.len() != 8 {
                return Err(corrupt());
            }
            let key = u64::from_le_bytes(rest.try_into().expect("8 bytes"));
            Ok(WalRecord::Delete { key })
        }
        _ => Err(corrupt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::TempDir;

    #[test]
    fn append_and_replay() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("log.wal");
        let recs = vec![
            WalRecord::Insert {
                key: 1,
                vector: vec![1.0, 2.0],
            },
            WalRecord::Delete { key: 9 },
            WalRecord::Insert {
                key: 2,
                vector: vec![-0.5; 7],
            },
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), recs);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = TempDir::new("wal-missing").unwrap();
        assert!(Wal::replay(dir.file("nope.wal")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let dir = TempDir::new("wal-torn").unwrap();
        let path = dir.file("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Insert {
                key: 1,
                vector: vec![1.0],
            })
            .unwrap();
            wal.append(&WalRecord::Insert {
                key: 2,
                vector: vec![2.0],
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-write: chop off the last 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1, "only the complete record survives");
        assert_eq!(
            recs[0],
            WalRecord::Insert {
                key: 1,
                vector: vec![1.0]
            }
        );
    }

    #[test]
    fn bitflip_detected() {
        let dir = TempDir::new("wal-flip").unwrap();
        let path = dir.file("flip.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Insert {
                key: 1,
                vector: vec![1.0, 2.0, 3.0],
            })
            .unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt inside the payload
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::replay(&path), Err(Error::Corrupt(_))));
    }

    #[test]
    fn reset_truncates() {
        let dir = TempDir::new("wal-reset").unwrap();
        let path = dir.file("r.wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Delete { key: 5 }).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn crc32_known_value() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = TempDir::new("wal-reopen").unwrap();
        let path = dir.file("a.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Delete { key: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Delete { key: 2 }).unwrap();
            wal.sync().unwrap();
        }
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
    }
}
