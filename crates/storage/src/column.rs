//! Attribute columns for hybrid queries.
//!
//! The storage-manager side of "vectors are associated to structured
//! attributes" (§2.1(3)). Columns are typed, nullable, and keep light
//! statistics (min/max, distinct estimate) that the query optimizer uses
//! for selectivity estimation.

use std::collections::HashMap;
use vdb_core::attr::{AttrType, AttrValue};
use vdb_core::bitset::BitSet;
use vdb_core::error::{Error, Result};

/// Summary statistics maintained per column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of non-null values.
    pub non_null: usize,
    /// Number of nulls.
    pub nulls: usize,
    /// Minimum non-null value (by [`AttrValue::compare`]).
    pub min: Option<AttrValue>,
    /// Maximum non-null value.
    pub max: Option<AttrValue>,
    /// Exact distinct count (collections here are laptop-scale; a sketch
    /// would replace this at billion scale).
    pub distinct: usize,
}

/// A typed, nullable attribute column.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    ty: AttrType,
    values: Vec<AttrValue>,
}

impl Column {
    /// New empty column.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Column {
            name: name.into(),
            ty,
            values: Vec::new(),
        }
    }

    /// Build from values, type-checking each.
    pub fn from_values(
        name: impl Into<String>,
        ty: AttrType,
        values: Vec<AttrValue>,
    ) -> Result<Self> {
        for v in &values {
            v.check_type(ty)?;
        }
        Ok(Column {
            name: name.into(),
            ty,
            values,
        })
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn ty(&self) -> AttrType {
        self.ty
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a value (type-checked).
    pub fn push(&mut self, v: AttrValue) -> Result<()> {
        v.check_type(self.ty)?;
        self.values.push(v);
        Ok(())
    }

    /// Value at `row`.
    pub fn get(&self, row: usize) -> &AttrValue {
        &self.values[row]
    }

    /// All values.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }

    /// Overwrite the value at `row` (type-checked).
    pub fn set(&mut self, row: usize, v: AttrValue) -> Result<()> {
        v.check_type(self.ty)?;
        if row >= self.values.len() {
            return Err(Error::NotFound(format!("row {row}")));
        }
        self.values[row] = v;
        Ok(())
    }

    /// Compute statistics by one pass over the column.
    pub fn stats(&self) -> ColumnStats {
        let mut non_null = 0;
        let mut nulls = 0;
        let mut min: Option<AttrValue> = None;
        let mut max: Option<AttrValue> = None;
        let mut distinct: HashMap<String, ()> = HashMap::new();
        for v in &self.values {
            if v.is_null() {
                nulls += 1;
                continue;
            }
            non_null += 1;
            distinct.entry(v.to_string()).or_insert(());
            if min
                .as_ref()
                .is_none_or(|m| v.compare(m) == Some(std::cmp::Ordering::Less))
            {
                min = Some(v.clone());
            }
            if max
                .as_ref()
                .is_none_or(|m| v.compare(m) == Some(std::cmp::Ordering::Greater))
            {
                max = Some(v.clone());
            }
        }
        ColumnStats {
            non_null,
            nulls,
            min,
            max,
            distinct: distinct.len(),
        }
    }
}

/// A set of aligned columns: the attribute side of a vector collection.
#[derive(Debug, Clone, Default)]
pub struct AttributeStore {
    columns: Vec<Column>,
    rows: usize,
}

impl AttributeStore {
    /// New empty store.
    pub fn new() -> Self {
        AttributeStore::default()
    }

    /// Add a column. Must match the current row count.
    pub fn add_column(&mut self, col: Column) -> Result<()> {
        if self.columns.iter().any(|c| c.name() == col.name()) {
            return Err(Error::AlreadyExists(format!("column `{}`", col.name())));
        }
        if !self.columns.is_empty() && col.len() != self.rows {
            return Err(Error::InvalidParameter(format!(
                "column `{}` has {} rows, store has {}",
                col.name(),
                col.len(),
                self.rows
            )));
        }
        if self.columns.is_empty() {
            self.rows = col.len();
        }
        self.columns.push(col);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| Error::NotFound(format!("column `{name}`")))
    }

    /// Append a row given `(name, value)` pairs; missing columns get Null.
    pub fn push_row(&mut self, row: &[(&str, AttrValue)]) -> Result<()> {
        for (name, _) in row {
            // Validate all names before mutating anything.
            self.column(name)?;
        }
        for col in &mut self.columns {
            let v = row
                .iter()
                .find(|(n, _)| *n == col.name())
                .map(|(_, v)| v.clone())
                .unwrap_or(AttrValue::Null);
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Evaluate `pred` on every row of column `name`, producing the
    /// blocking bitmask used by block-first scans (§2.3(1)).
    pub fn bitmask<F>(&self, name: &str, pred: F) -> Result<BitSet>
    where
        F: Fn(&AttrValue) -> bool,
    {
        let col = self.column(name)?;
        let mut bits = BitSet::new(self.rows);
        for (i, v) in col.values().iter().enumerate() {
            if pred(v) {
                bits.insert(i);
            }
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> AttributeStore {
        let mut s = AttributeStore::new();
        s.add_column(
            Column::from_values(
                "price",
                AttrType::Int,
                vec![
                    AttrValue::Int(10),
                    AttrValue::Int(25),
                    AttrValue::Null,
                    AttrValue::Int(10),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        s.add_column(
            Column::from_values(
                "brand",
                AttrType::Str,
                vec!["acme".into(), "zen".into(), "acme".into(), AttrValue::Null],
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn column_type_enforced() {
        let mut c = Column::new("x", AttrType::Int);
        assert!(c.push(AttrValue::Int(1)).is_ok());
        assert!(c.push(AttrValue::Null).is_ok());
        assert!(c.push(AttrValue::Str("no".into())).is_err());
        assert!(Column::from_values("y", AttrType::Bool, vec![AttrValue::Int(0)]).is_err());
    }

    #[test]
    fn stats_reflect_contents() {
        let s = sample_store();
        let st = s.column("price").unwrap().stats();
        assert_eq!(st.non_null, 3);
        assert_eq!(st.nulls, 1);
        assert_eq!(st.min, Some(AttrValue::Int(10)));
        assert_eq!(st.max, Some(AttrValue::Int(25)));
        assert_eq!(st.distinct, 2);
    }

    #[test]
    fn store_alignment_enforced() {
        let mut s = sample_store();
        let short =
            Column::from_values("extra", AttrType::Bool, vec![AttrValue::Bool(true)]).unwrap();
        assert!(s.add_column(short).is_err());
        let dup = Column::new("price", AttrType::Int);
        assert!(s.add_column(dup).is_err());
    }

    #[test]
    fn push_row_fills_missing_with_null() {
        let mut s = sample_store();
        s.push_row(&[("price", AttrValue::Int(7))]).unwrap();
        assert_eq!(s.rows(), 5);
        assert_eq!(s.column("brand").unwrap().get(4), &AttrValue::Null);
        assert!(s.push_row(&[("nope", AttrValue::Int(1))]).is_err());
        assert_eq!(s.rows(), 5, "failed push must not change row count");
    }

    #[test]
    fn bitmask_matches_predicate() {
        let s = sample_store();
        let bits = s
            .bitmask("price", |v| {
                v.compare(&AttrValue::Int(15)) == Some(std::cmp::Ordering::Less)
            })
            .unwrap();
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![0, 3]);
        // Nulls never match.
        let all = s.bitmask("price", |v| !v.is_null()).unwrap();
        assert_eq!(all.count(), 3);
    }

    #[test]
    fn set_updates_in_place() {
        let mut s = sample_store();
        let col = s.columns.iter_mut().find(|c| c.name() == "price").unwrap();
        col.set(0, AttrValue::Int(99)).unwrap();
        assert_eq!(col.get(0), &AttrValue::Int(99));
        assert!(col.set(100, AttrValue::Int(1)).is_err());
    }
}
